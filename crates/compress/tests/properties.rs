//! Property tests for the compression machinery, driven by a
//! deterministic seeded generator (`SimRng`) so every run explores the
//! same cases and failures reproduce exactly.

use ldis_compress::{
    class_of, compressed_bits, compressed_bytes, encoded_bits, CompressedWoc, SizeCategory,
    ValueSizeModel,
};
use ldis_distill::WordStore;
use ldis_mem::{Footprint, LineAddr, LineGeometry, SimRng};
use ldis_workloads::{ValueProfile, WordClass};

/// Every chunk's encoded size is the Table 4 size for its class, and a
/// sequence's size is the sum.
#[test]
fn encoding_is_per_chunk_additive() {
    let mut rng = SimRng::new(0xc0e1);
    for case in 0..300 {
        let len = rng.index(64);
        let values: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
        let total: u64 = values.iter().map(|&v| encoded_bits(v)).sum();
        assert_eq!(compressed_bits(&values), total, "case {case}");
        assert_eq!(
            compressed_bytes(&values) as u64,
            total.div_ceil(8),
            "case {case}"
        );
        for &v in &values {
            let bits = encoded_bits(v);
            match class_of(v) {
                WordClass::Zero | WordClass::One => assert_eq!(bits, 2),
                WordClass::Narrow => assert_eq!(bits, 18),
                WordClass::Full => assert_eq!(bits, 34),
            }
        }
    }
}

/// Size categories are monotone in compressed size and exhaustive.
#[test]
fn categories_are_monotone() {
    let mut rng = SimRng::new(0xc0e2);
    for case in 0..500 {
        let c1 = 1 + rng.range(127) as u32;
        let c2 = 1 + rng.range(127) as u32;
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        assert!(
            SizeCategory::of(lo, 64) <= SizeCategory::of(hi, 64),
            "case {case}"
        );
    }
}

/// Compressing a subset of words never costs more than the whole line.
#[test]
fn footprint_subset_never_larger() {
    let m = ValueSizeModel::new(ValueProfile::mixed_int(), LineGeometry::default(), 3);
    let mut rng = SimRng::new(0xc0e3);
    for case in 0..500 {
        let line = rng.range(100_000);
        let bits = 1 + rng.range(255) as u16;
        let subset = m.compressed_bytes(LineAddr::new(line), Some(Footprint::from_bits(bits)));
        let whole = m.compressed_bytes(LineAddr::new(line), None);
        assert!(subset <= whole, "case {case}");
    }
}

/// The compressed WOC's slot count is bounded by the plain WOC's and
/// is always a power of two ≥ 1.
#[test]
fn compressed_slots_bounded() {
    let m = ValueSizeModel::new(ValueProfile::pointer_heavy(), LineGeometry::default(), 3);
    let woc = CompressedWoc::new(1, 1, 8, 1, m);
    let mut rng = SimRng::new(0xc0e4);
    for case in 0..500 {
        let line = rng.range(100_000);
        let bits = 1 + rng.range(255) as u16;
        let fp = Footprint::from_bits(bits);
        let slots = woc.slots_for(LineAddr::new(line), fp);
        assert!(slots >= 1, "case {case}");
        assert!(slots.is_power_of_two(), "case {case}");
        assert!(slots <= fp.woc_slots() as usize, "case {case}");
    }
}

/// CompressedWoc invariants hold under arbitrary installs, and every
/// stored line keeps its full word coverage.
#[test]
fn compressed_woc_invariants() {
    let mut cases = SimRng::new(0xc0e5);
    for case in 0..40 {
        let m = ValueSizeModel::new(ValueProfile::mixed_int(), LineGeometry::default(), 9);
        let mut woc = CompressedWoc::new(2, 2, 8, 17, m);
        let mut rng = SimRng::new(4);
        let installs = 1 + cases.index(149);
        for tag in 0..installs {
            let bits = 1 + cases.range(255) as u16;
            let set = rng.index(2);
            let fp = Footprint::from_bits(bits);
            if WordStore::lookup(&woc, set, tag as u64).is_none() {
                WordStore::install(
                    &mut woc,
                    set,
                    tag as u64,
                    LineAddr::new(tag as u64),
                    fp,
                    false,
                    &mut Vec::new(),
                );
                let hit = WordStore::lookup(&woc, set, tag as u64).expect("just installed");
                assert_eq!(hit.valid_words, fp, "case {case}: coverage preserved");
            }
            woc.check_invariants(set)
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}
