//! Property tests for the compression machinery.

use ldis_compress::{
    class_of, compressed_bits, compressed_bytes, encoded_bits, CompressedWoc, SizeCategory,
    ValueSizeModel,
};
use ldis_distill::WordStore;
use ldis_mem::{Footprint, LineAddr, LineGeometry, SimRng};
use ldis_workloads::{ValueProfile, WordClass};
use proptest::prelude::*;

proptest! {
    /// Every chunk's encoded size is the Table 4 size for its class, and a
    /// sequence's size is the sum.
    #[test]
    fn encoding_is_per_chunk_additive(values in prop::collection::vec(any::<u32>(), 0..64)) {
        let total: u64 = values.iter().map(|&v| encoded_bits(v)).sum();
        prop_assert_eq!(compressed_bits(&values), total);
        prop_assert_eq!(compressed_bytes(&values) as u64, total.div_ceil(8));
        for &v in &values {
            let bits = encoded_bits(v);
            match class_of(v) {
                WordClass::Zero | WordClass::One => prop_assert_eq!(bits, 2),
                WordClass::Narrow => prop_assert_eq!(bits, 18),
                WordClass::Full => prop_assert_eq!(bits, 34),
            }
        }
    }

    /// Size categories are monotone in compressed size and exhaustive.
    #[test]
    fn categories_are_monotone(c1 in 1u32..128, c2 in 1u32..128) {
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        prop_assert!(SizeCategory::of(lo, 64) <= SizeCategory::of(hi, 64));
    }

    /// Compressing a subset of words never costs more than the whole line.
    #[test]
    fn footprint_subset_never_larger(line in 0u64..100_000, bits in 1u16..256) {
        let m = ValueSizeModel::new(ValueProfile::mixed_int(), LineGeometry::default(), 3);
        let subset = m.compressed_bytes(LineAddr::new(line), Some(Footprint::from_bits(bits)));
        let whole = m.compressed_bytes(LineAddr::new(line), None);
        prop_assert!(subset <= whole);
    }

    /// The compressed WOC's slot count is bounded by the plain WOC's and
    /// is always a power of two ≥ 1.
    #[test]
    fn compressed_slots_bounded(line in 0u64..100_000, bits in 1u16..256) {
        let m = ValueSizeModel::new(ValueProfile::pointer_heavy(), LineGeometry::default(), 3);
        let woc = CompressedWoc::new(1, 1, 8, 1, m);
        let fp = Footprint::from_bits(bits);
        let slots = woc.slots_for(LineAddr::new(line), fp);
        prop_assert!(slots >= 1);
        prop_assert!(slots.is_power_of_two());
        prop_assert!(slots <= fp.woc_slots() as usize);
    }

    /// CompressedWoc invariants hold under arbitrary installs, and every
    /// stored line keeps its full word coverage.
    #[test]
    fn compressed_woc_invariants(installs in prop::collection::vec(1u16..256, 1..150)) {
        let m = ValueSizeModel::new(ValueProfile::mixed_int(), LineGeometry::default(), 9);
        let mut woc = CompressedWoc::new(2, 2, 8, 17, m);
        let mut rng = SimRng::new(4);
        for (tag, &bits) in installs.iter().enumerate() {
            let set = rng.index(2);
            let fp = Footprint::from_bits(bits);
            if WordStore::lookup(&woc, set, tag as u64).is_none() {
                WordStore::install(&mut woc, set, tag as u64, LineAddr::new(tag as u64), fp, false);
                let hit = WordStore::lookup(&woc, set, tag as u64).expect("just installed");
                prop_assert_eq!(hit.valid_words, fp, "coverage preserved under compression");
            }
            woc.check_invariants(set).map_err(
                proptest::test_runner::TestCaseError::fail
            )?;
        }
    }
}
