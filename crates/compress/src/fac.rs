//! Footprint-Aware Compression (FAC, Section 8.2).
//!
//! FAC composes the two capacity techniques: line distillation picks the
//! *used* words, and compression then squeezes those words into fewer WOC
//! slots. The footprint needed for distillation is exactly the information
//! that lets the compressor skip dead words — which is why the combination
//! beats either technique alone (Figure 11).
//!
//! Implementation: a [`CompressedWoc`] implements
//! [`WordStore`](ldis_distill::WordStore), so the full
//! [`DistillCache`](ldis_distill::DistillCache) machinery (LOC, median
//! threshold, reverter) is reused unchanged.

use crate::ValueSizeModel;
use ldis_distill::{DistillCache, DistillConfig, WocEviction, WocLineHit, WordStore};
use ldis_mem::{Footprint, LineAddr, SimRng};

/// A FAC distill cache: a [`DistillCache`] whose WOC stores compressed
/// used words.
pub type FacCache = DistillCache<CompressedWoc>;

/// Builds the paper's FAC-4xTags configuration: a distill cache with three
/// of eight ways devoted to a compressed WOC, median-threshold filtering
/// and the reverter circuit, sized by the benchmark's value model.
pub fn fac_4x_tags(model: ValueSizeModel) -> FacCache {
    let cfg = DistillConfig::hpca2007_default().with_woc_ways(3);
    fac_cache(cfg, model)
}

/// Builds a FAC cache from an arbitrary distill configuration.
pub fn fac_cache(cfg: DistillConfig, model: ValueSizeModel) -> FacCache {
    let woc = CompressedWoc::new(
        cfg.num_sets(),
        cfg.woc_ways(),
        cfg.geometry().words_per_line(),
        cfg.seed() ^ 0xfac,
        model,
    );
    let mut cache = DistillCache::with_word_store(cfg, woc);
    cache.set_label(format!("FAC-{}w", cache.config().woc_ways()));
    cache
}

#[derive(Clone, Copy, Debug, Default)]
struct FacEntry {
    valid: bool,
    dirty: bool,
    head: bool,
    tag: u64,
    /// The full set of stored (compressed) words; meaningful at the head.
    words: Footprint,
}

/// A word-organized store that keeps each line's used words *compressed*:
/// a line occupies `ceil(compressed_bytes / word_bytes)` slots (rounded up
/// to a power of two, capped at the uncompressed slot count), but all its
/// used words remain addressable — compression shrinks occupancy, not
/// coverage.
///
/// Placement and replacement follow the same aligned/head-bit/random rules
/// as the uncompressed [`Woc`](ldis_distill::Woc).
#[derive(Clone, Debug)]
pub struct CompressedWoc {
    ways: usize,
    words_per_line: usize,
    num_sets: usize,
    entries: Vec<FacEntry>,
    rng: SimRng,
    model: ValueSizeModel,
    word_bytes: u32,
}

impl CompressedWoc {
    /// Creates an empty compressed WOC.
    pub fn new(
        num_sets: u64,
        ways: u32,
        words_per_line: u8,
        seed: u64,
        model: ValueSizeModel,
    ) -> Self {
        assert!(ways >= 1, "WOC needs at least one way");
        CompressedWoc {
            ways: ways as usize,
            words_per_line: words_per_line as usize,
            num_sets: num_sets as usize,
            entries: vec![
                FacEntry::default();
                num_sets as usize * ways as usize * words_per_line as usize
            ],
            rng: SimRng::new(seed),
            word_bytes: 8,
            model,
        }
    }

    /// Slots a line occupies after compressing its used words.
    pub fn slots_for(&self, line: LineAddr, words: Footprint) -> usize {
        let uncompressed = words.woc_slots() as usize;
        let bytes = self.model.compressed_bytes(line, Some(words));
        let slots = bytes.div_ceil(self.word_bytes).max(1) as usize;
        slots.next_power_of_two().min(uncompressed.max(1))
    }

    fn set_base(&self, set: usize) -> usize {
        debug_assert!(set < self.num_sets);
        set * self.ways.saturating_mul(self.words_per_line)
    }

    fn way_slice(&self, set: usize, way: usize) -> &[FacEntry] {
        let base = self.set_base(set) + way * self.words_per_line;
        self.entries
            .get(base..base + self.words_per_line)
            .unwrap_or_default()
    }

    fn way_slice_mut(&mut self, set: usize, way: usize) -> &mut [FacEntry] {
        let base = self.set_base(set) + way * self.words_per_line;
        self.entries
            .get_mut(base..base + self.words_per_line)
            .unwrap_or_default()
    }

    /// All `ways * words_per_line` entries of one set.
    fn set_slice_mut(&mut self, set: usize) -> &mut [FacEntry] {
        let base = self.set_base(set);
        let len = self.ways.saturating_mul(self.words_per_line);
        self.entries.get_mut(base..base + len).unwrap_or_default()
    }

    fn choose_position(&mut self, set: usize, slots: usize) -> (usize, usize) {
        let mut free = Vec::new();
        let mut eligible = Vec::new();
        for way in 0..self.ways {
            let entries = self.way_slice(set, way);
            for offset in (0..self.words_per_line).step_by(slots) {
                let Some(first) = entries.get(offset) else {
                    continue;
                };
                if !first.valid || first.head {
                    eligible.push((way, offset));
                    let window_free = entries
                        .get(offset..offset + slots)
                        .is_some_and(|w| w.iter().all(|e| !e.valid));
                    if window_free {
                        free.push((way, offset));
                    }
                }
            }
        }
        // `index(len) < len`, so the lookups cannot miss on non-empty lists.
        if !free.is_empty() {
            let i = self.rng.index(free.len());
            if let Some(&pos) = free.get(i) {
                return pos;
            }
        }
        assert!(!eligible.is_empty(), "alignment guarantees a candidate");
        let i = self.rng.index(eligible.len());
        eligible.get(i).copied().unwrap_or((0, 0))
    }

    fn evict_range(
        &mut self,
        set: usize,
        way: usize,
        offset: usize,
        slots: usize,
    ) -> Vec<WocEviction> {
        let words_per_line = self.words_per_line;
        let entries = self.way_slice_mut(set, way);
        debug_assert!(
            offset == 0 || !entries.get(offset).is_some_and(|e| e.valid && !e.head),
            "chosen offset must not split a line"
        );
        let mut evictions: Vec<WocEviction> = Vec::new();
        let mut i = offset;
        while i < words_per_line {
            let Some(e) = entries.get(i).copied() else {
                break;
            };
            if !e.valid {
                if i >= offset + slots {
                    break;
                }
                i += 1;
                continue;
            }
            if e.head {
                if i >= offset + slots {
                    break;
                }
                evictions.push(WocEviction {
                    tag: e.tag,
                    words: e.words,
                    dirty: e.dirty,
                });
            } else {
                // Well-formed ways open with a head; corrupted metadata can
                // present a headless body entry. Open a fresh record for it
                // so the debris is still cleared and its dirtiness kept.
                match evictions.last_mut() {
                    Some(ev) => {
                        debug_assert_eq!(ev.tag, e.tag);
                        ev.dirty |= e.dirty;
                    }
                    None => evictions.push(WocEviction {
                        tag: e.tag,
                        words: e.words,
                        dirty: e.dirty,
                    }),
                }
            }
            if let Some(slot) = entries.get_mut(i) {
                *slot = FacEntry::default();
            }
            i += 1;
        }
        evictions
    }

    /// Checks structural invariants of one set (tests and property checks).
    pub fn check_invariants(&self, set: usize) -> Result<(), String> {
        for way in 0..self.ways {
            let entries = self.way_slice(set, way);
            let mut i = 0;
            while let Some(e) = entries.get(i) {
                if !e.valid {
                    i += 1;
                    continue;
                }
                if !e.head {
                    return Err(format!("way {way} slot {i}: valid entry without head"));
                }
                let tag = e.tag;
                let start = i;
                i += 1;
                while let Some(next) = entries.get(i).filter(|e| e.valid && !e.head) {
                    if next.tag != tag {
                        return Err(format!("way {way} slot {i}: tag mismatch"));
                    }
                    i += 1;
                }
                let len = i - start;
                if start % len.next_power_of_two() != 0 {
                    return Err(format!("way {way}: misaligned line at {start} len {len}"));
                }
            }
        }
        Ok(())
    }
}

impl WordStore for CompressedWoc {
    fn lookup(&self, set: usize, tag: u64) -> Option<WocLineHit> {
        for way in 0..self.ways {
            for e in self.way_slice(set, way) {
                if e.valid && e.head && e.tag == tag {
                    return Some(WocLineHit {
                        valid_words: e.words,
                    });
                }
            }
        }
        None
    }

    fn install(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        words: Footprint,
        dirty: bool,
        evicted: &mut Vec<WocEviction>,
    ) {
        assert!(!words.is_empty(), "cannot install an empty footprint");
        debug_assert!(self.lookup(set, tag).is_none(), "already present");
        evicted.clear();
        let slots = self.slots_for(line, words).min(self.words_per_line);
        let (way, offset) = self.choose_position(set, slots);
        evicted.extend(self.evict_range(set, way, offset, slots));
        let entries = self.way_slice_mut(set, way);
        let window = entries.get_mut(offset..offset + slots).unwrap_or_default();
        for (i, slot) in window.iter_mut().enumerate() {
            *slot = FacEntry {
                valid: true,
                dirty,
                head: i == 0,
                tag,
                words: if i == 0 { words } else { Footprint::empty() },
            };
        }
    }

    fn invalidate_line(&mut self, set: usize, tag: u64) -> Option<WocEviction> {
        let mut record: Option<WocEviction> = None;
        for e in self.set_slice_mut(set) {
            if e.valid && e.tag == tag {
                let rec = record.get_or_insert(WocEviction {
                    tag,
                    words: Footprint::empty(),
                    dirty: false,
                });
                if e.head {
                    rec.words = e.words;
                }
                rec.dirty |= e.dirty;
                *e = FacEntry::default();
            }
        }
        record
    }

    fn mark_dirty(&mut self, set: usize, tag: u64) -> bool {
        let mut found = false;
        for e in self.set_slice_mut(set) {
            if e.valid && e.tag == tag {
                e.dirty = true;
                found = true;
            }
        }
        found
    }

    fn occupancy(&self) -> u64 {
        self.entries.iter().filter(|e| e.valid).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;
    use ldis_workloads::ValueProfile;

    fn zero_model() -> ValueSizeModel {
        ValueSizeModel::new(ValueProfile::new(1.0, 0.0, 0.0), LineGeometry::default(), 1)
    }

    fn incompressible_model() -> ValueSizeModel {
        ValueSizeModel::new(ValueProfile::new(0.0, 0.0, 0.0), LineGeometry::default(), 1)
    }

    fn woc(model: ValueSizeModel) -> CompressedWoc {
        CompressedWoc::new(4, 1, 8, 9, model)
    }

    /// Test shim over the out-parameter [`WordStore::install`].
    fn install(
        w: &mut CompressedWoc,
        set: usize,
        tag: u64,
        line: LineAddr,
        words: Footprint,
        dirty: bool,
    ) -> Vec<WocEviction> {
        let mut evicted = Vec::new();
        w.install(set, tag, line, words, dirty, &mut evicted);
        evicted
    }

    #[test]
    fn compressible_words_take_fewer_slots() {
        let w = woc(zero_model());
        // 8 zero words = 16 zero chunks = 32 bits = 4 B → 1 slot.
        assert_eq!(w.slots_for(LineAddr::new(0), Footprint::full(8)), 1);
        let wi = woc(incompressible_model());
        // 8 incompressible words: 68 B → 16 slots capped at 8.
        assert_eq!(wi.slots_for(LineAddr::new(0), Footprint::full(8)), 8);
        // 3 incompressible words: ~25.5 B → 4 slots (same as uncompressed).
        assert_eq!(
            wi.slots_for(LineAddr::new(0), Footprint::from_bits(0b111)),
            4
        );
    }

    #[test]
    fn full_coverage_despite_compression() {
        let mut w = woc(zero_model());
        let fp = Footprint::full(8);
        install(&mut w, 0, 7, LineAddr::new(7), fp, false);
        w.check_invariants(0).unwrap();
        let hit = w.lookup(0, 7).expect("line hit");
        assert_eq!(hit.valid_words, fp, "all words visible though 1 slot used");
        assert_eq!(w.occupancy(), 1);
    }

    #[test]
    fn eight_compressed_full_lines_fit_one_way() {
        let mut w = woc(zero_model());
        for t in 0..8u64 {
            let ev = install(
                &mut w,
                0,
                t,
                LineAddr::new(t * 4),
                Footprint::full(8),
                false,
            );
            assert!(ev.is_empty(), "line {t} should fit without eviction");
            w.check_invariants(0).unwrap();
        }
        assert_eq!(w.occupancy(), 8);
        let ev = install(
            &mut w,
            0,
            99,
            LineAddr::new(99 * 4),
            Footprint::full(8),
            false,
        );
        assert_eq!(ev.len(), 1, "9th line evicts one");
    }

    #[test]
    fn invalidate_returns_words_and_dirty() {
        let mut w = woc(incompressible_model());
        let fp = Footprint::from_bits(0b101);
        install(&mut w, 0, 3, LineAddr::new(3), fp, true);
        let ev = w.invalidate_line(0, 3).expect("present");
        assert_eq!(ev.words, fp);
        assert!(ev.dirty);
        assert!(w.lookup(0, 3).is_none());
    }

    #[test]
    fn fac_cache_builds_and_runs() {
        use ldis_cache::{L2Outcome, L2Request, SecondLevel};
        use ldis_mem::WordIndex;
        let mut fac = fac_4x_tags(zero_model());
        assert_eq!(fac.config().woc_ways(), 3);
        let req = L2Request::data(LineAddr::new(1), WordIndex::new(0), false);
        assert_eq!(fac.access(req).outcome, L2Outcome::LineMiss);
        assert_eq!(fac.access(req).outcome, L2Outcome::LocHit);
        assert!(fac.name().starts_with("FAC"));
    }

    #[test]
    fn stress_invariants_hold() {
        let mut w = CompressedWoc::new(
            8,
            2,
            8,
            77,
            ValueSizeModel::new(ValueProfile::mixed_int(), LineGeometry::default(), 3),
        );
        let mut rng = SimRng::new(5);
        for i in 0..2000u64 {
            let set = rng.index(8);
            let bits = (rng.next_u64() & 0xff) as u16;
            if bits == 0 {
                continue;
            }
            install(
                &mut w,
                set,
                1000 + i,
                LineAddr::new(1000 + i),
                Footprint::from_bits(bits),
                rng.chance(0.3),
            );
            w.check_invariants(set)
                .unwrap_or_else(|e| panic!("iteration {i}: {e}"));
        }
    }
}
