//! The significance-based encoding of Table 4 (32-bit granularity).
//!
//! | code | 32-bit value                                  | payload |
//! |------|-----------------------------------------------|---------|
//! | 00   | 0                                             | 0 bits  |
//! | 01   | 1                                             | 0 bits  |
//! | 10   | bits\[31:16\] are 0 → only bits\[15:0\] stored | 16 bits |
//! | 11   | incompressible                                | 32 bits |

use ldis_mem::{Footprint, LineAddr, LineGeometry};
use ldis_workloads::{ValueProfile, WordClass};

/// Code bits per 32-bit chunk.
pub const CODE_BITS: u64 = 2;

/// Classifies a 32-bit value into its Table 4 encoding class.
///
/// # Example
///
/// ```
/// use ldis_compress::class_of;
/// use ldis_workloads::WordClass;
///
/// assert_eq!(class_of(0), WordClass::Zero);
/// assert_eq!(class_of(1), WordClass::One);
/// assert_eq!(class_of(0xbeef), WordClass::Narrow);
/// assert_eq!(class_of(0xdead_beef), WordClass::Full);
/// ```
pub fn class_of(value: u32) -> WordClass {
    match value {
        0 => WordClass::Zero,
        1 => WordClass::One,
        v if v <= 0xffff => WordClass::Narrow,
        _ => WordClass::Full,
    }
}

/// Encoded size of one 32-bit chunk, in bits (code + payload).
pub fn encoded_bits(value: u32) -> u64 {
    CODE_BITS
        + match class_of(value) {
            WordClass::Zero | WordClass::One => 0,
            WordClass::Narrow => 16,
            WordClass::Full => 32,
        }
}

/// Encoded size of a sequence of 32-bit chunks, in bits.
pub fn compressed_bits(values: &[u32]) -> u64 {
    values.iter().map(|&v| encoded_bits(v)).sum()
}

/// Encoded size in bytes, rounded up.
pub fn compressed_bytes(values: &[u32]) -> u32 {
    // ldis: allow(T1, "callers compress at most one cache line of words (<= 16 values at <= 34 bits each), so the byte count fits u32 with room to spare")
    compressed_bits(values).div_ceil(8) as u32
}

/// The four size categories of Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeCategory {
    /// Fits in at most one-eighth of the original size.
    OneEighth,
    /// Fits in at most one-fourth.
    OneFourth,
    /// Fits in at most one-half.
    OneHalf,
    /// Not compressible to half: stored at full size.
    Full,
}

impl SizeCategory {
    /// Categorizes a compressed size against the original size
    /// (Section 8.1).
    pub fn of(compressed: u32, original: u32) -> Self {
        if compressed * 8 <= original {
            SizeCategory::OneEighth
        } else if compressed * 4 <= original {
            SizeCategory::OneFourth
        } else if compressed * 2 <= original {
            SizeCategory::OneHalf
        } else {
            SizeCategory::Full
        }
    }

    /// Index 0..4 for histogram bins, in the order of [`SizeCategory::of`].
    pub const fn index(self) -> usize {
        match self {
            SizeCategory::OneEighth => 0,
            SizeCategory::OneFourth => 1,
            SizeCategory::OneHalf => 2,
            SizeCategory::Full => 3,
        }
    }
}

/// Computes compressed line sizes from a benchmark's deterministic
/// [`ValueProfile`] — the glue between the workload value model and the
/// compressed caches.
#[derive(Clone, Copy, Debug)]
pub struct ValueSizeModel {
    profile: ValueProfile,
    geometry: LineGeometry,
    salt: u64,
}

impl ValueSizeModel {
    /// Creates a size model over the given value profile and geometry.
    pub fn new(profile: ValueProfile, geometry: LineGeometry, salt: u64) -> Self {
        ValueSizeModel {
            profile,
            geometry,
            salt,
        }
    }

    /// The 32-bit chunks of `line`, restricted to `words` if given.
    pub fn chunks(&self, line: LineAddr, words: Option<Footprint>) -> Vec<u32> {
        let chunks_per_word = self.geometry.word_bytes() / 4;
        let mut out = Vec::new();
        for w in 0..self.geometry.words_per_line() {
            if let Some(fp) = words {
                if !fp.is_used(ldis_mem::WordIndex::new(w)) {
                    continue;
                }
            }
            let word_addr = self
                .geometry
                .word_base(line, ldis_mem::WordIndex::new(w))
                .raw();
            for c in 0..chunks_per_word as u64 {
                let addr4 = word_addr / 4 + c;
                out.push(self.profile.value_at(addr4, self.salt));
            }
        }
        out
    }

    /// Compressed size in bytes of `line`, over all words or only the
    /// `words` subset (footprint-aware compression).
    pub fn compressed_bytes(&self, line: LineAddr, words: Option<Footprint>) -> u32 {
        compressed_bytes(&self.chunks(line, words))
    }

    /// Original (uncompressed) size in bytes of the chosen words.
    pub fn original_bytes(&self, words: Option<Footprint>) -> u32 {
        match words {
            None => self.geometry.line_bytes(),
            Some(fp) => fp.used_words() as u32 * self.geometry.word_bytes(),
        }
    }

    /// The Figure 10 category of `line` relative to the full line size.
    pub fn category(&self, line: LineAddr, words: Option<Footprint>) -> SizeCategory {
        SizeCategory::of(
            self.compressed_bytes(line, words),
            self.geometry.line_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_bits_match_table4() {
        assert_eq!(encoded_bits(0), 2);
        assert_eq!(encoded_bits(1), 2);
        assert_eq!(encoded_bits(0xffff), 18);
        assert_eq!(encoded_bits(0x1_0000), 34);
    }

    #[test]
    fn all_zero_line_compresses_to_one_eighth() {
        // 16 chunks of 0 → 32 bits = 4 B; 4 ≤ 64/8.
        let values = [0u32; 16];
        let bytes = compressed_bytes(&values);
        assert_eq!(bytes, 4);
        assert_eq!(SizeCategory::of(bytes, 64), SizeCategory::OneEighth);
    }

    #[test]
    fn incompressible_line_is_full() {
        let values = [0xdead_beefu32; 16];
        let bytes = compressed_bytes(&values);
        assert_eq!(bytes, 68);
        assert_eq!(SizeCategory::of(bytes, 64), SizeCategory::Full);
    }

    #[test]
    fn narrow_line_is_one_half() {
        let values = [0x1234u32; 16];
        let bytes = compressed_bytes(&values); // 16 * 18 bits = 288 bits = 36 B
        assert_eq!(bytes, 36);
        assert_eq!(SizeCategory::of(bytes, 64), SizeCategory::Full);
        // Alternating zero/narrow: 8*2 + 8*18 = 160 bits = 20 B → one-half.
        let mixed: Vec<u32> = (0..16).map(|i| if i % 2 == 0 { 0 } else { 7 }).collect();
        assert_eq!(
            SizeCategory::of(compressed_bytes(&mixed), 64),
            SizeCategory::OneHalf
        );
        // 12 zeros + 4 narrow: 24 + 72 = 96 bits = 12 B → one-fourth.
        let sparse: Vec<u32> = (0..16).map(|i| if i < 12 { 0 } else { 7 }).collect();
        assert_eq!(
            SizeCategory::of(compressed_bytes(&sparse), 64),
            SizeCategory::OneFourth
        );
    }

    #[test]
    fn category_indices_are_ordered() {
        assert_eq!(SizeCategory::OneEighth.index(), 0);
        assert_eq!(SizeCategory::Full.index(), 3);
        assert!(SizeCategory::OneEighth < SizeCategory::Full);
    }

    #[test]
    fn size_model_is_deterministic_and_footprint_aware() {
        let m = ValueSizeModel::new(ValueProfile::pointer_heavy(), LineGeometry::default(), 5);
        let line = LineAddr::new(123);
        assert_eq!(
            m.compressed_bytes(line, None),
            m.compressed_bytes(line, None)
        );
        let one_word = Footprint::from_bits(0b1);
        let full = m.compressed_bytes(line, None);
        let partial = m.compressed_bytes(line, Some(one_word));
        assert!(partial < full, "fewer words must compress smaller");
        assert_eq!(m.chunks(line, Some(one_word)).len(), 2);
        assert_eq!(m.chunks(line, None).len(), 16);
        assert_eq!(m.original_bytes(Some(one_word)), 8);
        assert_eq!(m.original_bytes(None), 64);
    }

    #[test]
    fn pointer_heavy_lines_are_more_compressible_than_float() {
        let geom = LineGeometry::default();
        let frac_compressible = |p: ValueProfile| {
            let m = ValueSizeModel::new(p, geom, 1);
            let n = 2000;
            let compressible = (0..n)
                .filter(|&i| m.category(LineAddr::new(i), None) != SizeCategory::Full)
                .count();
            compressible as f64 / n as f64
        };
        let ptr = frac_compressible(ValueProfile::pointer_heavy());
        let fp = frac_compressible(ValueProfile::float_heavy());
        assert!(ptr > fp, "pointer {ptr} vs float {fp}");
    }
}
