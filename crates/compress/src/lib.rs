//! Cache compression for the Line Distillation reproduction (Section 8).
//!
//! The paper studies how line distillation interacts with cache
//! compression and proposes *footprint-aware compression*: compress only
//! the used words. This crate provides all three pieces:
//!
//! * the Table 4 significance encoder ([`class_of`], [`compressed_bytes`],
//!   [`SizeCategory`]) and the [`ValueSizeModel`] glue that sizes lines
//!   from a benchmark's deterministic value model;
//! * [`CmprCache`] — the CMPR-4xTags comparator: a traditional cache
//!   storing compressed lines in a segmented data array with 4× tags and
//!   perfect LRU;
//! * [`CompressedWoc`] / [`FacCache`] — footprint-aware compression: a
//!   [`DistillCache`](ldis_distill::DistillCache) whose WOC stores the
//!   used words compressed, multiplying WOC capacity while keeping every
//!   used word addressable.
//!
//! # Example
//!
//! ```
//! use ldis_compress::{compressed_bytes, SizeCategory};
//!
//! // A line of 16 zero chunks compresses 16:1 in bits → one-eighth class.
//! let bytes = compressed_bytes(&[0u32; 16]);
//! assert_eq!(SizeCategory::of(bytes, 64), SizeCategory::OneEighth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmpr;
mod fac;
mod fpc;

pub use cmpr::{CmprCache, CmprConfig};
pub use fac::{fac_4x_tags, fac_cache, CompressedWoc, FacCache};
pub use fpc::{
    class_of, compressed_bits, compressed_bytes, encoded_bits, SizeCategory, ValueSizeModel,
    CODE_BITS,
};
