//! CMPR: a traditional cache with compression (Section 8.2's
//! CMPR-4xTags comparator).
//!
//! Lines are stored compressed in a segmented data array: each set has the
//! same data budget as the baseline (ways × line size) but up to
//! `tag_factor ×` ways tag entries, so compressible lines multiply the
//! effective capacity. Replacement is perfect LRU over whole lines, per
//! the paper's CMPR configuration (Section 8.2).

use crate::ValueSizeModel;
use ldis_cache::{CompulsoryTracker, L2Outcome, L2Request, L2Response, L2Stats, SecondLevel};
use ldis_mem::stats::Counter;
use ldis_mem::{Footprint, LineAddr, LineGeometry};
use std::collections::VecDeque;

/// Configuration of the compressed cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CmprConfig {
    /// Data capacity in bytes (1 MB in the paper).
    pub size_bytes: u64,
    /// Baseline ways per set (8): sets the per-set data budget.
    pub ways: u32,
    /// Tag multiplier (4 for CMPR-4xTags).
    pub tag_factor: u32,
    /// Storage granularity of compressed lines in bytes (one segment).
    pub segment_bytes: u32,
    /// Line/word geometry.
    pub geometry: LineGeometry,
}

impl CmprConfig {
    /// The paper's CMPR-4xTags: 1 MB, 8 ways of data, 4× tags, 8 B segments.
    pub fn cmpr_4x_tags() -> Self {
        CmprConfig {
            size_bytes: 1 << 20,
            ways: 8,
            tag_factor: 4,
            segment_bytes: 8,
            geometry: LineGeometry::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.geometry.line_bytes() as u64 * self.ways as u64)
    }

    /// Data budget per set, in segments.
    pub fn segments_per_set(&self) -> u32 {
        self.ways.saturating_mul(self.geometry.line_bytes()) / self.segment_bytes
    }

    /// Maximum tags per set.
    pub fn tags_per_set(&self) -> u32 {
        self.ways.saturating_mul(self.tag_factor)
    }
}

#[derive(Clone, Copy, Debug)]
struct CmprLine {
    tag: u64,
    segments: u32,
    dirty: bool,
}

/// A compressed traditional L2 cache with perfect LRU replacement.
///
/// # Example
///
/// ```
/// use ldis_compress::{CmprCache, CmprConfig, ValueSizeModel};
/// use ldis_cache::{L2Request, SecondLevel};
/// use ldis_mem::{LineAddr, LineGeometry, WordIndex};
/// use ldis_workloads::ValueProfile;
///
/// let model = ValueSizeModel::new(ValueProfile::pointer_heavy(), LineGeometry::default(), 1);
/// let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), model);
/// c.access(L2Request::data(LineAddr::new(0), WordIndex::new(0), false));
/// assert_eq!(c.stats().line_misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CmprCache {
    cfg: CmprConfig,
    model: ValueSizeModel,
    /// Per set: lines in LRU order, MRU at the front.
    sets: Vec<VecDeque<CmprLine>>,
    stats: L2Stats,
    compulsory: CompulsoryTracker,
    label: String,
}

impl CmprCache {
    /// Creates an empty compressed cache.
    pub fn new(cfg: CmprConfig, model: ValueSizeModel) -> Self {
        let stats = L2Stats::new(cfg.geometry.words_per_line(), cfg.ways);
        CmprCache {
            sets: (0..cfg.num_sets()).map(|_| VecDeque::new()).collect(),
            stats,
            compulsory: CompulsoryTracker::new(),
            label: format!("CMPR-{}xTags", cfg.tag_factor),
            model,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CmprConfig {
        &self.cfg
    }

    /// Number of lines currently stored in `set` (0 if out of range).
    pub fn lines_in_set(&self, set: usize) -> usize {
        self.sets.get(set).map_or(0, |s| s.len())
    }

    /// Segments currently occupied in `set` (0 if out of range).
    pub fn segments_in_set(&self, set: usize) -> u32 {
        self.sets
            .get(set)
            .map_or(0, |s| s.iter().map(|l| l.segments).sum())
    }

    fn set_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let sets = self.cfg.num_sets();
        (
            (line.raw() & (sets - 1)) as usize,
            line.raw() >> sets.trailing_zeros(),
        )
    }

    fn segments_for(&self, line: LineAddr) -> u32 {
        let bytes = self
            .model
            .compressed_bytes(line, None)
            .min(self.cfg.geometry.line_bytes());
        bytes.div_ceil(self.cfg.segment_bytes).max(1)
    }
}

impl SecondLevel for CmprCache {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses.bump();
        let (set_idx, tag) = self.set_and_tag(req.line);
        let full = Footprint::full(self.cfg.geometry.words_per_line());
        // `set_idx` is masked to `0..num_sets` by `set_and_tag`, so the
        // `get_mut` lookups cannot miss.
        if let Some(set) = self.sets.get_mut(set_idx) {
            if let Some(mut line) = set
                .iter()
                .position(|l| l.tag == tag)
                .and_then(|pos| set.remove(pos))
            {
                line.dirty |= req.write;
                set.push_front(line);
                self.stats.loc_hits.bump();
                return L2Response {
                    outcome: L2Outcome::LocHit,
                    valid_words: full,
                };
            }
        }

        self.stats.line_misses.bump();
        if self.compulsory.record_miss(req.line) {
            self.stats.compulsory_misses.bump();
        }
        let segments = self.segments_for(req.line);
        // Perfect LRU: evict from the tail until both the segment budget
        // and the tag budget hold.
        let budget = self.cfg.segments_per_set();
        let max_tags = self.cfg.tags_per_set() as usize;
        if let Some(set) = self.sets.get_mut(set_idx) {
            set.push_front(CmprLine {
                tag,
                segments,
                dirty: req.write,
            });
            loop {
                let used: u32 = set.iter().map(|l| l.segments).sum();
                if used <= budget && set.len() <= max_tags {
                    break;
                }
                // The freshly inserted line keeps the set non-empty whenever
                // the budgets are exceeded; stop if that ever fails to hold.
                let Some(victim) = set.pop_back() else {
                    break;
                };
                self.stats.evictions.bump();
                if victim.dirty {
                    self.stats.writebacks.bump();
                }
            }
        }
        L2Response {
            outcome: L2Outcome::LineMiss,
            valid_words: full,
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, _footprint: Footprint, dirty: bool) {
        if !dirty {
            return;
        }
        let (set_idx, tag) = self.set_and_tag(line);
        match self
            .sets
            .get_mut(set_idx)
            .and_then(|s| s.iter_mut().find(|l| l.tag == tag))
        {
            Some(l) => l.dirty = true,
            None => self.stats.writebacks.bump(),
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = L2Stats::new(self.cfg.geometry.words_per_line(), self.cfg.ways);
    }

    fn geometry(&self) -> LineGeometry {
        self.cfg.geometry
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_cache::L2Request;
    use ldis_mem::WordIndex;
    use ldis_workloads::ValueProfile;

    fn zero_model() -> ValueSizeModel {
        // All values zero → every line compresses to 4 B → 1 segment.
        ValueSizeModel::new(ValueProfile::new(1.0, 0.0, 0.0), LineGeometry::default(), 1)
    }

    fn incompressible_model() -> ValueSizeModel {
        ValueSizeModel::new(ValueProfile::new(0.0, 0.0, 0.0), LineGeometry::default(), 1)
    }

    fn req(line: u64) -> L2Request {
        L2Request::data(LineAddr::new(line), WordIndex::new(0), false)
    }

    #[test]
    fn config_dimensions() {
        let cfg = CmprConfig::cmpr_4x_tags();
        assert_eq!(cfg.num_sets(), 2048);
        assert_eq!(cfg.segments_per_set(), 64);
        assert_eq!(cfg.tags_per_set(), 32);
    }

    #[test]
    fn compressible_lines_quadruple_capacity() {
        let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), zero_model());
        // 32 lines in one set: all fit (tag limit 32, 32 segments ≤ 64).
        for i in 0..32u64 {
            c.access(req(i * 2048));
        }
        assert_eq!(c.lines_in_set(0), 32);
        assert_eq!(c.stats().evictions, 0);
        // The 33rd line hits the tag limit and evicts the LRU.
        c.access(req(32 * 2048));
        assert_eq!(c.lines_in_set(0), 32);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn incompressible_lines_behave_like_baseline() {
        let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), incompressible_model());
        // 68 B compressed is clamped to the 64 B line → 8 segments each.
        for i in 0..9u64 {
            c.access(req(i * 2048));
        }
        assert_eq!(c.lines_in_set(0), 8, "only 8 full-size lines fit");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), incompressible_model());
        for i in 0..8u64 {
            c.access(req(i * 2048));
        }
        c.access(req(0)); // promote line 0
        c.access(req(8 * 2048)); // evicts line 1*2048 (LRU)
        assert_eq!(c.access(req(0)).outcome, L2Outcome::LocHit);
        assert_eq!(c.access(req(2048)).outcome, L2Outcome::LineMiss);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), incompressible_model());
        c.access(L2Request::data(LineAddr::new(0), WordIndex::new(0), true));
        for i in 1..=8u64 {
            c.access(req(i * 2048));
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn l1_evict_marks_dirty_or_writes_back() {
        let mut c = CmprCache::new(CmprConfig::cmpr_4x_tags(), zero_model());
        c.access(req(0));
        c.on_l1d_evict(LineAddr::new(0), Footprint::full(8), true);
        assert_eq!(c.stats().writebacks, 0);
        c.on_l1d_evict(LineAddr::new(999), Footprint::full(8), true);
        assert_eq!(c.stats().writebacks, 1);
    }
}
