//! Benchmark support: shared tiny run configurations so `cargo bench`
//! exercises every table/figure kernel in bounded time. The full-length
//! regeneration lives in the `ldis-experiments` binary.

use ldis_experiments::golden::golden_config;
use ldis_experiments::RunConfig;

/// A bench-sized run: the canonical golden-snapshot configuration
/// ([`golden_config`], i.e. [`RunConfig::quick`]) shortened to stay inside
/// Criterion's sample budget. Deriving from the golden configuration keeps
/// bench numbers and `tests/golden/` snapshots describing the same work:
/// same seed, same derived per-cell streams, fewer accesses.
pub fn bench_config() -> RunConfig {
    golden_config().with_accesses(60_000)
}

/// The golden-snapshot configuration itself, for benches that time exactly
/// what the regression harness pins (`benches/sweep.rs`).
pub fn snapshot_config() -> RunConfig {
    golden_config()
}
