//! Benchmark support: shared tiny run configurations so `cargo bench`
//! exercises every table/figure kernel in bounded time. The full-length
//! regeneration lives in the `ldis-experiments` binary.

use ldis_experiments::RunConfig;

/// A bench-sized run: long enough to exercise every mechanism (LOC
/// evictions, WOC traffic, reverter updates), short enough for Criterion.
pub fn bench_config() -> RunConfig {
    RunConfig::quick().with_accesses(60_000)
}
