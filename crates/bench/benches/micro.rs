//! Micro-benchmarks of the core data structures: the raw operation costs
//! behind every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, L2Request, SecondLevel, SetAssocCache};
use ldis_distill::{DistillCache, DistillConfig, Woc};
use ldis_mem::{Access, Addr, Footprint, LineAddr, LineGeometry, SimRng, WordIndex};
use ldis_workloads::spec2000;
use std::hint::black_box;

/// Raw set-associative cache accesses (hit-dominated).
fn cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_cache_access");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("set_assoc_hits", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        for i in 0..1024u64 {
            cache.install(LineAddr::new(i), Some(WordIndex::new(0)), false, false);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access(LineAddr::new(i), Some(WordIndex::new(1)), false));
            }
        });
    });
    g.finish();
}

/// Distill-cache accesses across the four outcome classes.
fn distill_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_distill_access");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("mixed_outcomes", |b| {
        let mut dc = DistillCache::new(DistillConfig::hpca2007_default());
        let mut rng = SimRng::new(1);
        b.iter(|| {
            for _ in 0..4096 {
                let line = LineAddr::new(rng.range(40_000));
                let word = WordIndex::new(rng.range(8) as u8);
                black_box(dc.access(L2Request::data(line, word, false)));
            }
        });
    });
    g.finish();
}

/// WOC install with evictions (the most intricate hot path).
fn woc_install(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_woc_install");
    g.throughput(Throughput::Elements(2048));
    g.bench_function("install_evict", |b| {
        let mut woc = Woc::new(64, 2, 8, 9);
        let mut rng = SimRng::new(2);
        let mut tag = 0u64;
        b.iter(|| {
            for _ in 0..2048 {
                let set = rng.index(64);
                let bits = ((rng.next_u64() & 0xff) as u16).max(1);
                if woc.lookup(set, tag).is_none() {
                    black_box(woc.install(set, tag, Footprint::from_bits(bits), false));
                }
                tag += 1;
            }
        });
    });
    g.finish();
}

/// Full hierarchy throughput on a real benchmark model (accesses/second —
/// the number that bounds every experiment's wall-clock).
fn hierarchy_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_hierarchy_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("baseline_mcf", |b| {
        b.iter(|| {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let mut hier = Hierarchy::hpca2007(l2);
            spec2000::mcf(3).drive(
                &mut hier,
                ldis_workloads::TraceLength::accesses(50_000),
            );
            black_box(hier.mpki())
        });
    });
    g.bench_function("distill_mcf", |b| {
        b.iter(|| {
            let dc = DistillCache::new(DistillConfig::hpca2007_default());
            let mut hier = Hierarchy::hpca2007(dc);
            spec2000::mcf(3).drive(
                &mut hier,
                ldis_workloads::TraceLength::accesses(50_000),
            );
            black_box(hier.mpki())
        });
    });
    g.finish();
}

/// Footprint bit-vector operations.
fn footprint_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_footprint");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("touch_merge_count", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..4096 {
                let mut fp = Footprint::from_bits((rng.next_u64() & 0xff) as u16);
                fp.touch(WordIndex::new(rng.range(8) as u8));
                fp.merge(Footprint::from_bits((rng.next_u64() & 0xff) as u16));
                acc += fp.used_words() as u32 + fp.woc_slots() as u32;
            }
            black_box(acc)
        });
    });
    g.finish();
}

/// Workload generation alone (how much of a run is the generator?).
fn workload_generation(c: &mut Criterion) {
    use ldis_mem::TraceSource;
    let mut g = c.benchmark_group("micro_workload_generation");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("health_generate", |b| {
        b.iter(|| {
            let mut w = spec2000::health(5);
            let mut sum = 0u64;
            for _ in 0..50_000 {
                sum = sum.wrapping_add(w.next_access().unwrap().addr.raw());
            }
            black_box(sum)
        });
    });
    g.finish();
}

/// A single hierarchy access end to end (latency, not throughput).
fn single_access_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_single_access");
    g.bench_function("l1_hit_path", |b| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let mut hier = Hierarchy::hpca2007(l2);
        hier.access(Access::load(Addr::new(64), 8));
        b.iter(|| {
            hier.access(black_box(Access::load(Addr::new(64), 8)));
        });
    });
    g.finish();
}

criterion_group!(
    micro,
    cache_access,
    distill_access,
    woc_install,
    hierarchy_throughput,
    footprint_ops,
    workload_generation,
    single_access_latency,
);
criterion_main!(micro);
