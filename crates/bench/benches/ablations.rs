//! Ablation benches for the design choices DESIGN.md calls out: each
//! variant's kernel is timed, and the MPKI comparison itself comes from
//! `ldis-experiments ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use ldis_bench::bench_config;
use ldis_distill::{
    DistillCache, DistillConfig, ReverterConfig, ThresholdPolicy, WocReplacement,
};
use ldis_experiments::run;
use ldis_mem::LineGeometry;
use ldis_workloads::{spec2000, HotSet, Workload, WordsProfile};
use std::hint::black_box;

fn bench(c: &mut Criterion, group: &str, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function(name, |b| b.iter(&mut f));
    g.finish();
}

/// WOC way split: 1 / 2 / 3 of 8 ways.
fn ablation_woc_ways(c: &mut Criterion) {
    let cfg = bench_config();
    let health = spec2000::by_name("health").unwrap();
    for ways in [1u32, 2, 3] {
        bench(c, "ablation_woc_ways", &format!("{ways}_ways"), || {
            black_box(run(&health, &cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default().with_woc_ways(ways))
            }));
        });
    }
}

/// Threshold policy: none / fixed / median.
fn ablation_threshold(c: &mut Criterion) {
    let cfg = bench_config();
    let twolf = spec2000::by_name("twolf").unwrap();
    for (name, policy) in [
        ("all", ThresholdPolicy::All),
        ("fixed4", ThresholdPolicy::Fixed(4)),
        ("median", ThresholdPolicy::median()),
    ] {
        bench(c, "ablation_threshold", name, || {
            black_box(run(&twolf, &cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default().with_policy(policy))
            }));
        });
    }
}

/// WOC replacement selection: random vs. round-robin.
fn ablation_woc_replacement(c: &mut Criterion) {
    let cfg = bench_config();
    let ammp = spec2000::by_name("ammp").unwrap();
    for (name, policy) in [
        ("random", WocReplacement::Random),
        ("round_robin", WocReplacement::RoundRobin),
    ] {
        bench(c, "ablation_woc_replacement", name, || {
            black_box(run(&ammp, &cfg, || {
                DistillCache::new(
                    DistillConfig::hpca2007_default().with_woc_replacement(policy),
                )
            }));
        });
    }
}

/// Reverter leader-set count.
fn ablation_leader_sets(c: &mut Criterion) {
    let cfg = bench_config();
    let swim = spec2000::by_name("swim").unwrap();
    for leaders in [8u32, 32, 128] {
        bench(c, "ablation_leader_sets", &format!("{leaders}_leaders"), || {
            black_box(run(&swim, &cfg, || {
                DistillCache::new(DistillConfig::ldis_mt().with_reverter(ReverterConfig {
                    leader_sets: leaders,
                    ..ReverterConfig::default()
                }))
            }));
        });
    }
}

/// Word size: 8 B (paper) vs. 4 B vs. 16 B words on a 64 B line.
fn ablation_word_size(c: &mut Criterion) {
    for word_bytes in [4u32, 8, 16] {
        let geom = LineGeometry::new(64, word_bytes);
        bench(
            c,
            "ablation_word_size",
            &format!("{word_bytes}B_words"),
            || {
                let mut workload = Workload::builder("chase", 5)
                    .stream(1.0, HotSet::new(0, 24_000, WordsProfile::sparse(), 1))
                    .geometry(geom)
                    .build();
                let cfg = DistillConfig::new(1 << 20, 8, 2, geom).with_policy(
                    ThresholdPolicy::median(),
                );
                let mut hier =
                    ldis_cache::Hierarchy::hpca2007(DistillCache::new(cfg));
                workload.drive(
                    &mut hier,
                    ldis_workloads::TraceLength::accesses(60_000),
                );
                black_box(hier.mpki());
            },
        );
    }
}

criterion_group!(
    ablations,
    ablation_woc_ways,
    ablation_threshold,
    ablation_woc_replacement,
    ablation_leader_sets,
    ablation_word_size,
);
criterion_main!(ablations);
