//! One Criterion bench per paper table/figure: times the simulation kernel
//! that regenerates it. The printed reproduction itself comes from
//! `ldis-experiments <name>`; these benches keep the kernels honest
//! (performance regressions in the simulator show up here).

use criterion::{criterion_group, criterion_main, Criterion};
use ldis_bench::bench_config;
use ldis_compress::{fac_cache, CmprCache, CmprConfig, ValueSizeModel};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_experiments::{run, run_baseline, run_baseline_with_words, table3};
use ldis_mem::LineGeometry;
use ldis_sfp::{SfpCache, SfpConfig};
use ldis_timing::{workload_factors, L2Timing, SystemConfig, TimingSim};
use ldis_workloads::spec2000;
use std::hint::black_box;

fn bench(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("kernel", |b| b.iter(&mut f));
    g.finish();
}

/// Figure 1 + Figure 2 + Table 2: the baseline characterization run
/// (footprint histograms, recency instrumentation, MPKI).
fn motivation_benches(c: &mut Criterion) {
    let cfg = bench_config();
    let twolf = spec2000::by_name("twolf").unwrap();
    bench(c, "fig1_words_used", || {
        black_box(run_baseline_with_words(&twolf, &cfg, 1 << 20));
    });
    let art = spec2000::by_name("art").unwrap();
    bench(c, "fig2_recency", || {
        black_box(run_baseline(&art, &cfg, 1 << 20));
    });
    let mcf = spec2000::by_name("mcf").unwrap();
    bench(c, "table2_summary", || {
        black_box(run_baseline(&mcf, &cfg, 1 << 20));
    });
}

/// Figure 6: the three LDIS configurations.
fn fig6_ldis_configs(c: &mut Criterion) {
    let cfg = bench_config();
    let health = spec2000::by_name("health").unwrap();
    bench(c, "fig6_ldis_configs", || {
        black_box(run(&health, &cfg, || {
            DistillCache::new(DistillConfig::ldis_mt_rc())
        }));
    });
}

/// Figure 7: distill-cache outcome breakdown.
fn fig7_breakdown(c: &mut Criterion) {
    let cfg = bench_config();
    let art = spec2000::by_name("art").unwrap();
    bench(c, "fig7_breakdown", || {
        let r = run(&art, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        black_box((r.l2.woc_hits, r.l2.hole_misses));
    });
}

/// Figure 8: capacity comparison against larger traditional caches.
fn fig8_capacity(c: &mut Criterion) {
    let cfg = bench_config();
    let ammp = spec2000::by_name("ammp").unwrap();
    bench(c, "fig8_capacity", || {
        black_box(run_baseline(&ammp, &cfg, 2 << 20));
    });
}

/// Figure 9: the timed system (baseline + distill latency adders).
fn fig9_ipc(c: &mut Criterion) {
    let cfg = bench_config();
    let health = spec2000::by_name("health").unwrap();
    let (dep, br) = workload_factors("health");
    bench(c, "fig9_ipc", || {
        let sys = SystemConfig::hpca2007_baseline().with_workload_factors(dep, br);
        let dc = DistillCache::new(DistillConfig::hpca2007_default());
        let mut sim = TimingSim::new(dc, sys, L2Timing::distill());
        black_box(sim.run(&mut (health.make)(cfg.seed), cfg.accesses));
    });
}

/// Table 3: the storage-overhead model (pure arithmetic, nanoseconds).
fn table3_overhead(c: &mut Criterion) {
    bench(c, "table3_overhead", || {
        black_box(table3::data());
    });
}

/// Figure 10: compressibility classification over cache contents.
fn fig10_compressibility(c: &mut Criterion) {
    let cfg = bench_config();
    let mcf = spec2000::by_name("mcf").unwrap();
    let model = ValueSizeModel::new(
        (mcf.make)(cfg.seed).values(),
        LineGeometry::default(),
        cfg.seed,
    );
    bench(c, "fig10_compressibility", || {
        let mut bytes = 0u64;
        for line in 0..2000u64 {
            bytes += model.compressed_bytes(ldis_mem::LineAddr::new(line), None) as u64;
        }
        black_box(bytes);
    });
}

/// Figure 11: CMPR and FAC organizations.
fn fig11_fac(c: &mut Criterion) {
    let cfg = bench_config();
    let mcf = spec2000::by_name("mcf").unwrap();
    let model = ValueSizeModel::new(
        (mcf.make)(cfg.seed).values(),
        LineGeometry::default(),
        cfg.seed,
    );
    bench(c, "fig11_cmpr", || {
        black_box(run(&mcf, &cfg, || {
            CmprCache::new(CmprConfig::cmpr_4x_tags(), model)
        }));
    });
    bench(c, "fig11_fac", || {
        black_box(run(&mcf, &cfg, || {
            fac_cache(DistillConfig::hpca2007_default().with_woc_ways(3), model)
        }));
    });
}

/// Figure 13: the SFP comparator.
fn fig13_sfp(c: &mut Criterion) {
    let cfg = bench_config();
    let twolf = spec2000::by_name("twolf").unwrap();
    bench(c, "fig13_sfp", || {
        black_box(run(&twolf, &cfg, || SfpCache::new(SfpConfig::sfp_16k())));
    });
}

/// Table 5: a cache-insensitive benchmark at 4 MB.
fn table5_insensitive(c: &mut Criterion) {
    let cfg = bench_config();
    let equake = spec2000::by_name("equake").unwrap();
    bench(c, "table5_insensitive", || {
        black_box(run_baseline(&equake, &cfg, 4 << 20));
    });
}

/// Table 6: words-used at an off-default cache size.
fn table6_words_vs_size(c: &mut Criterion) {
    let cfg = bench_config();
    let art = spec2000::by_name("art").unwrap();
    bench(c, "table6_words_vs_size", || {
        black_box(run_baseline_with_words(&art, &cfg, 1280 << 10));
    });
}

criterion_group!(
    figures,
    motivation_benches,
    fig6_ldis_configs,
    fig7_breakdown,
    fig8_capacity,
    fig9_ipc,
    table3_overhead,
    fig10_compressibility,
    fig11_fac,
    fig13_sfp,
    table5_insensitive,
    table6_words_vs_size,
);
criterion_main!(figures);
