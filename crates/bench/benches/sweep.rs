//! Sweep-engine benches: the same benchmark × configuration matrix at one
//! worker and at the machine's parallelism. The ratio between the two
//! `kernel` times is the parallel speedup on the quick experiment matrix;
//! the results themselves are bit-identical (asserted by
//! `tests/parallel_determinism.rs`, not here — Criterion only times).

use criterion::{criterion_group, criterion_main, Criterion};
use ldis_bench::bench_config;
use ldis_distill::{DistillCache, DistillConfig};
use ldis_experiments::{parallel, run, run_baseline, run_matrix_with_threads};
use ldis_workloads::memory_intensive;
use std::hint::black_box;

fn bench(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("kernel", |b| b.iter(&mut f));
    g.finish();
}

fn matrix(threads: usize) {
    let cfg = bench_config();
    let benches = memory_intensive();
    black_box(run_matrix_with_threads(threads, &benches, 3, |b, config| {
        match config {
            0 => run_baseline(b, &cfg, 1 << 20),
            1 => run(b, &cfg, || DistillCache::new(DistillConfig::ldis_base())),
            _ => run(b, &cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default())
            }),
        }
    }));
}

/// The 16 × 3 quick matrix, serial: the reference cost.
fn sweep_serial(c: &mut Criterion) {
    bench(c, "sweep_serial", || matrix(1));
}

/// The same matrix on the full worker pool.
fn sweep_parallel(c: &mut Criterion) {
    let threads = parallel::available_threads();
    bench(c, &format!("sweep_parallel_{threads}t"), || matrix(threads));
}

criterion_group!(benches, sweep_serial, sweep_parallel);
criterion_main!(benches);
