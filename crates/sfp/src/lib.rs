//! The Spatial Footprint Predictor comparator (Figure 13).
//!
//! Kumar & Wilkerson's SFP (ISCA '98) predicts, at *install* time, which
//! words of a missing line will be used, and installs only those into a
//! decoupled sectored cache. The paper re-implements SFP with the same
//! number of tag entries as the distill cache and shows it reduces misses
//! by less than LDIS: a misprediction at install time turns what would
//! have been a traditional-cache hit into a miss, while LDIS filters only
//! at eviction time (Section 9).
//!
//! # Example
//!
//! ```
//! use ldis_cache::{L2Request, SecondLevel};
//! use ldis_mem::{LineAddr, WordIndex};
//! use ldis_sfp::{SfpCache, SfpConfig};
//!
//! let mut sfp = SfpCache::new(SfpConfig::sfp_16k());
//! sfp.access(L2Request::data(LineAddr::new(0), WordIndex::new(0), false));
//! assert_eq!(sfp.stats().line_misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod predictor;
mod sfp_cache;

pub use predictor::FootprintPredictor;
pub use sfp_cache::{SfpCache, SfpConfig};
