//! The spatial footprint predictor table (Kumar & Wilkerson, ISCA '98).

use ldis_mem::{Addr, Footprint, WordIndex};

/// A table of predicted footprints indexed by a hash of the miss-causing
/// instruction's PC and the offset of the demanded word — the indexing
/// scheme of the original SFP proposal. The line address is deliberately
/// not part of the index: the predictor generalizes across all lines
/// touched by the same instruction.
///
/// Untrained entries predict the full line (a conservative default that
/// degenerates to a traditional cache fill). Training happens at eviction
/// time with the line's observed footprint.
///
/// # Example
///
/// ```
/// use ldis_sfp::FootprintPredictor;
/// use ldis_mem::{Addr, Footprint, WordIndex};
///
/// let mut p = FootprintPredictor::new(16 * 1024, 8);
/// let (pc, word) = (Addr::new(0x400100), WordIndex::new(2));
/// assert_eq!(p.predict(pc, word), Footprint::full(8)); // untrained
/// p.train(pc, word, Footprint::from_bits(0b0101));
/// assert_eq!(p.predict(pc, word), Footprint::from_bits(0b0101));
/// ```
#[derive(Clone, Debug)]
pub struct FootprintPredictor {
    table: Vec<u16>,
    trained: Vec<bool>,
    entries: usize,
    words_per_line: u8,
}

impl FootprintPredictor {
    /// Creates a predictor with `entries` table entries (the paper
    /// evaluates 16 k- and 64 k-entry tables in Figure 13).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: usize, words_per_line: u8) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "table entries must be a positive power of two"
        );
        FootprintPredictor {
            table: vec![0; entries],
            trained: vec![false; entries],
            entries,
            words_per_line,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Storage cost in bytes: footprint bits per entry (as in the paper's
    /// 64 kB / 256 kB figures for 16 k / 64 k entries, i.e. 4 B per entry).
    pub fn storage_bytes(&self) -> usize {
        self.entries * 4
    }

    fn index(&self, pc: Addr, word: WordIndex) -> usize {
        let mut x = pc.raw() ^ (word.get() as u64).rotate_left(32);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((x ^ (x >> 31)) % self.entries as u64) as usize
    }

    /// Predicts which words of a missing line will be used, given the
    /// miss PC and demanded word. Always includes the demanded word.
    pub fn predict(&self, pc: Addr, word: WordIndex) -> Footprint {
        let idx = self.index(pc, word);
        // `idx < entries == table.len()` by the modulo in `index`, so the
        // untrained fallback also covers the impossible misses.
        let mut fp = match (self.trained.get(idx), self.table.get(idx)) {
            (Some(true), Some(bits)) => Footprint::from_bits(*bits),
            _ => Footprint::full(self.words_per_line),
        };
        fp.touch(word);
        fp
    }

    /// Trains the entry for `(pc, line, word)` with the footprint observed
    /// over the line's residency.
    pub fn train(&mut self, pc: Addr, word: WordIndex, observed: Footprint) {
        let idx = self.index(pc, word);
        if let Some(slot) = self.table.get_mut(idx) {
            *slot = observed.bits();
        }
        if let Some(flag) = self.trained.get_mut(idx) {
            *flag = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predicts_full_line() {
        let p = FootprintPredictor::new(1024, 8);
        let fp = p.predict(Addr::new(1), WordIndex::new(3));
        assert_eq!(fp, Footprint::full(8));
    }

    #[test]
    fn prediction_always_includes_demand_word() {
        let mut p = FootprintPredictor::new(1024, 8);
        let pc = Addr::new(0x44);
        p.train(pc, WordIndex::new(5), Footprint::from_bits(0b1));
        let fp = p.predict(pc, WordIndex::new(5));
        assert!(fp.is_used(WordIndex::new(5)));
        assert!(fp.is_used(WordIndex::new(0)));
        assert_eq!(fp.used_words(), 2);
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = FootprintPredictor::new(64 * 1024, 8);
        let w = WordIndex::new(0);
        p.train(Addr::new(0x1000), w, Footprint::from_bits(0b11));
        // An unrelated PC should (overwhelmingly likely) stay untrained.
        assert_eq!(p.predict(Addr::new(0x2000), w), Footprint::full(8));
    }

    #[test]
    fn storage_matches_paper_figures() {
        assert_eq!(
            FootprintPredictor::new(16 * 1024, 8).storage_bytes(),
            64 << 10
        );
        assert_eq!(
            FootprintPredictor::new(64 * 1024, 8).storage_bytes(),
            256 << 10
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FootprintPredictor::new(1000, 8);
    }
}
