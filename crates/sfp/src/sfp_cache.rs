//! The SFP cache: a decoupled sectored L2 driven by the spatial footprint
//! predictor (the Figure 13 comparator).

use crate::FootprintPredictor;
use ldis_cache::{CompulsoryTracker, L2Outcome, L2Request, L2Response, L2Stats, SecondLevel};
use ldis_distill::{Reverter, ReverterConfig};
use ldis_mem::stats::Counter;
use ldis_mem::{Addr, Footprint, LineAddr, LineGeometry, WordIndex};
use std::collections::VecDeque;

/// Configuration of the SFP cache.
#[derive(Clone, Copy, Debug)]
pub struct SfpConfig {
    /// Data capacity in bytes (1 MB in the paper).
    pub size_bytes: u64,
    /// Data ways per set (8): sets the per-set word-slot budget.
    pub ways: u32,
    /// Tag entries per set. The paper gives the decoupled sectored cache
    /// the same number of tag entries as the distill cache: 6 line tags +
    /// 2 × 8 word tags = 22.
    pub tags_per_set: u32,
    /// Predictor table entries (16 k or 64 k in Figure 13).
    pub predictor_entries: usize,
    /// Line/word geometry.
    pub geometry: LineGeometry,
    /// Optional reverter circuit (the paper adds one to SFP too).
    pub reverter: Option<ReverterConfig>,
}

impl SfpConfig {
    /// The Figure 13 configuration with a 16 k-entry (64 kB) predictor.
    pub fn sfp_16k() -> Self {
        SfpConfig {
            size_bytes: 1 << 20,
            ways: 8,
            tags_per_set: 22,
            predictor_entries: 16 * 1024,
            geometry: LineGeometry::default(),
            reverter: Some(ReverterConfig::default()),
        }
    }

    /// The Figure 13 configuration with a 64 k-entry (256 kB) predictor.
    pub fn sfp_64k() -> Self {
        SfpConfig {
            predictor_entries: 64 * 1024,
            ..SfpConfig::sfp_16k()
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.geometry.line_bytes() as u64 * self.ways as u64)
    }

    /// Word-slot budget per set.
    pub fn slots_per_set(&self) -> u32 {
        self.ways
            .saturating_mul(self.geometry.words_per_line() as u32)
    }
}

#[derive(Clone, Copy, Debug)]
struct SfpLine {
    tag: u64,
    /// Words installed (the prediction at fill time).
    stored: Footprint,
    /// Words actually used while resident (for training).
    observed: Footprint,
    dirty: bool,
    /// The data way holding the words (decoupled sectored placement).
    way: usize,
    /// The PC and demand word that installed the line, for training.
    fill_pc: Addr,
    fill_word: WordIndex,
}

/// One set of the decoupled sectored cache: resident lines in LRU order
/// plus the per-way occupancy masks. A word can only live at its native
/// offset within a data way, so two lines sharing a word offset cannot
/// share a way — the placement restriction the paper highlights
/// (Section 9).
#[derive(Clone, Debug, Default)]
struct SfpSet {
    /// MRU first.
    lines: VecDeque<SfpLine>,
    /// Occupied word offsets per data way.
    masks: Vec<u16>,
}

/// A second-level cache that installs only the words its spatial footprint
/// predictor expects to be used, storing them in a decoupled sectored
/// array (per-set word-slot budget + extra tags).
///
/// Mispredictions are SFP's structural weakness (Section 9): a word that
/// was not predicted is a miss that a traditional cache would have hit,
/// whereas LDIS only filters at eviction time.
#[derive(Clone, Debug)]
pub struct SfpCache {
    cfg: SfpConfig,
    predictor: FootprintPredictor,
    sets: Vec<SfpSet>,
    reverter: Option<Reverter>,
    stats: L2Stats,
    compulsory: CompulsoryTracker,
    label: String,
}

impl SfpCache {
    /// Creates an empty SFP cache.
    pub fn new(cfg: SfpConfig) -> Self {
        let stats = L2Stats::new(cfg.geometry.words_per_line(), cfg.ways);
        SfpCache {
            predictor: FootprintPredictor::new(
                cfg.predictor_entries,
                cfg.geometry.words_per_line(),
            ),
            sets: (0..cfg.num_sets())
                .map(|_| SfpSet {
                    lines: VecDeque::new(),
                    masks: vec![0; cfg.ways as usize],
                })
                .collect(),
            reverter: cfg
                .reverter
                .map(|rc| Reverter::new(rc, cfg.num_sets(), cfg.ways)),
            stats,
            compulsory: CompulsoryTracker::new(),
            label: format!("SFP-{}k", cfg.predictor_entries / 1024),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SfpConfig {
        &self.cfg
    }

    /// The predictor (for inspection).
    pub fn predictor(&self) -> &FootprintPredictor {
        &self.predictor
    }

    fn set_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let sets = self.cfg.num_sets();
        (
            (line.raw() & (sets - 1)) as usize,
            line.raw() >> sets.trailing_zeros(),
        )
    }

    fn sfp_active_for(&self, set: usize) -> bool {
        match &self.reverter {
            None => true,
            Some(r) => r.is_leader(set) || r.ldis_enabled(),
        }
    }

    fn observe_reverter(&mut self, set: usize, line: LineAddr, missed: bool) {
        if let Some(r) = self.reverter.as_mut() {
            if r.is_leader(set) {
                r.observe_leader_access(set, line, missed);
            }
        }
    }

    /// Installs a line with the given stored words. The decoupled sectored
    /// placement requires a data way whose occupied word offsets are
    /// disjoint from the line's; LRU lines are evicted until a way fits
    /// and the tag budget holds, training the predictor with each
    /// victim's observed footprint.
    fn install(&mut self, set_idx: usize, tag: u64, req: &L2Request, stored: Footprint) {
        let max_tags = self.cfg.tags_per_set as usize;
        // `set_idx` is masked to `0..num_sets` by `set_and_tag`, so the
        // `get` lookups cannot miss.
        let way = loop {
            let Some(set) = self.sets.get(set_idx) else {
                return;
            };
            if set.lines.len() < max_tags {
                if let Some(way) = set.masks.iter().position(|&m| m & stored.bits() == 0) {
                    break way;
                }
            }
            self.evict_lru(set_idx);
        };
        let Some(set) = self.sets.get_mut(set_idx) else {
            return;
        };
        if let Some(mask) = set.masks.get_mut(way) {
            *mask |= stored.bits();
        }
        let mut observed = Footprint::empty();
        if !req.is_instr {
            observed.touch(req.word);
        }
        set.lines.push_front(SfpLine {
            tag,
            stored,
            observed,
            dirty: req.write,
            way,
            fill_pc: req.pc,
            fill_word: req.word,
        });
    }

    fn evict_lru(&mut self, set_idx: usize) {
        // Callers only evict from sets they just found full; an empty set
        // simply has nothing to evict.
        let Some(set) = self.sets.get_mut(set_idx) else {
            return;
        };
        let Some(victim) = set.lines.pop_back() else {
            return;
        };
        if let Some(mask) = set.masks.get_mut(victim.way) {
            *mask &= !victim.stored.bits();
        }
        self.stats.evictions.bump();
        if victim.dirty {
            self.stats.writebacks.bump();
        }
        self.stats
            .words_used_at_evict
            .record(victim.observed.used_words() as usize);
        self.predictor.train(
            victim.fill_pc,
            victim.fill_word,
            if victim.observed.is_empty() {
                victim.stored
            } else {
                victim.observed
            },
        );
    }
}

impl SecondLevel for SfpCache {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses.bump();
        let (set_idx, tag) = self.set_and_tag(req.line);
        let full = Footprint::full(self.cfg.geometry.words_per_line());

        let resident = self.sets.get_mut(set_idx).and_then(|set| {
            set.lines
                .iter()
                .position(|l| l.tag == tag)
                .and_then(|pos| set.lines.remove(pos))
        });
        if let Some(mut line) = resident {
            if req.is_instr || line.stored.is_used(req.word) {
                // Word present: a hit. Count instruction hits as LOC-style
                // hits and data word hits as WOC-style hits for reporting.
                line.observed.touch(req.word);
                line.dirty |= req.write;
                let stored = line.stored;
                if let Some(set) = self.sets.get_mut(set_idx) {
                    set.lines.push_front(line);
                }
                if req.is_instr {
                    self.stats.loc_hits.bump();
                } else {
                    self.stats.woc_hits.bump();
                }
                self.observe_reverter(set_idx, req.line, false);
                let valid = if req.is_instr { full } else { stored };
                return L2Response {
                    outcome: if req.is_instr {
                        L2Outcome::LocHit
                    } else {
                        L2Outcome::WocHit
                    },
                    valid_words: valid,
                };
            }
            // Demanded word was not predicted: a hole miss. Drop the stale
            // copy (clearing its way occupancy) and refetch with a widened
            // prediction (observed ∪ stored ∪ demand); dirty words merge
            // into the refetched line.
            self.stats.hole_misses.bump();
            self.observe_reverter(set_idx, req.line, true);
            if let Some(mask) = self
                .sets
                .get_mut(set_idx)
                .and_then(|s| s.masks.get_mut(line.way))
            {
                *mask &= !line.stored.bits();
            }
            let mut stored = line.stored.merged(line.observed);
            stored.touch(req.word);
            self.install(set_idx, tag, &req, stored);
            if line.dirty {
                if let Some(l) = self
                    .sets
                    .get_mut(set_idx)
                    .and_then(|s| s.lines.iter_mut().find(|l| l.tag == tag))
                {
                    l.dirty = true;
                }
            }
            return L2Response {
                outcome: L2Outcome::HoleMiss,
                valid_words: full,
            };
        }

        // Line miss: predict the footprint and install only those words.
        self.stats.line_misses.bump();
        if self.compulsory.record_miss(req.line) {
            self.stats.compulsory_misses.bump();
        }
        self.observe_reverter(set_idx, req.line, true);
        let stored = if req.is_instr || !self.sfp_active_for(set_idx) {
            full
        } else {
            self.predictor.predict(req.pc, req.word)
        };
        self.install(set_idx, tag, &req, stored);
        L2Response {
            outcome: L2Outcome::LineMiss,
            valid_words: full,
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool) {
        let (set_idx, tag) = self.set_and_tag(line);
        match self
            .sets
            .get_mut(set_idx)
            .and_then(|s| s.lines.iter_mut().find(|l| l.tag == tag))
        {
            Some(l) => {
                l.observed.merge(footprint);
                l.dirty |= dirty;
            }
            None => {
                if dirty {
                    self.stats.writebacks.bump();
                }
            }
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = L2Stats::new(self.cfg.geometry.words_per_line(), self.cfg.ways);
    }

    fn geometry(&self) -> LineGeometry {
        self.cfg.geometry
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SfpCache {
        let cfg = SfpConfig {
            size_bytes: 4 * 8 * 64, // 4 sets
            ways: 8,
            tags_per_set: 22,
            predictor_entries: 1024,
            geometry: LineGeometry::default(),
            reverter: None,
        };
        SfpCache::new(cfg)
    }

    fn req(line: u64, word: u8, pc: u64) -> L2Request {
        L2Request::data(LineAddr::new(line), WordIndex::new(word), false).with_pc(Addr::new(pc))
    }

    #[test]
    fn untrained_fill_behaves_like_traditional() {
        let mut c = small();
        assert_eq!(c.access(req(0, 0, 0x10)).outcome, L2Outcome::LineMiss);
        // Untrained → full line stored: any word hits.
        assert_eq!(c.access(req(0, 7, 0x10)).outcome, L2Outcome::WocHit);
    }

    #[test]
    fn trained_prediction_filters_words_and_causes_hole_misses() {
        let mut c = small();
        let pc = 0x4000;
        // Touch word 0 of lines 0..22 (set 0) to fill the tag budget and
        // force evictions that train the predictor with "only word 0 used".
        for i in 0..30u64 {
            c.access(req(i * 4, 0, pc));
        }
        assert!(c.stats().evictions > 0);
        // A new line through the same PC is now predicted sparse.
        c.access(req(1000 * 4, 0, pc));
        let outcome = c.access(req(1000 * 4, 5, pc)).outcome;
        assert_eq!(outcome, L2Outcome::HoleMiss, "unpredicted word must miss");
        // After the hole miss the refetch widened the stored words.
        assert_eq!(c.access(req(1000 * 4, 5, pc)).outcome, L2Outcome::WocHit);
        assert_eq!(c.access(req(1000 * 4, 0, pc)).outcome, L2Outcome::WocHit);
    }

    #[test]
    fn sparse_predictions_pack_more_lines() {
        let mut c = small();
        let pc = 0x8000;
        // Train: lines via this PC use only their demand word (words 0..8
        // cycling). Untrained installs are full lines, so only 8 fit;
        // evictions train each (pc, word) entry sparse.
        for i in 0..64u64 {
            c.access(req(i * 4, (i % 8) as u8, pc));
        }
        // Install 22 fresh sparse lines with cycling word offsets: the
        // decoupled placement packs disjoint offsets into shared ways, so
        // all 22 fit the tag budget — with full lines only 8 could.
        for i in 100..122u64 {
            c.access(req(i * 4, (i % 8) as u8, pc));
        }
        for i in 100..122u64 {
            assert!(
                c.access(req(i * 4, (i % 8) as u8, pc)).outcome.is_hit(),
                "sparse line {i} should still be resident"
            );
        }
    }

    #[test]
    fn placement_restriction_limits_same_offset_lines() {
        let mut c = small();
        let pc = 0xa000;
        // Train (pc, word 0) sparse.
        for i in 0..40u64 {
            c.access(req(i * 4, 0, pc));
        }
        // 12 single-word lines all demanding word 0: only 8 ways exist, so
        // at most 8 can be resident despite the 22-entry tag budget — the
        // decoupled sectored cache's weakness vs. the WOC (Section 9).
        for i in 100..112u64 {
            c.access(req(i * 4, 0, pc));
        }
        let resident = (100..112u64)
            .filter(|&i| {
                let (set, tag) = c.set_and_tag(LineAddr::new(i * 4));
                c.sets[set].lines.iter().any(|l| l.tag == tag)
            })
            .count();
        assert!(
            resident <= 8,
            "same-offset lines must not share ways: {resident}"
        );
    }

    #[test]
    fn instruction_lines_always_fill_full() {
        let mut c = small();
        c.access(L2Request::instr(LineAddr::new(0)));
        assert_eq!(
            c.access(L2Request::instr(LineAddr::new(0))).outcome,
            L2Outcome::LocHit
        );
    }

    #[test]
    fn l1_evictions_train_observed_footprints() {
        let mut c = small();
        let pc = 0x9000;
        c.access(req(0, 0, pc));
        c.on_l1d_evict(LineAddr::new(0), Footprint::from_bits(0b11), true);
        // Evict line 0 by filling the set with full lines through *other*
        // PCs (so only line 0's eviction trains entry `pc`).
        for i in 1..=8u64 {
            c.access(req(i * 4, 0, 0x100 + i));
        }
        // New line through the same pc/word: predicted words = {0, 1}.
        c.access(req(777 * 4, 0, pc));
        let hit = c.access(req(777 * 4, 1, pc));
        assert!(
            hit.outcome == L2Outcome::WocHit,
            "word 1 was in the trained footprint, got {:?}",
            hit.outcome
        );
        // Word 5 was never observed → hole miss.
        assert_eq!(c.access(req(777 * 4, 5, pc)).outcome, L2Outcome::HoleMiss);
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut c = small();
        c.access(L2Request::data(LineAddr::new(0), WordIndex::new(0), true).with_pc(Addr::new(1)));
        for i in 1..40u64 {
            c.access(req(i * 4, 0, 0x77));
        }
        assert!(c.stats().writebacks >= 1);
    }
}
