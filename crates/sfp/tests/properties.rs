//! Property tests for the SFP comparator, driven by a deterministic
//! seeded generator (`SimRng`) so every run explores the same cases and
//! failures reproduce exactly.

use ldis_cache::{L2Request, SecondLevel};
use ldis_mem::{Addr, Footprint, LineAddr, LineGeometry, SimRng, WordIndex};
use ldis_sfp::{FootprintPredictor, SfpCache, SfpConfig};

fn tiny() -> SfpCache {
    SfpCache::new(SfpConfig {
        size_bytes: 8 * 8 * 64,
        ways: 8,
        tags_per_set: 22,
        predictor_entries: 4096,
        geometry: LineGeometry::default(),
        reverter: None,
    })
}

/// Outcome accounting is exact for arbitrary request sequences, and a
/// just-requested word always hits immediately afterwards.
#[test]
fn accounting_and_rereference() {
    let mut rng = SimRng::new(0x5f91);
    for case in 0..30 {
        let mut c = tiny();
        let reqs = 1 + rng.index(299);
        for _ in 0..reqs {
            let line = rng.range(256);
            let word = rng.range(8) as u8;
            let pc = rng.range(16);
            let write = rng.chance(0.5);
            let req = L2Request::data(LineAddr::new(line), WordIndex::new(word), write)
                .with_pc(Addr::new(0x1000 + pc * 4));
            c.access(req);
            assert!(
                c.access(req).outcome.is_hit(),
                "case {case}: immediate re-reference must hit"
            );
        }
        let s = c.stats();
        assert_eq!(
            s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
            s.accesses,
            "case {case}"
        );
        assert!(s.compulsory_misses <= s.demand_misses(), "case {case}");
    }
}

/// The predictor always includes the demanded word, trained or not.
#[test]
fn prediction_covers_demand() {
    let mut rng = SimRng::new(0x5f92);
    for case in 0..300 {
        let pc = rng.next_u64();
        let word = rng.range(8) as u8;
        let trained_bits = rng.range(256) as u16;
        let mut p = FootprintPredictor::new(1024, 8);
        let w = WordIndex::new(word);
        assert!(p.predict(Addr::new(pc), w).is_used(w), "case {case}");
        p.train(Addr::new(pc), w, Footprint::from_bits(trained_bits));
        assert!(p.predict(Addr::new(pc), w).is_used(w), "case {case}");
    }
}

/// Training then predicting with the same key returns the trained
/// footprint (plus the demand word).
#[test]
fn train_predict_roundtrip() {
    let mut rng = SimRng::new(0x5f93);
    for case in 0..300 {
        let pc = rng.next_u64();
        let word = rng.range(8) as u8;
        let bits = 1 + rng.range(255) as u16;
        let mut p = FootprintPredictor::new(64 * 1024, 8);
        let w = WordIndex::new(word);
        p.train(Addr::new(pc), w, Footprint::from_bits(bits));
        let mut expected = Footprint::from_bits(bits);
        expected.touch(w);
        assert_eq!(p.predict(Addr::new(pc), w), expected, "case {case}");
    }
}

/// The SFP cache is deterministic: identical request sequences produce
/// identical statistics.
#[test]
fn sfp_is_deterministic() {
    let mut rng = SimRng::new(0x5f94);
    for case in 0..20 {
        let count = 1 + rng.index(199);
        let reqs: Vec<(u64, u8, u64)> = (0..count)
            .map(|_| (rng.range(128), rng.range(8) as u8, rng.range(8)))
            .collect();
        let run = |reqs: &[(u64, u8, u64)]| {
            let mut c = tiny();
            for &(line, word, pc) in reqs {
                c.access(
                    L2Request::data(LineAddr::new(line), WordIndex::new(word), false)
                        .with_pc(Addr::new(pc * 8)),
                );
            }
            (
                c.stats().hits(),
                c.stats().demand_misses(),
                c.stats().evictions,
            )
        };
        assert_eq!(run(&reqs), run(&reqs), "case {case}");
    }
}

/// Reset preserves contents but zeroes counters.
#[test]
fn reset_stats_keeps_contents() {
    let mut c = tiny();
    let req = L2Request::data(LineAddr::new(5), WordIndex::new(0), false);
    c.access(req);
    c.reset_stats();
    assert_eq!(c.stats().accesses, 0);
    // Still resident: the next access hits.
    assert!(c.access(req).outcome.is_hit());
    assert_eq!(c.stats().accesses, 1);
}
