//! Property tests for the SFP comparator.

use ldis_cache::{L2Request, SecondLevel};
use ldis_mem::{Addr, Footprint, LineAddr, LineGeometry, WordIndex};
use ldis_sfp::{FootprintPredictor, SfpCache, SfpConfig};
use proptest::prelude::*;

fn tiny() -> SfpCache {
    SfpCache::new(SfpConfig {
        size_bytes: 8 * 8 * 64,
        ways: 8,
        tags_per_set: 22,
        predictor_entries: 4096,
        geometry: LineGeometry::default(),
        reverter: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Outcome accounting is exact for arbitrary request sequences, and a
    /// just-requested word always hits immediately afterwards.
    #[test]
    fn accounting_and_rereference(
        reqs in prop::collection::vec((0u64..256, 0u8..8, 0u64..16, any::<bool>()), 1..300),
    ) {
        let mut c = tiny();
        for (line, word, pc, write) in reqs {
            let req = L2Request::data(LineAddr::new(line), WordIndex::new(word), write)
                .with_pc(Addr::new(0x1000 + pc * 4));
            c.access(req);
            prop_assert!(
                c.access(req).outcome.is_hit(),
                "immediate re-reference must hit"
            );
        }
        let s = c.stats();
        prop_assert_eq!(
            s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
            s.accesses
        );
        prop_assert!(s.compulsory_misses <= s.demand_misses());
    }

    /// The predictor always includes the demanded word, trained or not.
    #[test]
    fn prediction_covers_demand(
        pc in any::<u64>(),
        word in 0u8..8,
        trained_bits in 0u16..256,
    ) {
        let mut p = FootprintPredictor::new(1024, 8);
        let w = WordIndex::new(word);
        prop_assert!(p.predict(Addr::new(pc), w).is_used(w));
        p.train(Addr::new(pc), w, Footprint::from_bits(trained_bits));
        prop_assert!(p.predict(Addr::new(pc), w).is_used(w));
    }

    /// Training then predicting with the same key returns the trained
    /// footprint (plus the demand word).
    #[test]
    fn train_predict_roundtrip(pc in any::<u64>(), word in 0u8..8, bits in 1u16..256) {
        let mut p = FootprintPredictor::new(64 * 1024, 8);
        let w = WordIndex::new(word);
        p.train(Addr::new(pc), w, Footprint::from_bits(bits));
        let mut expected = Footprint::from_bits(bits);
        expected.touch(w);
        prop_assert_eq!(p.predict(Addr::new(pc), w), expected);
    }

    /// The SFP cache is deterministic: identical request sequences produce
    /// identical statistics.
    #[test]
    fn sfp_is_deterministic(
        reqs in prop::collection::vec((0u64..128, 0u8..8, 0u64..8), 1..200),
    ) {
        let run = |reqs: &[(u64, u8, u64)]| {
            let mut c = tiny();
            for &(line, word, pc) in reqs {
                c.access(
                    L2Request::data(LineAddr::new(line), WordIndex::new(word), false)
                        .with_pc(Addr::new(pc * 8)),
                );
            }
            (c.stats().hits(), c.stats().demand_misses(), c.stats().evictions)
        };
        prop_assert_eq!(run(&reqs), run(&reqs));
    }
}

/// Reset preserves contents but zeroes counters.
#[test]
fn reset_stats_keeps_contents() {
    let mut c = tiny();
    let req = L2Request::data(LineAddr::new(5), WordIndex::new(0), false);
    c.access(req);
    c.reset_stats();
    assert_eq!(c.stats().accesses, 0);
    // Still resident: the next access hits.
    assert!(c.access(req).outcome.is_hit());
    assert_eq!(c.stats().accesses, 1);
}
