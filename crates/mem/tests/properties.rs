//! Property tests for the memory substrate.

use ldis_mem::stats::Histogram;
use ldis_mem::{Addr, Footprint, LineGeometry, SimRng, WordIndex};
use proptest::prelude::*;

proptest! {
    /// Line/word decomposition reconstructs the word-aligned address.
    #[test]
    fn geometry_roundtrip(addr in 0u64..(1 << 40)) {
        let geom = LineGeometry::default();
        let a = Addr::new(addr);
        let line = geom.line_addr(a);
        let word = geom.word_index(a);
        let rebuilt = geom.word_base(line, word);
        prop_assert_eq!(rebuilt.raw(), addr & !7, "8-byte word alignment");
        prop_assert!(word.get() < geom.words_per_line());
    }

    /// Word spans stay within one line and always cover the first byte.
    #[test]
    fn word_span_bounds(addr in 0u64..(1 << 30), size in 0u32..64) {
        let geom = LineGeometry::default();
        let (first, last) = geom.word_span(Addr::new(addr), size);
        prop_assert!(first <= last);
        prop_assert!(last.get() < geom.words_per_line());
        prop_assert_eq!(first, geom.word_index(Addr::new(addr)));
    }

    /// Footprint merge is commutative, associative and monotone, and
    /// `covers` is consistent with merge.
    #[test]
    fn footprint_merge_algebra(a in 0u16..256, b in 0u16..256, c in 0u16..256) {
        let (fa, fb, fc) = (
            Footprint::from_bits(a),
            Footprint::from_bits(b),
            Footprint::from_bits(c),
        );
        prop_assert_eq!(fa.merged(fb), fb.merged(fa));
        prop_assert_eq!(fa.merged(fb).merged(fc), fa.merged(fb.merged(fc)));
        prop_assert!(fa.merged(fb).covers(fa));
        prop_assert!(fa.merged(fb).covers(fb));
        prop_assert!(fa.merged(fb).used_words() >= fa.used_words().max(fb.used_words()));
        // Idempotence.
        prop_assert_eq!(fa.merged(fa), fa);
    }

    /// `woc_slots` is the least power of two at or above the used count.
    #[test]
    fn woc_slots_is_minimal_power_of_two(bits in 1u16..256) {
        let fp = Footprint::from_bits(bits);
        let slots = fp.woc_slots();
        prop_assert!(slots.is_power_of_two());
        prop_assert!(slots >= fp.used_words());
        prop_assert!(slots / 2 < fp.used_words());
    }

    /// `iter_used` yields exactly the set bits, sorted.
    #[test]
    fn iter_used_matches_bits(bits in 0u16..=u16::MAX) {
        let fp = Footprint::from_bits(bits);
        let words: Vec<u8> = fp.iter_used().map(WordIndex::get).collect();
        prop_assert_eq!(words.len(), fp.used_words() as usize);
        for w in &words {
            prop_assert!(fp.is_used(WordIndex::new(*w)));
        }
        prop_assert!(words.windows(2).all(|p| p[0] < p[1]));
    }

    /// RNG ranges are always in bounds, and the same seed gives the same
    /// stream regardless of interleaving with other instances.
    #[test]
    fn rng_bounds_and_determinism(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.range(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.range(bound));
        }
    }

    /// Histogram median respects the cumulative-half definition.
    #[test]
    fn histogram_median_definition(counts in prop::collection::vec(0u64..50, 2..12)) {
        let mut h = Histogram::new(counts.len());
        for (i, &c) in counts.iter().enumerate() {
            h.record_n(i, c);
        }
        match h.median_bin() {
            None => prop_assert_eq!(h.total(), 0),
            Some(m) => {
                let half = h.total().div_ceil(2);
                let below: u64 = (0..m).map(|i| h.count(i)).sum();
                let through: u64 = (0..=m).map(|i| h.count(i)).sum();
                prop_assert!(below < half);
                prop_assert!(through >= half);
            }
        }
    }
}
