//! Property tests for the memory substrate, driven by a deterministic
//! seeded generator (`SimRng`) so every run explores the same cases and
//! failures reproduce exactly.

use ldis_mem::stats::Histogram;
use ldis_mem::{Addr, Footprint, LineGeometry, SimRng, WordIndex};

/// Line/word decomposition reconstructs the word-aligned address.
#[test]
fn geometry_roundtrip() {
    let geom = LineGeometry::default();
    let mut rng = SimRng::new(0x9e01);
    for _ in 0..2000 {
        let addr = rng.range(1 << 40);
        let a = Addr::new(addr);
        let line = geom.line_addr(a);
        let word = geom.word_index(a);
        let rebuilt = geom.word_base(line, word);
        assert_eq!(rebuilt.raw(), addr & !7, "8-byte word alignment");
        assert!(word.get() < geom.words_per_line());
    }
}

/// Word spans stay within one line and always cover the first byte.
#[test]
fn word_span_bounds() {
    let geom = LineGeometry::default();
    let mut rng = SimRng::new(0x9e02);
    for _ in 0..2000 {
        let addr = Addr::new(rng.range(1 << 30));
        let size = rng.range(64) as u32;
        let (first, last) = geom.word_span(addr, size);
        assert!(first <= last);
        assert!(last.get() < geom.words_per_line());
        assert_eq!(first, geom.word_index(addr));
    }
}

/// Footprint merge is commutative, associative and monotone, and
/// `covers` is consistent with merge.
#[test]
fn footprint_merge_algebra() {
    let mut rng = SimRng::new(0x9e03);
    for _ in 0..2000 {
        let (fa, fb, fc) = (
            Footprint::from_bits(rng.range(256) as u16),
            Footprint::from_bits(rng.range(256) as u16),
            Footprint::from_bits(rng.range(256) as u16),
        );
        assert_eq!(fa.merged(fb), fb.merged(fa));
        assert_eq!(fa.merged(fb).merged(fc), fa.merged(fb.merged(fc)));
        assert!(fa.merged(fb).covers(fa));
        assert!(fa.merged(fb).covers(fb));
        assert!(fa.merged(fb).used_words() >= fa.used_words().max(fb.used_words()));
        // Idempotence.
        assert_eq!(fa.merged(fa), fa);
    }
}

/// `woc_slots` is the least power of two at or above the used count.
#[test]
fn woc_slots_is_minimal_power_of_two() {
    for bits in 1u16..256 {
        let fp = Footprint::from_bits(bits);
        let slots = fp.woc_slots();
        assert!(slots.is_power_of_two());
        assert!(slots >= fp.used_words());
        assert!(slots / 2 < fp.used_words());
    }
}

/// `iter_used` yields exactly the set bits, sorted — exhaustively over
/// every possible footprint.
#[test]
fn iter_used_matches_bits() {
    for bits in 0u16..=u16::MAX {
        let fp = Footprint::from_bits(bits);
        let words: Vec<u8> = fp.iter_used().map(WordIndex::get).collect();
        assert_eq!(words.len(), fp.used_words() as usize);
        for w in &words {
            assert!(fp.is_used(WordIndex::new(*w)));
        }
        assert!(words.windows(2).all(|p| p[0] < p[1]));
    }
}

/// RNG ranges are always in bounds, and the same seed gives the same
/// stream regardless of interleaving with other instances.
#[test]
fn rng_bounds_and_determinism() {
    let mut meta = SimRng::new(0x9e04);
    for _ in 0..100 {
        let seed = meta.next_u64();
        let bound = 1 + meta.range(10_000);
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.range(bound);
            assert!(x < bound);
            assert_eq!(x, b.range(bound));
        }
    }
}

/// Histogram median respects the cumulative-half definition.
#[test]
fn histogram_median_definition() {
    let mut rng = SimRng::new(0x9e05);
    for _ in 0..1000 {
        let bins = 2 + rng.index(10);
        let mut h = Histogram::new(bins);
        for i in 0..bins {
            h.record_n(i, rng.range(50));
        }
        match h.median_bin() {
            None => assert_eq!(h.total(), 0),
            Some(m) => {
                let half = h.total().div_ceil(2);
                let below: u64 = (0..m).map(|i| h.count(i)).sum();
                let through: u64 = (0..=m).map(|i| h.count(i)).sum();
                assert!(below < half);
                assert!(through >= half);
            }
        }
    }
}

/// `set_count` overwrites exactly one bin (the fault injector's hook).
#[test]
fn set_count_overwrites_one_bin() {
    let mut rng = SimRng::new(0x9e06);
    for _ in 0..500 {
        let mut h = Histogram::new(9);
        for i in 0..9 {
            h.record_n(i, rng.range(100));
        }
        let snapshot: Vec<u64> = (0..9).map(|i| h.count(i)).collect();
        let bin = rng.index(9);
        let flipped = snapshot[bin] ^ (1 << rng.range(16));
        h.set_count(bin, flipped);
        for (i, &before) in snapshot.iter().enumerate() {
            let expect = if i == bin { flipped } else { before };
            assert_eq!(h.count(i), expect);
        }
    }
}
