//! Line/word geometry arithmetic.

use crate::{Addr, LineAddr, WordIndex};

/// The line-size and word-size geometry of a cache.
///
/// All address arithmetic in the simulator goes through this type so that
/// the same code supports the paper's baseline (64 B lines, 8 B words —
/// Section 2 fixes the word size at 8 B because the Alpha ISA's largest
/// access is 8 B) as well as the line-size sensitivity studies of
/// Section 7.5.1 (128 B, 256 B) and the word-size ablation.
///
/// Both sizes must be powers of two and the line must hold at least two and
/// at most sixteen words ([`Footprint`](crate::Footprint) stores up to 16
/// used bits).
///
/// # Example
///
/// ```
/// use ldis_mem::{Addr, LineGeometry};
///
/// let geom = LineGeometry::new(64, 8);
/// assert_eq!(geom.words_per_line(), 8);
/// let a = Addr::new(0x12345);
/// assert_eq!(geom.line_addr(a).raw(), 0x12345 >> 6);
/// assert_eq!(geom.word_index(a).get(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LineGeometry {
    line_bytes: u32,
    word_bytes: u32,
    line_shift: u32,
    word_shift: u32,
}

impl LineGeometry {
    /// Creates a geometry with the given line size and word size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two, if `word_bytes` does not
    /// divide `line_bytes`, or if the line holds fewer than 2 or more than
    /// 16 words.
    pub fn new(line_bytes: u32, word_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        assert!(
            word_bytes.is_power_of_two(),
            "word size must be a power of two, got {word_bytes}"
        );
        assert!(
            word_bytes < line_bytes,
            "word size {word_bytes} must be smaller than line size {line_bytes}"
        );
        let words = line_bytes / word_bytes;
        assert!(
            (2..=16).contains(&words),
            "a line must hold 2..=16 words, got {words}"
        );
        LineGeometry {
            line_bytes,
            word_bytes,
            line_shift: line_bytes.trailing_zeros(),
            word_shift: word_bytes.trailing_zeros(),
        }
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Word size in bytes.
    pub const fn word_bytes(&self) -> u32 {
        self.word_bytes
    }

    /// Number of words in a line.
    pub const fn words_per_line(&self) -> u8 {
        // ldis: allow(T1, "new() asserts the quotient line_bytes / word_bytes lies in 2..=16")
        (self.line_bytes / self.word_bytes) as u8
    }

    /// The line address containing the byte address `addr`.
    pub const fn line_addr(&self, addr: Addr) -> LineAddr {
        LineAddr::new(addr.raw() >> self.line_shift)
    }

    /// The first byte address of line `line`.
    pub const fn line_base(&self, line: LineAddr) -> Addr {
        // ldis: allow(O1, "line addresses are produced by addr >> line_shift, so shifting back cannot overflow; line_shift <= 7 by the power-of-two assert in new()")
        Addr::new(line.raw() << self.line_shift)
    }

    /// The index of the word within its line that `addr` falls in.
    pub const fn word_index(&self, addr: Addr) -> WordIndex {
        let offset = addr.raw() & (self.line_bytes as u64 - 1);
        // ldis: allow(T1, "offset < line_bytes and word_shift = log2(word_bytes), so the shifted value is a word index below the asserted 16-word bound")
        WordIndex::new((offset >> self.word_shift) as u8)
    }

    /// The byte address of word `word` of line `line`.
    pub const fn word_base(&self, line: LineAddr, word: WordIndex) -> Addr {
        // ldis: allow(O1, "shift counts are trailing_zeros of the validated power-of-two sizes (<= 7) and the word offset is below line_bytes, so the sum stays within the line")
        Addr::new((line.raw() << self.line_shift) + ((word.get() as u64) << self.word_shift))
    }

    /// The range of word indices touched by an access of `size` bytes at
    /// `addr`, clamped to the line containing `addr` (the simulator, like
    /// the paper's Alpha traces, never issues line-crossing accesses; a
    /// crossing access is clamped rather than split).
    pub fn word_span(&self, addr: Addr, size: u32) -> (WordIndex, WordIndex) {
        let first = self.word_index(addr);
        let size = size.max(1);
        let last_byte = addr.raw().saturating_add(size as u64 - 1);
        let last = if self.line_addr(Addr::new(last_byte)) == self.line_addr(addr) {
            self.word_index(Addr::new(last_byte))
        } else {
            WordIndex::new(self.words_per_line() - 1)
        };
        (first, last)
    }
}

impl Default for LineGeometry {
    /// The paper's baseline geometry: 64 B lines, 8 B words.
    fn default() -> Self {
        LineGeometry::new(64, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let g = LineGeometry::default();
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.word_bytes(), 8);
        assert_eq!(g.words_per_line(), 8);
    }

    #[test]
    fn line_and_word_arithmetic() {
        let g = LineGeometry::new(64, 8);
        let a = Addr::new(0x1038);
        assert_eq!(g.line_addr(a).raw(), 0x40);
        assert_eq!(g.word_index(a).get(), 7);
        assert_eq!(g.line_base(LineAddr::new(0x40)), Addr::new(0x1000));
        assert_eq!(
            g.word_base(LineAddr::new(0x40), WordIndex::new(7)),
            Addr::new(0x1038)
        );
    }

    #[test]
    fn word_span_within_one_word() {
        let g = LineGeometry::default();
        let (first, last) = g.word_span(Addr::new(0x1004), 4);
        assert_eq!(first.get(), 0);
        assert_eq!(last.get(), 0);
    }

    #[test]
    fn word_span_straddles_words() {
        let g = LineGeometry::default();
        let (first, last) = g.word_span(Addr::new(0x1004), 8);
        assert_eq!(first.get(), 0);
        assert_eq!(last.get(), 1);
    }

    #[test]
    fn word_span_clamps_at_line_end() {
        let g = LineGeometry::default();
        let (first, last) = g.word_span(Addr::new(0x103c), 16);
        assert_eq!(first.get(), 7);
        assert_eq!(last.get(), 7);
    }

    #[test]
    fn word_span_zero_size_counts_one_byte() {
        let g = LineGeometry::default();
        let (first, last) = g.word_span(Addr::new(0x1010), 0);
        assert_eq!(first, last);
        assert_eq!(first.get(), 2);
    }

    #[test]
    fn bigger_lines() {
        let g = LineGeometry::new(128, 8);
        assert_eq!(g.words_per_line(), 16);
        assert_eq!(g.word_index(Addr::new(127)).get(), 15);
        assert_eq!(g.word_index(Addr::new(128)).get(), 0);
    }

    #[test]
    fn four_byte_words() {
        let g = LineGeometry::new(32, 4);
        assert_eq!(g.words_per_line(), 8);
        assert_eq!(g.word_index(Addr::new(0x1c)).get(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        let _ = LineGeometry::new(48, 8);
    }

    #[test]
    #[should_panic(expected = "2..=16 words")]
    fn rejects_too_many_words() {
        let _ = LineGeometry::new(256, 8);
    }

    #[test]
    #[should_panic(expected = "must be smaller")]
    fn rejects_word_not_smaller_than_line() {
        let _ = LineGeometry::new(64, 64);
    }
}
