//! Branch-light bitmask helpers for the simulator hot path.
//!
//! The footprint encoding (bit *i* = word *i*, see `DESIGN.md`) makes most
//! per-word questions answerable with one or two word-sized bitwise
//! operations instead of a loop over word indices. This module collects
//! those primitives so the cache, WOC and workload crates share a single
//! audited implementation:
//!
//! * [`span_mask16`] — the inclusive word-range mask used by
//!   [`Footprint::touch_span`](crate::Footprint::touch_span) and the
//!   sectored L1;
//! * [`low_mask`] / [`aligned_stride`] — building blocks for way-wide
//!   occupancy masks;
//! * [`free_aligned_windows`] / [`eligible_aligned_slots`] — the WOC
//!   run-finder: given a way's valid/head bits packed into a `u64`, return
//!   the bitmask of aligned offsets where a power-of-two run fits.
//!
//! All helpers are `const fn` and total over their stated domains; callers
//! in simulator crates never need raw indexing or panics around them.

/// A `u64` with the low `len` bits set. Saturates at all-ones for
/// `len >= 64`.
pub const fn low_mask(len: u32) -> u64 {
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// The 16-bit mask with bits `first..=last` set (bit *i* = word *i*).
/// Returns 0 for an empty span (`first > last`) or out-of-range `first`.
///
/// This is the single shift-mask replacement for the historical
/// `for w in first..=last` loop; `tests/hotpath_equivalence.rs` proves it
/// equal to the per-word reference for every `(first, last)` pair.
pub const fn span_mask16(first: u8, last: u8) -> u16 {
    if first > last || first >= 16 {
        return 0;
    }
    let width = (last - first + 1) as u32;
    let ones = if width >= 16 {
        u16::MAX
    } else {
        (1u16 << width) - 1
    };
    ones << first
}

/// Test-only mutation hook for the differential equivalence suite: with
/// `mutate` false this is exactly [`span_mask16`]; with `mutate` true the
/// mask is deliberately short by one word at the top (a classic off-by-one).
/// The suite runs itself against the mutated mask to prove it would catch
/// such a bug. Production code never passes `mutate = true`.
#[doc(hidden)]
pub const fn span_mask16_with_mutation(first: u8, last: u8, mutate: bool) -> u16 {
    if mutate && first < last {
        span_mask16(first, last - 1)
    } else {
        span_mask16(first, last)
    }
}

/// A `u64` with a bit set at every multiple of `slots` (bit 0, `slots`,
/// `2*slots`, ...). `slots` must be a non-zero power of two — the WOC's
/// run sizes (Section 5.1 stores runs of 1, 2, 4 or 8 words).
pub const fn aligned_stride(slots: u32) -> u64 {
    debug_assert!(slots.is_power_of_two());
    let mut mask = 1u64;
    let mut step = slots;
    while step < 64 {
        mask |= mask << step;
        step <<= 1;
    }
    mask
}

/// Given the valid bits of one WOC way packed into a `u64` (bit *i* = slot
/// *i* valid, only the low `words` bits meaningful), returns the bitmask of
/// aligned offsets at which a `slots`-wide window is entirely invalid —
/// i.e. where a run of `slots` words can be placed without evicting.
///
/// `slots` must be a non-zero power of two and at most `words`. The fold
/// `m &= m >> s` halves the remaining window width per step, so bit *o* of
/// the result ends up set iff slots `o..o+slots` are all free; windows that
/// would cross the end of the way are cleared by the initial `low_mask`.
pub const fn free_aligned_windows(valid: u64, words: u32, slots: u32) -> u64 {
    debug_assert!(slots <= 64, "a window cannot exceed the u64 way");
    let mut free = !valid & low_mask(words);
    let mut step = 1;
    while step < slots {
        free &= free >> step;
        step <<= 1;
    }
    free & aligned_stride(slots) & low_mask(words)
}

/// Given the valid and head bits of one WOC way packed into `u64`s, returns
/// the bitmask of aligned offsets eligible for placement under the paper's
/// replacement rule: the window's first slot is invalid or holds a run head
/// (Section 5.3). `slots` must be a non-zero power of two.
pub const fn eligible_aligned_slots(valid: u64, head: u64, words: u32, slots: u32) -> u64 {
    (!valid | head) & aligned_stride(slots) & low_mask(words)
}

/// The position of the `rank`-th set bit of `mask` (rank 0 = lowest).
/// Returns 64 when `mask` has no such bit — callers guarantee
/// `rank < mask.count_ones()`, making the 64 unreachable in practice.
///
/// Used to turn "pick candidate *i*" (an RNG draw over a candidate count)
/// into a way offset without materializing the candidate list.
pub const fn select_nth_one(mask: u64, rank: u32) -> u32 {
    let mut m = mask;
    let mut n = rank;
    while n > 0 && m != 0 {
        m &= m - 1;
        n -= 1;
    }
    m.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-overhaul per-word reference: set each bit in a loop.
    fn span_mask16_ref(first: u8, last: u8) -> u16 {
        let mut mask = 0u16;
        let mut w = first;
        while w <= last && w < 16 {
            mask |= 1 << w;
            w += 1;
        }
        mask
    }

    #[test]
    fn span_mask_matches_reference_for_all_pairs() {
        // Exhaustive over the full (first, last) square, including the
        // empty first > last half and out-of-range indices.
        for first in 0u8..=17 {
            for last in 0u8..=17 {
                assert_eq!(
                    span_mask16(first, last),
                    span_mask16_ref(first, last),
                    "first={first} last={last}"
                );
            }
        }
    }

    #[test]
    fn span_mask_popcount_is_span_length() {
        for first in 0u8..16 {
            for last in first..16 {
                let mask = span_mask16(first, last);
                assert_eq!(mask.count_ones() as u8, last - first + 1);
            }
        }
    }

    #[test]
    fn mutated_span_mask_differs_on_multiword_spans() {
        assert_eq!(span_mask16_with_mutation(2, 5, false), span_mask16(2, 5));
        assert_ne!(span_mask16_with_mutation(2, 5, true), span_mask16(2, 5));
        // Single-word spans cannot shrink further; the mutation is a no-op.
        assert_eq!(span_mask16_with_mutation(3, 3, true), span_mask16(3, 3));
    }

    #[test]
    fn low_mask_counts_ones() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(16), 0xffff);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(low_mask(200), u64::MAX);
    }

    #[test]
    fn aligned_stride_patterns() {
        assert_eq!(aligned_stride(1), u64::MAX);
        assert_eq!(aligned_stride(2), 0x5555_5555_5555_5555);
        assert_eq!(aligned_stride(4), 0x1111_1111_1111_1111);
        assert_eq!(aligned_stride(8), 0x0101_0101_0101_0101);
        assert_eq!(aligned_stride(64), 1);
    }

    /// Naive reference: scan every aligned offset and test each slot.
    fn free_windows_ref(valid: u64, words: u32, slots: u32) -> u64 {
        let mut out = 0u64;
        let mut offset = 0;
        while offset + slots <= words {
            let mut all_free = true;
            for slot in offset..offset + slots {
                if valid & (1 << slot) != 0 {
                    all_free = false;
                }
            }
            if all_free {
                out |= 1 << offset;
            }
            offset += slots;
        }
        out
    }

    #[test]
    fn free_windows_match_naive_scan_for_all_byte_patterns() {
        // Exhaustive over all 2^8 valid-bit patterns of an 8-word way, for
        // every power-of-two run size.
        for valid in 0u64..256 {
            for slots in [1u32, 2, 4, 8] {
                assert_eq!(
                    free_aligned_windows(valid, 8, slots),
                    free_windows_ref(valid, 8, slots),
                    "valid={valid:#010b} slots={slots}"
                );
            }
        }
    }

    #[test]
    fn free_windows_respect_way_width() {
        // A 4-word way never reports offsets past bit 3, even with high
        // garbage in the valid mask.
        assert_eq!(free_aligned_windows(0xffff_ff00, 4, 2), 0b0101);
        assert_eq!(free_aligned_windows(0, 4, 8), 0, "run wider than the way");
    }

    #[test]
    fn select_nth_one_walks_bits_in_order() {
        let mask = 0b1011_0100u64;
        let positions: Vec<u32> = (0..mask.count_ones())
            .map(|r| select_nth_one(mask, r))
            .collect();
        assert_eq!(positions, vec![2, 4, 5, 7]);
        assert_eq!(select_nth_one(mask, 4), 64, "past the last set bit");
        assert_eq!(select_nth_one(0, 0), 64);
        assert_eq!(select_nth_one(u64::MAX, 63), 63);
    }

    #[test]
    fn eligible_slots_are_invalid_or_head() {
        for valid in 0u64..256 {
            for head in 0u64..256 {
                for slots in [1u32, 2, 4, 8] {
                    let got = eligible_aligned_slots(valid, head, 8, slots);
                    let mut expect = 0u64;
                    let mut offset = 0;
                    while offset < 8 {
                        let first_invalid = valid & (1 << offset) == 0;
                        let first_head = head & (1 << offset) != 0;
                        if first_invalid || first_head {
                            expect |= 1 << offset;
                        }
                        offset += slots;
                    }
                    assert_eq!(got, expect, "valid={valid:#b} head={head:#b} slots={slots}");
                }
            }
        }
    }
}
