//! The per-line used-word bit vector ("footprint", Section 3 of the paper).

use crate::WordIndex;
use std::fmt;

/// A bit vector recording which words of a cache line have been accessed.
///
/// The paper associates one footprint with every line in the L1D and in the
/// LOC; bits are set as the processor touches words and OR-merged when a
/// line's footprint is written back from L1D to the LOC (Section 4.1).
///
/// The representation holds up to 16 words, covering every geometry that
/// [`LineGeometry`](crate::LineGeometry) accepts.
///
/// # Example
///
/// ```
/// use ldis_mem::{Footprint, WordIndex};
///
/// let mut fp = Footprint::empty();
/// fp.touch(WordIndex::new(0));
/// fp.touch(WordIndex::new(7));
/// assert_eq!(fp.used_words(), 2);
/// assert!(fp.is_used(WordIndex::new(7)));
/// assert!(!fp.is_used(WordIndex::new(3)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Footprint(u16);

impl Footprint {
    /// A footprint with no words used (the reset state when a line is
    /// installed, Section 3).
    pub const fn empty() -> Self {
        Footprint(0)
    }

    /// A footprint with the first `words_per_line` words all used.
    pub const fn full(words_per_line: u8) -> Self {
        debug_assert!(words_per_line <= 16);
        if words_per_line >= 16 {
            Footprint(u16::MAX)
        } else {
            Footprint((1u16 << words_per_line) - 1)
        }
    }

    /// Builds a footprint from raw bits (bit *i* = word *i* used).
    pub const fn from_bits(bits: u16) -> Self {
        Footprint(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Marks word `word` as used. Returns `true` if the bit was newly set —
    /// i.e. whether this access is a *footprint-change* in the sense of
    /// Section 3 (used for the Figure 2 recency analysis).
    pub fn touch(&mut self, word: WordIndex) -> bool {
        let mask = 1u16 << word.get();
        let changed = self.0 & mask == 0;
        self.0 |= mask;
        changed
    }

    /// Marks the inclusive range `first..=last` as used. Returns `true` if
    /// any bit was newly set. A single shift-mask expression; the per-word
    /// loop it replaced survives as the reference implementation in
    /// `tests/hotpath_equivalence.rs`.
    pub fn touch_span(&mut self, first: WordIndex, last: WordIndex) -> bool {
        let mask = crate::bitops::span_mask16(first.get(), last.get());
        let changed = mask & !self.0 != 0;
        self.0 |= mask;
        changed
    }

    /// The footprint covering exactly the inclusive range `first..=last`.
    pub const fn span(first: WordIndex, last: WordIndex) -> Footprint {
        Footprint(crate::bitops::span_mask16(first.get(), last.get()))
    }

    /// Whether word `word` has been used.
    pub const fn is_used(self, word: WordIndex) -> bool {
        self.0 & (1u16 << word.get()) != 0
    }

    /// Number of words used.
    pub const fn used_words(self) -> u8 {
        // ldis: allow(T1, "the popcount of a u16 is at most 16; tuple-field receivers sit outside the interval domain")
        self.0.count_ones() as u8
    }

    /// Whether no word has been used.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// OR-merges another footprint into this one (the L1D → LOC merge of
    /// Section 4.1).
    pub fn merge(&mut self, other: Footprint) {
        self.0 |= other.0;
    }

    /// Returns the merged footprint without mutating either operand.
    #[must_use]
    pub const fn merged(self, other: Footprint) -> Footprint {
        Footprint(self.0 | other.0)
    }

    /// Whether every word used by `other` is also used by `self`.
    pub const fn covers(self, other: Footprint) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over the indices of used words, in increasing order.
    pub fn iter_used(self) -> impl Iterator<Item = WordIndex> {
        (0u8..16).filter_map(move |i| {
            // ldis: allow(B1, "i is the closure's 0u8..16 range parameter, so the shift stays below 16; closure bindings sit outside the interval domain")
            if self.0 & (1u16 << i) != 0 {
                Some(WordIndex::new(i))
            } else {
                None
            }
        })
    }

    /// The number of word slots the used words need in the WOC: the used
    /// word count rounded up to a power of two (the WOC only stores 1, 2, 4
    /// or 8 words per line, Section 5.1). Returns 0 for an empty footprint.
    pub const fn woc_slots(self) -> u8 {
        let used = self.used_words();
        if used == 0 {
            0
        } else {
            used.next_power_of_two()
        }
    }
}

impl fmt::Debug for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Footprint({:#018b})", self.0)
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016b}", self.0)
    }
}

impl fmt::Binary for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_reports_footprint_change() {
        let mut fp = Footprint::empty();
        assert!(fp.touch(WordIndex::new(3)));
        assert!(!fp.touch(WordIndex::new(3)), "second touch is not a change");
        assert!(fp.touch(WordIndex::new(0)));
        assert_eq!(fp.used_words(), 2);
    }

    #[test]
    fn touch_span_covers_inclusive_range() {
        let mut fp = Footprint::empty();
        assert!(fp.touch_span(WordIndex::new(2), WordIndex::new(4)));
        assert_eq!(fp.used_words(), 3);
        assert!(!fp.touch_span(WordIndex::new(2), WordIndex::new(4)));
        assert!(fp.is_used(WordIndex::new(2)));
        assert!(fp.is_used(WordIndex::new(4)));
        assert!(!fp.is_used(WordIndex::new(5)));
    }

    #[test]
    fn touch_span_matches_per_word_loop_for_all_pairs() {
        // Exhaustive over the 8-word geometry (64 B lines / 8 B words): for
        // every (first, last) pair and a spread of pre-existing footprints,
        // the shift-mask touch_span must leave the same bits and report the
        // same change flag as the historical per-word loop.
        for first in 0u8..8 {
            for last in first..8 {
                for pre in [0u16, 0b1010_1010, 0b0101_0101, 0xff, 1 << first, 1 << last] {
                    let mut fast = Footprint::from_bits(pre);
                    let got = fast.touch_span(WordIndex::new(first), WordIndex::new(last));

                    let mut slow = Footprint::from_bits(pre);
                    let mut expect = false;
                    for w in first..=last {
                        expect |= slow.touch(WordIndex::new(w));
                    }
                    assert_eq!(fast, slow, "first={first} last={last} pre={pre:#b}");
                    assert_eq!(got, expect, "first={first} last={last} pre={pre:#b}");
                }
            }
        }
    }

    #[test]
    fn span_builds_inclusive_range() {
        let fp = Footprint::span(WordIndex::new(2), WordIndex::new(5));
        assert_eq!(fp.bits(), 0b0011_1100);
        assert_eq!(fp.used_words(), 4);
    }

    #[test]
    fn full_footprint() {
        let fp = Footprint::full(8);
        assert_eq!(fp.used_words(), 8);
        assert_eq!(fp.bits(), 0xff);
        assert_eq!(Footprint::full(16).bits(), u16::MAX);
    }

    #[test]
    fn merge_is_bitwise_or() {
        let mut a = Footprint::from_bits(0b0101);
        let b = Footprint::from_bits(0b0011);
        a.merge(b);
        assert_eq!(a.bits(), 0b0111);
        assert_eq!(Footprint::from_bits(0b0101).merged(b).bits(), 0b0111);
    }

    #[test]
    fn covers_checks_subset() {
        let big = Footprint::from_bits(0b1110);
        let small = Footprint::from_bits(0b0110);
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(big.covers(Footprint::empty()));
    }

    #[test]
    fn iter_used_yields_sorted_indices() {
        let fp = Footprint::from_bits(0b1000_0101);
        let words: Vec<u8> = fp.iter_used().map(WordIndex::get).collect();
        assert_eq!(words, vec![0, 2, 7]);
    }

    #[test]
    fn woc_slots_rounds_to_power_of_two() {
        assert_eq!(Footprint::empty().woc_slots(), 0);
        assert_eq!(Footprint::from_bits(0b1).woc_slots(), 1);
        assert_eq!(Footprint::from_bits(0b11).woc_slots(), 2);
        assert_eq!(Footprint::from_bits(0b111).woc_slots(), 4);
        assert_eq!(Footprint::from_bits(0b1111).woc_slots(), 4);
        assert_eq!(Footprint::from_bits(0b11111).woc_slots(), 8);
        assert_eq!(Footprint::full(8).woc_slots(), 8);
    }

    #[test]
    fn display_formats() {
        let fp = Footprint::from_bits(0b101);
        assert_eq!(format!("{fp}"), "0000000000000101");
        assert_eq!(format!("{fp:b}"), "101");
    }
}
