//! Trace abstractions: anything that produces a stream of memory accesses.

use crate::Access;

/// A source of memory accesses, consumed by the simulators.
///
/// Workload generators in `ldis-workloads` implement this; a recorded
/// [`Trace`] also implements it so experiments can replay identical access
/// streams against multiple cache configurations.
pub trait TraceSource {
    /// Produces the next access, or `None` when the trace is exhausted.
    fn next_access(&mut self) -> Option<Access>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "trace"
    }
}

/// An in-memory recorded trace.
///
/// Replaying a recorded trace guarantees that every cache configuration in
/// a comparison sees exactly the same access stream, as in the paper's
/// trace-driven methodology (Section 6.1).
///
/// # Example
///
/// ```
/// use ldis_mem::{Access, Addr, Trace, TraceSource};
///
/// let trace = Trace::from_accesses("demo", vec![Access::load(Addr::new(0), 8)]);
/// let mut replay = trace.replay();
/// assert!(replay.next_access().is_some());
/// assert!(replay.next_access().is_none());
/// assert_eq!(trace.instructions(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    name: String,
    accesses: Vec<Access>,
}

impl Trace {
    /// Creates an empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            accesses: Vec::new(),
        }
    }

    /// Creates a trace from pre-built accesses.
    pub fn from_accesses(name: impl Into<String>, accesses: Vec<Access>) -> Self {
        Trace {
            name: name.into(),
            accesses,
        }
    }

    /// Records every access produced by `source`, up to `limit` accesses.
    pub fn record(source: &mut dyn TraceSource, limit: usize) -> Self {
        let mut accesses = Vec::with_capacity(limit.min(1 << 20));
        while accesses.len() < limit {
            match source.next_access() {
                Some(a) => accesses.push(a),
                None => break,
            }
        }
        Trace {
            name: source.name().to_owned(),
            accesses,
        }
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of accesses recorded.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total instructions represented by the trace (sum of per-access
    /// instruction gaps); the denominator of MPKI.
    pub fn instructions(&self) -> u64 {
        self.accesses.iter().map(|a| a.insts as u64).sum()
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// An iterator-style replay cursor over this trace.
    pub fn replay(&self) -> Replay<'_> {
        Replay {
            trace: self,
            pos: 0,
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Trace {
            name: "trace".to_owned(),
            accesses: iter.into_iter().collect(),
        }
    }
}

/// A replay cursor over a recorded [`Trace`]; created by [`Trace::replay`].
#[derive(Clone, Debug)]
pub struct Replay<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl TraceSource for Replay<'_> {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.trace.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

impl Iterator for Replay<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    struct Counting(u64);

    impl TraceSource for Counting {
        fn next_access(&mut self) -> Option<Access> {
            if self.0 == 0 {
                None
            } else {
                self.0 -= 1;
                Some(Access::load(Addr::new(self.0 * 8), 8).with_insts(2))
            }
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn record_respects_limit_and_exhaustion() {
        let t = Trace::record(&mut Counting(10), 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.name(), "counting");
        let t2 = Trace::record(&mut Counting(3), 100);
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn instructions_sum_gaps() {
        let t = Trace::record(&mut Counting(5), 100);
        assert_eq!(t.instructions(), 10);
    }

    #[test]
    fn replay_yields_identical_stream_twice() {
        let t = Trace::record(&mut Counting(6), 100);
        let first: Vec<Access> = t.replay().collect();
        let second: Vec<Access> = t.replay().collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 6);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = vec![Access::load(Addr::new(0), 8)].into_iter().collect();
        t.extend(vec![Access::store(Addr::new(8), 8)]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        t.push(Access::load(Addr::new(16), 8));
        assert_eq!(t.accesses().len(), 3);
    }

    #[test]
    fn default_trace_is_empty() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.instructions(), 0);
    }
}
