//! Memory substrate for the Line Distillation simulator.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`Addr`], [`LineAddr`] and [`LineGeometry`] — byte addresses, line
//!   addresses and the line/word geometry arithmetic that connects them;
//! * [`Access`] and [`AccessKind`] — one memory reference of a trace;
//! * [`Footprint`] — the per-line used-word bit vector at the heart of the
//!   paper (one bit per word of a cache line);
//! * [`SimRng`] — a small, fully deterministic PRNG so that every experiment
//!   is reproducible bit-for-bit from its seed;
//! * [`stats`] — histograms and summary helpers used by the experiment
//!   harness.
//!
//! # Example
//!
//! ```
//! use ldis_mem::{Addr, LineGeometry};
//!
//! let geom = LineGeometry::default(); // 64 B lines, 8 B words
//! let addr = Addr::new(0x1234);
//! assert_eq!(geom.words_per_line(), 8);
//! assert_eq!(geom.word_index(addr).get(), 6); // byte 0x34 = word 6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
pub mod bitops;
mod footprint;
mod geometry;
pub mod rng;
pub mod stats;
mod trace;
mod trace_io;

pub use access::{Access, AccessKind};
pub use addr::{Addr, LineAddr, WordIndex};
pub use footprint::Footprint;
pub use geometry::LineGeometry;
pub use rng::{fnv1a, stable_id, SimRng};
pub use trace::{Trace, TraceSource};
