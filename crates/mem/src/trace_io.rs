//! On-disk trace serialization.
//!
//! Recorded traces can be saved and replayed later (or shared between
//! machines) so that an experiment's exact access stream outlives the
//! process. The format is a small, versioned, fixed-width binary layout —
//! endianness-explicit and independent of any serialization crate.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  b"LDT1"                      4 bytes
//! name_len u32, name bytes            UTF-8
//! count  u64                          number of accesses
//! per access: addr u64, pc u64, insts u32, size u8, kind u8
//! ```

use crate::{Access, AccessKind, Addr, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"LDT1";

fn kind_code(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::InstrFetch => 2,
    }
}

fn kind_from(code: u8) -> io::Result<AccessKind> {
    match code {
        0 => Ok(AccessKind::Load),
        1 => Ok(AccessKind::Store),
        2 => Ok(AccessKind::InstrFetch),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid access kind code {other}"),
        )),
    }
}

impl Trace {
    /// Serializes the trace to a writer.
    ///
    /// Pass `&mut writer` to keep using the writer afterwards.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        let name = self.name().as_bytes();
        // ldis: allow(T1, "trace names are short human-readable identifiers, far below u32::MAX bytes")
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for a in self.accesses() {
            w.write_all(&a.addr.raw().to_le_bytes())?;
            w.write_all(&a.pc.raw().to_le_bytes())?;
            w.write_all(&a.insts.to_le_bytes())?;
            w.write_all(&[a.size, kind_code(a.kind)])?;
        }
        Ok(())
    }

    /// Deserializes a trace from a reader.
    ///
    /// Pass `&mut reader` to keep using the reader afterwards.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic number, malformed name or
    /// unknown access kind, and propagates reader I/O errors.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an LDT1 trace file",
            ));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let name_len = u32::from_le_bytes(u32buf) as usize;
        if name_len > 1 << 20 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unreasonable trace name length",
            ));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf);

        let mut trace = Trace::new(name);
        for _ in 0..count {
            r.read_exact(&mut u64buf)?;
            let addr = u64::from_le_bytes(u64buf);
            r.read_exact(&mut u64buf)?;
            let pc = u64::from_le_bytes(u64buf);
            r.read_exact(&mut u32buf)?;
            let insts = u32::from_le_bytes(u32buf);
            let mut tail = [0u8; 2];
            r.read_exact(&mut tail)?;
            let [size, kind_byte] = tail;
            trace.push(Access {
                addr: Addr::new(addr),
                pc: Addr::new(pc),
                insts,
                size,
                kind: kind_from(kind_byte)?,
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let accesses = vec![
            Access::load(Addr::new(0x1000), 8)
                .with_insts(3)
                .with_pc(Addr::new(0x400000)),
            Access::store(Addr::new(0x2008), 4).with_insts(1),
            Access::ifetch(Addr::new(0x400004)),
        ];
        Trace::from_accesses("sample", accesses)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.accesses(), t.accesses());
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Trace::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_kind_code_is_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] = 9; // invalid kind
        let err = Trace::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
