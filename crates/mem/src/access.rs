//! A single memory reference of a simulated trace.

use crate::Addr;
use std::fmt;

/// The kind of a memory reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// An instruction fetch. The distill cache never distills instruction
    /// lines (Section 4: instruction lines have high spatial locality).
    InstrFetch,
}

impl AccessKind {
    /// Whether this access writes to memory.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Whether this access references data (load or store) rather than
    /// instructions.
    pub const fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::InstrFetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// One memory reference of a trace.
///
/// `insts` carries the number of instructions retired since the previous
/// access (inclusive of the instruction performing this access), so that
/// a trace knows the instruction count needed for MPKI and the timing model
/// knows how much non-memory work separates consecutive references.
///
/// # Example
///
/// ```
/// use ldis_mem::{Access, AccessKind, Addr};
///
/// let a = Access::load(Addr::new(0x1000), 8);
/// assert_eq!(a.kind, AccessKind::Load);
/// assert_eq!(a.insts, 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Byte address referenced.
    pub addr: Addr,
    /// Access size in bytes (1..=8 for the Alpha-like ISA the paper models).
    pub size: u8,
    /// Load, store or instruction fetch.
    pub kind: AccessKind,
    /// Instructions retired since the previous access, including this one.
    pub insts: u32,
    /// The program counter of the instruction making the access; used by
    /// the spatial footprint predictor (`ldis-sfp`).
    pub pc: Addr,
}

impl Access {
    /// A load of `size` bytes at `addr` costing one instruction.
    pub fn load(addr: Addr, size: u8) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Load,
            insts: 1,
            pc: Addr::new(0),
        }
    }

    /// A store of `size` bytes at `addr` costing one instruction.
    pub fn store(addr: Addr, size: u8) -> Self {
        Access {
            addr,
            size,
            kind: AccessKind::Store,
            insts: 1,
            pc: Addr::new(0),
        }
    }

    /// An instruction fetch at `addr`.
    pub fn ifetch(addr: Addr) -> Self {
        Access {
            addr,
            size: 4,
            kind: AccessKind::InstrFetch,
            insts: 1,
            pc: addr,
        }
    }

    /// Returns a copy with the instruction gap set to `insts`.
    #[must_use]
    pub fn with_insts(mut self, insts: u32) -> Self {
        self.insts = insts;
        self
    }

    /// Returns a copy with the program counter set to `pc`.
    #[must_use]
    pub fn with_pc(mut self, pc: Addr) -> Self {
        self.pc = pc;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_defaults() {
        let l = Access::load(Addr::new(8), 8);
        assert!(!l.kind.is_write());
        assert!(l.kind.is_data());
        let s = Access::store(Addr::new(8), 4);
        assert!(s.kind.is_write());
        let f = Access::ifetch(Addr::new(0x400000));
        assert_eq!(f.kind, AccessKind::InstrFetch);
        assert!(!f.kind.is_data());
        assert_eq!(f.pc, f.addr);
    }

    #[test]
    fn builder_style_modifiers() {
        let a = Access::load(Addr::new(8), 8)
            .with_insts(5)
            .with_pc(Addr::new(0x42));
        assert_eq!(a.insts, 5);
        assert_eq!(a.pc, Addr::new(0x42));
    }

    #[test]
    fn kind_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
        assert_eq!(AccessKind::InstrFetch.to_string(), "ifetch");
    }
}
