//! Histograms and summary statistics used by the experiment harness.

use std::fmt;

/// Saturating increment for integer stats counters.
///
/// Every simulator counter bumps through this trait so that the failure
/// mode at the type's ceiling is a visibly pinned value rather than a
/// silent wrap-around (`ldis-lint` rule O1 rejects bare `+=` on counter
/// fields). Saturation is unreachable in practice — traces are billions
/// of accesses, `u64::MAX` is quintillions — so goldens are unaffected.
pub trait Counter: Copy {
    /// Adds 1, saturating at the type's maximum.
    fn bump(&mut self);
    /// Adds `n`, saturating at the type's maximum.
    fn bump_by(&mut self, n: Self);
}

macro_rules! impl_counter {
    ($($t:ty),*) => {$(
        impl Counter for $t {
            fn bump(&mut self) {
                *self = self.saturating_add(1);
            }
            fn bump_by(&mut self, n: Self) {
                *self = self.saturating_add(n);
            }
        }
    )*};
}

impl_counter!(u64, u32, usize);

/// A fixed-bin histogram over small non-negative integers (word counts,
/// recency positions, compression classes, …).
///
/// # Example
///
/// ```
/// use ldis_mem::stats::Histogram;
///
/// let mut h = Histogram::new(8);
/// h.record(0);
/// h.record(0);
/// h.record(7);
/// assert_eq!(h.total(), 3);
/// assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Histogram {
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins, all zero.
    pub fn new(bins: usize) -> Self {
        Histogram {
            bins: vec![0; bins],
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the histogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Adds one observation to bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn record(&mut self, bin: usize) {
        self.record_n(bin, 1);
    }

    /// Adds `count` observations to bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn record_n(&mut self, bin: usize, count: u64) {
        assert!(
            bin < self.bins.len(),
            "histogram bin {bin} out of range ({} bins)",
            self.bins.len()
        );
        if let Some(b) = self.bins.get_mut(bin) {
            *b += count;
        }
    }

    /// The count in bin `bin` (0 for bins beyond the histogram).
    pub fn count(&self, bin: usize) -> u64 {
        self.bins.get(bin).copied().unwrap_or(0)
    }

    /// Overwrites the count in bin `bin`. Used by the fault injector to
    /// model bit flips in hardware counter banks.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn set_count(&mut self, bin: usize, count: u64) {
        assert!(
            bin < self.bins.len(),
            "histogram bin {bin} out of range ({} bins)",
            self.bins.len()
        );
        if let Some(b) = self.bins.get_mut(bin) {
            *b = count;
        }
    }

    /// Total observations across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Fraction of observations in bin `bin` (0 if the histogram is empty).
    pub fn fraction(&self, bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bin) as f64 / total as f64
        }
    }

    /// Mean of the distribution, weighting bin `i` by value `i` (0 if empty).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum();
        weighted / total as f64
    }

    /// The smallest bin index `m` such that the cumulative count through
    /// `m` reaches at least half the total — the paper's median computation
    /// for median-threshold filtering (Section 5.4). Returns `None` if the
    /// histogram is empty.
    pub fn median_bin(&self) -> Option<usize> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let half = total.div_ceil(2);
        let mut cumulative = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            cumulative += c;
            if cumulative >= half {
                return Some(i);
            }
        }
        None
    }

    /// Iterates over `(bin, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins.iter().copied().enumerate()
    }

    /// Resets all bins to zero.
    pub fn clear(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
    }

    /// Merges another histogram of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram shape mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &c) in self.bins.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Percentage reduction of `new` relative to `base`: positive when `new`
/// is smaller. Returns 0 when `base` is 0.
///
/// # Example
///
/// ```
/// use ldis_mem::stats::percent_reduction;
/// assert_eq!(percent_reduction(10.0, 7.0), 30.0);
/// assert_eq!(percent_reduction(10.0, 12.0), -20.0);
/// ```
pub fn percent_reduction(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

/// Percentage improvement of `new` over `base`: positive when `new` is
/// larger (used for IPC). Returns 0 when `base` is 0.
pub fn percent_improvement(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of the multiplicative factors `1 + v/100` expressed back
/// as a percentage — the paper's "gmean" of per-benchmark IPC improvements
/// (Figure 9). Returns 0 for empty input.
///
/// # Example
///
/// ```
/// use ldis_mem::stats::gmean_percent;
/// let g = gmean_percent(&[10.0, 10.0]);
/// assert!((g - 10.0).abs() < 1e-9);
/// ```
pub fn gmean_percent(improvements: &[f64]) -> f64 {
    if improvements.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = improvements
        .iter()
        .map(|&p| (1.0 + p / 100.0).max(1e-9).ln())
        .sum();
    ((log_sum / improvements.len() as f64).exp() - 1.0) * 100.0
}

/// Misses per kilo-instruction.
///
/// # Example
///
/// ```
/// use ldis_mem::stats::mpki;
/// assert_eq!(mpki(500, 1_000_000), 0.5);
/// ```
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(4);
        assert!(h.median_bin().is_none());
        h.record(1);
        h.record(1);
        h.record(3);
        h.record_n(0, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert!((h.fraction(3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(4);
        h.record_n(0, 1);
        h.record_n(2, 1);
        assert!((h.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_bin_matches_paper_definition() {
        // Counts: one word used 5 times, eight words used 5 times. Half of
        // 10 evictions = 5, reached at the first bin.
        let mut h = Histogram::new(9);
        h.record_n(1, 5);
        h.record_n(8, 5);
        assert_eq!(h.median_bin(), Some(1));

        let mut h2 = Histogram::new(9);
        h2.record_n(1, 4);
        h2.record_n(8, 6);
        assert_eq!(h2.median_bin(), Some(8));
    }

    #[test]
    fn median_bin_odd_total_rounds_up() {
        let mut h = Histogram::new(3);
        h.record_n(0, 1);
        h.record_n(2, 2);
        // half = ceil(3/2) = 2, cumulative reaches 2 only at bin 2? bin0=1 <2, bin2 cum=3 >= 2.
        assert_eq!(h.median_bin(), Some(2));
    }

    #[test]
    fn histogram_merge_and_clear() {
        let mut a = Histogram::new(2);
        a.record(0);
        let mut b = Histogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 2);
        a.clear();
        assert_eq!(a.total(), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(2);
        a.merge(&Histogram::new(3));
    }

    #[test]
    fn reductions_and_improvements() {
        assert_eq!(percent_reduction(0.0, 5.0), 0.0);
        assert_eq!(percent_improvement(2.0, 3.0), 50.0);
        assert_eq!(percent_improvement(0.0, 3.0), 0.0);
    }

    #[test]
    fn mean_and_gmean() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(gmean_percent(&[]), 0.0);
        let g = gmean_percent(&[0.0, 0.0]);
        assert!(g.abs() < 1e-9);
        // gmean of +100% and -50% is 0%.
        let g2 = gmean_percent(&[100.0, -50.0]);
        assert!(g2.abs() < 1e-9, "got {g2}");
    }

    #[test]
    fn mpki_math() {
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 0), 0.0);
        assert!((mpki(38_300, 1_000_000) - 38.3).abs() < 1e-9);
    }

    #[test]
    fn histogram_display() {
        let mut h = Histogram::new(3);
        h.record(1);
        assert_eq!(h.to_string(), "[0, 1, 0]");
    }
}
