//! Address newtypes: byte addresses, line addresses and word indices.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// The paper assumes a 40-bit physical address space (Section 7.5.1); the
/// simulator does not enforce that limit but the storage-overhead model in
/// `ldis-distill` uses it when sizing tags.
///
/// # Example
///
/// ```
/// use ldis_mem::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!(a + 8, Addr::new(0x1008));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this address offset by `bytes` (wrapping on overflow, which
    /// never occurs for realistic traces).
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl std::ops::Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// Two byte addresses that fall in the same cache line map to the same
/// `LineAddr`. Produced by [`LineGeometry::line_addr`].
///
/// [`LineGeometry::line_addr`]: crate::LineGeometry::line_addr
///
/// # Example
///
/// ```
/// use ldis_mem::{Addr, LineGeometry};
/// let geom = LineGeometry::default();
/// assert_eq!(geom.line_addr(Addr::new(0x1000)), geom.line_addr(Addr::new(0x103f)));
/// assert_ne!(geom.line_addr(Addr::new(0x1000)), geom.line_addr(Addr::new(0x1040)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number (byte address / line size).
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next sequential line.
    pub const fn successor(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The position of a word within a cache line (0-based).
///
/// For the paper's 64 B lines and 8 B words the index ranges over `0..8`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(transparent)]
pub struct WordIndex(u8);

impl WordIndex {
    /// Creates a word index.
    ///
    /// The caller is responsible for keeping the index below the geometry's
    /// words-per-line; [`LineGeometry`](crate::LineGeometry) constructors
    /// always do.
    pub const fn new(index: u8) -> Self {
        debug_assert!(index < 16, "word index must fit a 16-bit footprint");
        WordIndex(index)
    }

    /// Returns the index as a `u8`.
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<WordIndex> for usize {
    fn from(w: WordIndex) -> usize {
        w.as_usize()
    }
}

impl fmt::Display for WordIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip_and_arithmetic() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.raw(), 0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(Addr::from(7u64), Addr::new(7));
        assert_eq!(a + 0x11, Addr::new(0xdead_bf00));
        assert_eq!(a.offset(0x11), a + 0x11);
    }

    #[test]
    fn addr_formatting() {
        let a = Addr::new(0xff);
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
        assert_eq!(format!("{a:?}"), "Addr(0xff)");
    }

    #[test]
    fn line_addr_successor() {
        let l = LineAddr::new(41);
        assert_eq!(l.successor(), LineAddr::new(42));
        assert_eq!(l.raw(), 41);
    }

    #[test]
    fn word_index_conversions() {
        let w = WordIndex::new(5);
        assert_eq!(w.get(), 5);
        assert_eq!(w.as_usize(), 5);
        assert_eq!(usize::from(w), 5);
        assert_eq!(format!("{w}"), "5");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Addr::new(1) < Addr::new(2));
        assert!(LineAddr::new(1) < LineAddr::new(2));
        assert!(WordIndex::new(1) < WordIndex::new(2));
    }
}
