//! A small deterministic PRNG for reproducible simulation.
//!
//! The simulator needs randomness in exactly two places — workload
//! generation and the WOC's random replacement (Section 5.3) — and both
//! must be reproducible bit-for-bit from a seed so that every experiment
//! and test is deterministic. A local implementation avoids depending on a
//! particular version of an external RNG crate for reproducibility.

/// A stable 64-bit FNV-1a hash of a name, for deriving sweep-cell seeds
/// from configuration labels. The constant offset basis and prime are the
/// published FNV-1a parameters, so the id of a given string never changes
/// across runs, platforms or compiler versions.
///
/// # Example
///
/// ```
/// use ldis_mem::rng::stable_id;
///
/// assert_eq!(stable_id("LDIS-MT-RC"), stable_id("LDIS-MT-RC"));
/// assert_ne!(stable_id("LDIS-MT"), stable_id("LDIS-MT-RC"));
/// ```
pub fn stable_id(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

/// The 64-bit FNV-1a hash of a byte string — the checksum primitive of the
/// sweep checkpoint journal (`ldis-experiments`). Stable across runs,
/// platforms and compiler versions for the same bytes, so a journal written
/// on one host validates on any other.
///
/// # Example
///
/// ```
/// use ldis_mem::rng::{fnv1a, stable_id};
///
/// assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
/// assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
/// assert_eq!(fnv1a("label".as_bytes()), stable_id("label"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic 64-bit PRNG (xoshiro256\*\* seeded via SplitMix64).
///
/// Not cryptographically secure; statistically excellent for simulation.
///
/// # Example
///
/// ```
/// use ldis_mem::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.range(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the internal state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// A uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Lemire's unbiased multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `0..bound`, as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.range(bound as u64) as usize
    }

    /// A uniform floating point number in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        let idx = self.index(items.len());
        &items[idx] // ldis: allow(P1X, "idx < items.len() by Lemire rejection sampling")
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// `weights`. Returns the last index with positive weight if rounding
    /// undershoots.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to 0.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        self.weighted_index_with_total(weights, total)
    }

    /// [`SimRng::weighted_index`] with the weight sum precomputed by the
    /// caller — the hot-path form for generators that sample the same
    /// distribution millions of times. `total` must equal
    /// `weights.iter().sum()` exactly (same f64 value, same summation
    /// order) for the draw to match `weighted_index` bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `total` is not positive.
    pub fn weighted_index_with_total(&mut self, weights: &[f64], total: f64) -> usize {
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with a positive sum"
        );
        let mut target = self.f64() * total;
        let mut last_positive = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                last_positive = i;
                if target < w {
                    return i;
                }
                target -= w;
            }
        }
        last_positive
    }

    /// Forks an independent generator; the child stream is a deterministic
    /// function of the parent's state, and the parent advances.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Derives the seed of one (benchmark, configuration) sweep cell from a
    /// root seed. Each cell of an experiment matrix draws its randomness
    /// from its own derived stream, so cells can execute in any order — on
    /// any number of threads — and still reproduce bit for bit.
    ///
    /// The derivation chains one SplitMix64 finalization per component.
    /// Every round is a bijection of the 64-bit state, so for a fixed root
    /// seed, distinct `benchmark_id`s are guaranteed to produce distinct
    /// intermediate states, and collisions between full (benchmark, config)
    /// cells are no more likely than for a random function.
    ///
    /// # Example
    ///
    /// ```
    /// use ldis_mem::SimRng;
    ///
    /// let a = SimRng::derive_seed(42, 0, 7);
    /// assert_eq!(a, SimRng::derive_seed(42, 0, 7)); // stable across calls
    /// assert_ne!(a, SimRng::derive_seed(42, 1, 7)); // cells are split
    /// ```
    pub fn derive_seed(seed: u64, benchmark_id: u64, config_id: u64) -> u64 {
        SimRng::derive_seed_chain(seed, &[benchmark_id, config_id])
    }

    /// Derives a seed from a root seed and an arbitrary chain of
    /// components — the generalization of [`SimRng::derive_seed`] used by
    /// the crash-safe sweep executor, which splits on (matrix id, cell
    /// index) chains of varying depth. One SplitMix64 finalization is
    /// chained per component; each round is a bijection of the 64-bit
    /// state, so for a fixed prefix, distinct next components always
    /// produce distinct intermediate states.
    ///
    /// Replay contract: the derivation depends only on the values, never
    /// on when or where it runs, so a failed sweep cell replays its exact
    /// workload from `(root seed, chain)` alone.
    ///
    /// # Example
    ///
    /// ```
    /// use ldis_mem::SimRng;
    ///
    /// assert_eq!(
    ///     SimRng::derive_seed(42, 3, 7),
    ///     SimRng::derive_seed_chain(42, &[3, 7])
    /// );
    /// assert_ne!(
    ///     SimRng::derive_seed_chain(42, &[3]),
    ///     SimRng::derive_seed_chain(42, &[3, 0])
    /// );
    /// ```
    pub fn derive_seed_chain(seed: u64, components: &[u64]) -> u64 {
        let mut s = seed;
        for &component in components {
            let h = splitmix64(&mut s);
            s = h ^ component;
        }
        splitmix64(&mut s)
    }

    /// Derives an independent generator for one (benchmark, configuration)
    /// sweep cell; see [`SimRng::derive_seed`].
    pub fn derive(seed: u64, benchmark_id: u64, config_id: u64) -> SimRng {
        SimRng::new(SimRng::derive_seed(seed, benchmark_id, config_id))
    }

    /// A geometric-ish positive integer with mean approximately `mean`
    /// (at least 1). Used for instruction gaps between memory accesses.
    pub fn geometric(&mut self, mean: f64) -> u32 {
        match SimRng::geometric_denom(mean) {
            None => 1,
            Some(denom) => self.geometric_with_denom(denom),
        }
    }

    /// Precomputes the log-denominator for [`SimRng::geometric_with_denom`].
    /// Returns `None` when `mean <= 1.0`, in which case the sample is the
    /// constant 1 and — critically for stream reproducibility — *no random
    /// draw is consumed*, exactly as in [`SimRng::geometric`].
    pub fn geometric_denom(mean: f64) -> Option<f64> {
        if mean <= 1.0 {
            None
        } else {
            let p = 1.0 / mean;
            Some((1.0 - p).ln())
        }
    }

    /// [`SimRng::geometric`] with the log-denominator precomputed via
    /// [`SimRng::geometric_denom`] — the hot-path form for generators that
    /// draw instruction gaps with a fixed mean. The division by `denom` is
    /// kept as a division (not a reciprocal multiply) so results match
    /// `geometric` bit for bit.
    pub fn geometric_with_denom(&mut self, denom: f64) -> u32 {
        let u = self.f64().max(f64::MIN_POSITIVE);
        // ldis: allow(T1, "float-to-int casts saturate rather than truncate, and the next line clamps the result to <= 1_000_000")
        let v = (u.ln() / denom).floor() as u32;
        v.saturating_add(1).min(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let x = rng.range(8) as usize;
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..8 should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn range_zero_panics() {
        SimRng::new(0).range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_respects_probability_roughly() {
        let mut rng = SimRng::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 2.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_with_total_matches_weighted_index() {
        let weights = [0.25, 1.5, 0.0, 3.75];
        let total: f64 = weights.iter().sum();
        let mut a = SimRng::new(21);
        let mut b = SimRng::new(21);
        for _ in 0..5_000 {
            assert_eq!(
                a.weighted_index(&weights),
                b.weighted_index_with_total(&weights, total)
            );
        }
        assert_eq!(a, b, "both paths must consume one draw per sample");
    }

    #[test]
    fn geometric_with_denom_matches_geometric() {
        for mean in [0.5, 1.0, 1.5, 5.0, 10.0, 100.0] {
            let mut a = SimRng::new(29);
            let mut b = SimRng::new(29);
            let denom = SimRng::geometric_denom(mean);
            for _ in 0..2_000 {
                let fast = match denom {
                    None => 1,
                    Some(d) => b.geometric_with_denom(d),
                };
                assert_eq!(a.geometric(mean), fast, "mean {mean}");
            }
            assert_eq!(a, b, "draw counts must match at mean {mean}");
        }
    }

    #[test]
    fn choose_picks_from_slice() {
        let mut rng = SimRng::new(13);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }

    #[test]
    fn geometric_has_requested_mean() {
        let mut rng = SimRng::new(17);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(5.0) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((4.5..5.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn geometric_floor_is_one() {
        let mut rng = SimRng::new(19);
        for _ in 0..100 {
            assert_eq!(rng.geometric(0.5), 1);
            assert!(rng.geometric(1.5) >= 1);
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(23);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn derived_seeds_never_collide_across_10k_cells() {
        // 100 benchmarks × 100 configurations, with config ids both small
        // integers and realistic label hashes.
        let mut seen = std::collections::BTreeSet::new();
        for bench in 0..100u64 {
            for config in 0..100u64 {
                let cell = SimRng::derive_seed(42, bench, config);
                assert!(
                    seen.insert(cell),
                    "collision at bench {bench} config {config}"
                );
            }
        }
        assert_eq!(seen.len(), 10_000);

        let labels = ["TRAD-1MB", "LDIS-Base", "LDIS-MT", "LDIS-MT-RC", "SFP"];
        let mut seen = std::collections::BTreeSet::new();
        for bench in 0..2000u64 {
            for label in labels {
                assert!(
                    seen.insert(SimRng::derive_seed(7, bench, stable_id(label))),
                    "collision at bench {bench} label {label}"
                );
            }
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn derivation_is_stable_across_calls_and_instances() {
        for (seed, bench, config) in [(0u64, 0u64, 0u64), (42, 3, 7), (u64::MAX, 15, 1 << 40)] {
            let first = SimRng::derive_seed(seed, bench, config);
            for _ in 0..100 {
                assert_eq!(first, SimRng::derive_seed(seed, bench, config));
            }
            let mut a = SimRng::derive(seed, bench, config);
            let mut b = SimRng::derive(seed, bench, config);
            for _ in 0..32 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn derivation_separates_every_coordinate() {
        // Moving any one coordinate must move the derived seed, and the
        // benchmark/config axes must not be interchangeable.
        let base = SimRng::derive_seed(42, 1, 2);
        assert_ne!(base, SimRng::derive_seed(43, 1, 2));
        assert_ne!(base, SimRng::derive_seed(42, 2, 2));
        assert_ne!(base, SimRng::derive_seed(42, 1, 3));
        assert_ne!(base, SimRng::derive_seed(42, 2, 1), "axes must not commute");
    }

    #[test]
    fn derive_seed_chain_matches_and_extends_derive_seed() {
        // The two-component chain is exactly the historical derivation, so
        // every committed golden snapshot keeps its seeds.
        for (seed, b, c) in [(0u64, 0u64, 0u64), (42, 3, 7), (u64::MAX, 15, 1 << 40)] {
            assert_eq!(
                SimRng::derive_seed(seed, b, c),
                SimRng::derive_seed_chain(seed, &[b, c])
            );
        }
        // Chains of different depth never collide trivially, and every
        // component position matters.
        let base = SimRng::derive_seed_chain(42, &[1, 2, 3]);
        assert_ne!(base, SimRng::derive_seed_chain(42, &[1, 2]));
        assert_ne!(base, SimRng::derive_seed_chain(42, &[1, 2, 4]));
        assert_ne!(base, SimRng::derive_seed_chain(42, &[2, 1, 3]));
        assert_ne!(base, SimRng::derive_seed_chain(43, &[1, 2, 3]));
        // Deep chains stay collision-free across a realistic cell space.
        let mut seen = std::collections::BTreeSet::new();
        for matrix in 0..10u64 {
            for cell in 0..1000u64 {
                assert!(
                    seen.insert(SimRng::derive_seed_chain(42, &[matrix, cell])),
                    "collision at matrix {matrix} cell {cell}"
                );
            }
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn fnv1a_detects_single_byte_corruption() {
        let record = b"{\"kind\": \"cell\", \"cell\": 3, \"seed\": 99}";
        let sum = fnv1a(record);
        for i in 0..record.len() {
            for flip in 1..8u8 {
                let mut corrupt = record.to_vec();
                if let Some(byte) = corrupt.get_mut(i) {
                    *byte ^= 1 << flip;
                }
                assert_ne!(sum, fnv1a(&corrupt), "flip bit {flip} of byte {i}");
            }
        }
        // Truncation is detected too.
        assert_ne!(sum, fnv1a(&record[..record.len() - 1]));
    }

    #[test]
    fn stable_id_is_the_published_fnv1a() {
        // FNV-1a test vectors: the empty string hashes to the offset
        // basis; "a" to the basis xor 0x61 times the prime.
        assert_eq!(stable_id(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_id("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(stable_id("TRAD-1MB"), stable_id("TRAD-2MB"));
    }
}
