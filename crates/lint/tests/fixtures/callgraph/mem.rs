//! Call-graph snapshot fixture: the callee side (`crates/mem`).

pub fn word_index(addr: u64) -> u64 {
    addr / 8
}

pub fn must_word(addr: Option<u64>) -> u64 {
    word_index(addr.unwrap())
}
