//! Call-graph snapshot fixture: the caller side (`crates/cache`),
//! with a cross-crate edge, a panic site, and a `#[cfg(test)]` caller.

pub fn lookup(addr: u64) -> u64 {
    index_of(addr)
}

fn index_of(addr: u64) -> u64 {
    word_index(addr) % 64
}

fn boom() {
    panic!("fixture panic");
}

#[cfg(test)]
mod tests {
    pub fn drives_lookup() {
        lookup(64);
        boom();
    }
}
