//! R1 fail fixture: flattened indices with no range proof and at least
//! one unchecked use. Exact count pinned by the self-test.

/// Direct unchecked indexing with unbounded coordinates.
pub fn direct_unchecked(data: &[u8], set: usize, ways: usize, way: usize) -> u8 {
    data[set.wrapping_mul(ways).wrapping_add(way)]
}

/// Let-bound, but one use escapes the checked accessors.
pub fn escaped_let(data: &mut [u8], set: usize, ways: usize, way: usize) -> u8 {
    let i = set.wrapping_mul(ways).wrapping_add(way);
    data[i]
}
