//! R1 pass fixture: flattened `set * ways + way` indices discharged by
//! each of the rule's proof routes.

/// Proven in range: both coordinates bounded, so the product-sum stays
/// far below `usize::MAX` and the wrapping ops never wrapped.
pub fn proven(set: usize, way: usize) -> usize {
    if set >= 1024 || way >= 8 {
        return 0;
    }
    set.wrapping_mul(8).wrapping_add(way)
}

/// Inert direct form: the whole chain sits inside a checked accessor,
/// so a wrapped index comes back as `None` instead of corrupting state.
pub fn inert_direct(data: &[u8], set: usize, ways: usize, way: usize) -> u8 {
    data.get(set.wrapping_mul(ways).wrapping_add(way))
        .copied()
        .unwrap_or(0)
}

/// Inert let-bound form: every later use of the binding goes through
/// `.get(..)` / `.get_mut(..)`.
pub fn inert_let(data: &mut [u8], set: usize, ways: usize, way: usize) -> u8 {
    let i = set.wrapping_mul(ways).wrapping_add(way);
    if let Some(v) = data.get_mut(i) {
        *v = 1;
    }
    data.get(i).copied().unwrap_or(0)
}
