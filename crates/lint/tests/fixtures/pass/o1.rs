//! Counter arithmetic done right: O1 must stay silent on every function
//! here. Scanned as `crates/cache/src/fixture.rs`.

pub struct FixtureStats {
    pub hits: u64,
    pub misses: u32,
}

/// Saturating bumps and explicit saturating reads.
pub fn checked_ops(s: &mut FixtureStats, n: u64) -> u64 {
    s.hits.bump_by(n);
    s.misses.bump();
    s.hits.saturating_mul(2)
}

/// The waiver syntax: a justified allow on the line above.
pub fn waived(s: &mut FixtureStats) {
    // ldis: allow(O1, "fixture: bounded by the 16-word line, cannot overflow u64")
    s.hits += 1;
}

impl LineGeometry {
    /// Waived shift with the construction-time bound spelled out.
    pub fn base(&self, line_addr: u64) -> u64 {
        // ldis: allow(O1, "fixture: shift count is trailing_zeros of the validated power-of-two line size")
        line_addr << self.line_shift
    }

    /// Checked shift needs no waiver.
    pub fn checked_word(&self, w: u64) -> Option<u64> {
        w.checked_shl(self.word_shift)
    }
}
