//! Lock discipline done right: L2 must stay silent on every function
//! here. Scanned as `crates/experiments/src/fixture.rs`.

fn panicky_helper(v: Option<u8>) -> u8 {
    v.unwrap()
}

/// Both functions take the locks in the same order: edges but no cycle.
pub fn consistent_order_1(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    let b = slots.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

/// Same order again — consistent with `consistent_order_1`.
pub fn consistent_order_2(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    let b = slots.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

/// Dropping the guard before the panic-capable call narrows the hold.
pub fn drop_before_panicky(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {
    let g = tasks.lock().unwrap_or_else(|e| e.into_inner());
    let held = *g as u8;
    drop(g);
    held + panicky_helper(v)
}

/// A temporary guard drops at the end of its statement, so the later
/// panic-capable call runs lock-free.
pub fn temporary_guard(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {
    *tasks.lock().unwrap_or_else(|e| e.into_inner()) = 7;
    panicky_helper(v)
}

/// The waiver syntax: a justified allow silences a deliberate
/// re-acquire.
pub fn waived_reacquire(tasks: &Mutex<u64>) -> u64 {
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    // ldis: allow(L2, "fixture: documents the waiver syntax; the guard is dropped by NLL before the re-acquire in real code")
    let b = tasks.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}
