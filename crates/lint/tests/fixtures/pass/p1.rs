//! P1 pass fixture: panic-free simulator code. Test modules and
//! explicitly waived lines may still panic.

pub fn checked_head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

pub fn fallback(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0)
}

pub fn guarded(values: &[u64], i: usize) -> u64 {
    let Some(v) = values.get(i) else {
        return 0;
    };
    *v
}

pub fn waived(values: &[u64]) -> u64 {
    // ldis: allow(P1, "fixture: demonstrates the waiver syntax")
    values.first().copied().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1u64];
        assert_eq!(v.first().copied().unwrap(), 1);
        if v.is_empty() {
            panic!("impossible");
        }
    }
}
