//! U1 pass fixture: the same shapes as the fail fixture, but every
//! value crosses units through a geometry conversion (or carries its
//! unit in a newtype). Scanned as `crates/mem/src/fixture.rs`.
//! Expected findings: 0.

fn lookup(word_idx: usize) -> u64 {
    word_idx as u64
}

pub fn convert(geom: &LineGeometry, addr: Addr, store: &[u64]) -> u64 {
    let w = geom.word_index(addr).as_usize();
    let line = geom.line_addr(addr);
    let _back = geom.line_base(line);
    store[w]
}

pub fn call(geom: &LineGeometry, addr: Addr) -> u64 {
    lookup(geom.word_index(addr).as_usize())
}

pub fn waived(addr: u64, line_addr: u64) -> u64 {
    // ldis: allow(U1, "line_addr here is pre-scaled to bytes by the trace reader")
    addr + line_addr
}
