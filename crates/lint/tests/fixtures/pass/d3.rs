//! D3 pass fixture: workers return per-cell values; the reduction
//! happens after the canonical-order merge, on the main thread.
//! Scanned as `crates/experiments/src/fixture.rs`. Expected findings: 0.

pub fn merge(cells: &[u64]) -> f64 {
    let per_cell: Vec<f64> = sweep(cells, |c| *c as f64);
    let mut total = 0.0;
    for v in &per_cell {
        total += v;
    }
    total
}

pub fn named_job(cells: &[u64]) -> Vec<f64> {
    // A named fn cannot capture an accumulator: no closure, no finding.
    sweep(cells, cell_mpki)
}
