//! P2 pass fixture: every public function is transitively panic-free —
//! via a justified inline waiver, a non-panicking fallback, or because
//! the panic lives in `#[cfg(test)]` code. Scanned as
//! `crates/sfp/src/fixture.rs`. Expected findings: 0.

fn deep(v: Option<u8>) -> u8 {
    v.unwrap() // ldis: allow(P1, "caller guarantees Some by the lookup contract")
}

pub fn entry(v: Option<u8>) -> u8 {
    deep(v)
}

pub fn safe(v: Option<u8>) -> u8 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    pub fn test_helper(v: Option<u8>) -> u8 {
        v.unwrap()
    }
}
