//! D2 pass fixture: ordered collections everywhere a report could
//! observe iteration order, and an explicit waiver for a membership-only
//! set.

use std::collections::{BTreeMap, BTreeSet};

pub fn histogram(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut h = BTreeMap::new();
    for v in values {
        *h.entry(*v).or_insert(0) += 1;
    }
    h
}

pub fn distinct(values: &[u64]) -> usize {
    let set: BTreeSet<u64> = values.iter().copied().collect();
    set.len()
}

pub fn membership_only(values: &[u64]) -> bool {
    // ldis: allow(D2, "membership-only set; iteration order is never observed")
    let seen: std::collections::HashSet<u64> = values.iter().copied().collect();
    seen.contains(&42)
}
