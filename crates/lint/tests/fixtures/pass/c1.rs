//! C1 pass fixture: configurations on the paper's rails. 1 MiB, 8-way,
//! 64 B lines of 8 B words give 2048 sets; the reverter sits on the
//! 64/192 hysteresis rails; a deliberate sweep carries a waiver.

fn main() {
    let geometry = LineGeometry::new(64, 8);
    let _ = geometry;
    let baseline = CacheConfig::new(1 << 20, 8, LineGeometry::default());
    let _ = baseline;
    let distilled = DistillConfig::new(1 << 20, 8, 2, LineGeometry::new(64, 8));
    let _ = distilled;
    let reverter = ReverterConfig {
        leader_sets: 32,
        disable_below: 64,
        enable_above: 192,
        psel_max: 255,
    };
    let _ = reverter;
    // ldis: allow(C1, "deliberate threshold sweep away from the rails")
    let sweep = ReverterConfig {
        disable_below: 32,
        enable_above: 224,
        ..ReverterConfig::default()
    };
    let _ = sweep;
}
