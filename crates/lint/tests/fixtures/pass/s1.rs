//! Seed-provenance discipline done right: S1 must stay silent on every
//! function here. Scanned as `crates/core/src/fixture.rs`.

/// A `seed`-named parameter is trusted as already derived by the caller.
pub fn from_param(cell_seed: u64) -> SimRng {
    SimRng::new(cell_seed)
}

/// Rebinding on a branch keeps the taint when the new value is also
/// derived: the must-join proves it on every path.
pub fn re_derived(seed: u64, flip: bool) -> SimRng {
    let mut s = SimRng::derive_seed(seed, 1, 2);
    if flip {
        s = SimRng::derive_seed(seed, 3, 4);
    }
    SimRng::new(s)
}

/// Forking a throwaway worker stream for the parallel region leaves the
/// parent's sequence untouched and reusable.
pub fn forked_worker(seed: u64, cells: &[u64]) -> u64 {
    let mut rng = SimRng::new(seed);
    let mut worker = rng.fork();
    let out = sweep(cells, |c| c + worker.next_u64());
    rng.next_u64() + out[0]
}

/// Distinct `stable_id` salts produce distinct streams — no collision.
pub fn distinct_salts(seed: u64) -> (u64, u64) {
    let a = SimRng::derive_seed_chain(seed, &[1, stable_id("loc")]);
    let b = SimRng::derive_seed_chain(seed, &[1, stable_id("woc")]);
    (a, b)
}

/// The waiver syntax: a justified allow silences a deliberate fixed
/// stream.
pub fn waived() -> SimRng {
    // ldis: allow(S1, "fixture: fixed bring-up stream, goldens frozen")
    SimRng::new(0x7131)
}
