//! D1 pass fixture: all randomness flows through `SimRng`, and time is
//! simulated cycles, not the wall clock.

pub struct SimRng(u64);

impl SimRng {
    pub fn derive(&self, salt: u64) -> SimRng {
        SimRng(self.0 ^ salt)
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}

pub fn advance(cycle: u64, latency: u64) -> u64 {
    cycle + latency
}

pub fn shuffle_seed(root: &SimRng) -> SimRng {
    root.derive(0x5eed)
}
