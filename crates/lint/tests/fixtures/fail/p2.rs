//! P2 fail fixture: public sim-core functions that can transitively
//! reach a panic site. Scanned as `crates/sfp/src/fixture.rs`.
//!
//! Expected findings: 2 (one per public entry point).

fn deep(v: Option<u8>) -> u8 {
    v.unwrap()
}

fn mid(v: Option<u8>) -> u8 {
    deep(v)
}

/// Reaches the panic through two hops: entry -> mid -> deep.
pub fn entry(v: Option<u8>) -> u8 {
    mid(v)
}

/// Panics directly, no intermediate frame.
pub fn direct(v: Option<u8>) -> u8 {
    v.expect("present")
}
