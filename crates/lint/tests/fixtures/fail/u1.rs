//! U1 fail fixture: one specimen per cross-unit defect class. Scanned
//! as `crates/mem/src/fixture.rs`.
//!
//! Expected findings: 4 — cross-unit arithmetic, raw indexing by a
//! byte-address, wrong-unit newtype construction, and a call argument
//! whose unit contradicts the callee's parameter.

fn lookup(word_idx: usize) -> u64 {
    word_idx as u64
}

pub fn cross(addr: u64, line_addr: u64) -> u64 {
    let x = addr + line_addr;
    x
}

pub fn index(addr: u64, words: &[u64]) -> u64 {
    words[addr as usize]
}

pub fn construct(addr: Addr) -> LineAddr {
    let byte = addr.raw();
    LineAddr::new(byte)
}

pub fn call(addr: u64) -> u64 {
    lookup(addr as usize)
}
