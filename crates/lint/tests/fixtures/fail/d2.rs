//! D2 fail fixture: hashed collections whose iteration order leaks into
//! output.

use std::collections::HashMap;

pub fn report(rows: &[(String, u64)]) -> String {
    let mut by_name = HashMap::new();
    for (name, value) in rows {
        by_name.insert(name.clone(), *value);
    }
    let mut out = String::new();
    for (name, value) in &by_name {
        out.push_str(&format!("{name}={value}\n"));
    }
    out
}

pub fn seen_lines(addrs: &[u64]) -> usize {
    let set: std::collections::HashSet<u64> = addrs.iter().copied().collect();
    set.len()
}
