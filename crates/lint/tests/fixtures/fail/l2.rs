//! Deliberate L2 violations: lock discipline broken four distinct ways.
//! Scanned as `crates/experiments/src/fixture.rs`; the self-test pins
//! the exact count.

fn panicky_helper(v: Option<u8>) -> u8 {
    v.unwrap()
}

/// Re-acquiring the same mutex while its guard is live self-deadlocks.
pub fn double_acquire(tasks: &Mutex<u64>) -> u64 {
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    let b = tasks.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

/// One half of a lock-order cycle: `tasks` before `slots`.
pub fn order_tasks_then_slots(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    let b = slots.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

/// The other half: `slots` before `tasks`. Two workers running these
/// concurrently deadlock.
pub fn order_slots_then_tasks(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {
    let b = slots.lock().unwrap_or_else(|e| e.into_inner());
    let a = tasks.lock().unwrap_or_else(|e| e.into_inner());
    *a + *b
}

/// A panic-capable callee runs while the guard is held: a panic poisons
/// the mutex for every other worker.
pub fn panic_capable_under_lock(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {
    let g = tasks.lock().unwrap_or_else(|e| e.into_inner());
    *g as u8 + panicky_helper(v)
}

/// A direct panic macro under the guard.
pub fn direct_panic_under_lock(tasks: &Mutex<u64>) -> u64 {
    let g = tasks.lock().unwrap_or_else(|e| e.into_inner());
    if *g > 10 {
        panic!("budget exceeded");
    }
    *g
}
