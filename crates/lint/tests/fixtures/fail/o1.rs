//! Deliberate O1 violations: unchecked arithmetic on stats counters and
//! in `LineGeometry` address math. Scanned as
//! `crates/cache/src/fixture.rs`; the self-test pins the exact count.

pub struct FixtureStats {
    pub hits: u64,
    pub misses: u32,
    pub label: String,
}

/// Three unchecked counter ops: `+=` on a u64, `+=` on a u32, and a
/// bare `*` in a read-side expression.
pub fn unchecked_ops(s: &mut FixtureStats, n: u64) -> u64 {
    s.hits += n;
    s.misses += 1;
    s.hits * 2
}

impl LineGeometry {
    /// One unchecked shift.
    pub fn base(&self, line_addr: u64) -> u64 {
        line_addr << self.line_shift
    }

    /// Two unchecked shifts and the `+` combining them.
    pub fn word(&self, line_addr: u64, w: u64) -> u64 {
        (line_addr << self.line_shift) + (w << self.word_shift)
    }
}
