//! D3 fail fixture: float accumulation that merges parallel-sweep cell
//! results in completion order. Scanned as
//! `crates/experiments/src/fixture.rs`.
//!
//! Expected findings: 3 — a shared `Mutex<f64>` accumulator, a float
//! `+=` inside a worker closure, and a float `.sum()` reduction inside
//! a worker closure.

pub fn merge(cells: &[u64]) -> f64 {
    let total = Mutex::new(0.0f64);
    sweep(cells, |c| {
        let mpki = *c as f64;
        *total.lock().unwrap() += mpki;
    });
    let t = *total.lock().unwrap();
    t
}

pub fn reduce(cells: &[u64]) -> f64 {
    sweep(cells, |c| (0..*c).map(|x| x as f64).sum::<f64>())
}
