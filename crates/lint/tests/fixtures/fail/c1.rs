//! C1 fail fixture: impossible geometries and off-rail thresholds.

fn main() {
    // 48 is not a power of two.
    let geometry = LineGeometry::new(48, 8);
    let _ = geometry;
    // 1 MiB / (64 B × 6 ways) is not a power-of-two set count.
    let cache = CacheConfig::new(1 << 20, 6, LineGeometry::default());
    let _ = cache;
    // Inverted hysteresis and thresholds off the 64/192 rails.
    let reverter = ReverterConfig {
        leader_sets: 32,
        disable_below: 200,
        enable_above: 100,
        psel_max: 255,
    };
    let _ = reverter;
}
