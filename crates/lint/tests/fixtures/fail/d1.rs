//! D1 fail fixture: wall clocks, ambient RNGs and environment reads.

pub fn wall_clock_seed() -> u64 {
    let now = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    let _ = now;
    0
}

pub fn ambient_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn host_dependent() -> Option<String> {
    std::env::var("LDIS_SECRET_KNOB").ok()
}
