//! Deliberate S1 violations: every RNG construction or derive here
//! breaks the seed-provenance discipline in a distinct way. Scanned as
//! `crates/core/src/fixture.rs`; the self-test pins the exact count.

/// A literal seed: the stream is not derived from the root seed at all.
pub fn literal_seed() -> SimRng {
    SimRng::new(0xdead_beef)
}

/// The taint is killed on one branch: at the merge the must-analysis no
/// longer proves `s` derived, so the construction is flagged.
pub fn branch_killed(seed: u64, flip: bool) -> SimRng {
    let mut s = SimRng::derive_seed(seed, 1, 2);
    if flip {
        s = 3;
    }
    SimRng::new(s)
}

/// The parent RNG is captured by a parallel region and then used again:
/// the post-region draw interleaves with the workers' stream.
pub fn reuse_after_parallel(seed: u64, cells: &[u64]) -> u64 {
    let mut rng = SimRng::new(seed);
    let out = sweep(cells, |c| c + rng.next_u64());
    rng.next_u64() + out[0]
}

/// First half of a salt collision: same base, same resolved salts as
/// `salt_collision_b` below.
pub fn salt_collision_a(seed: u64) -> u64 {
    SimRng::derive_seed_chain(seed, &[7, stable_id("woc")])
}

/// Second half — `3 + 4` const-folds to the same 7, so the two derived
/// streams are identical. Flagged against the first site.
pub fn salt_collision_b(seed: u64) -> u64 {
    SimRng::derive_seed_chain(seed, &[3 + 4, stable_id("woc")])
}
