//! P1 fail fixture: panicking constructs in simulator core code.

pub fn head(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

pub fn head_or_die(values: &[u64]) -> u64 {
    values.first().copied().expect("must be non-empty")
}

pub fn abort(reason: &str) -> ! {
    panic!("simulation died: {reason}");
}

pub fn not_written() -> u64 {
    todo!()
}
