//! T1 pass fixture: narrowing casts proven value-preserving, casts that
//! are not obligations at all, and one justified waiver.

/// Known bits: masking to a byte makes the `as u8` lossless.
pub fn masked(x: u64) -> u8 {
    (x & 0xff) as u8
}

/// Interval from `.min(..)`: the value cannot exceed 255.
pub fn clamped(n: u32) -> u8 {
    n.min(255) as u8
}

/// Branch refinement: past the guard, `v` fits a u16.
pub fn guarded(v: u32) -> u16 {
    if v >= 65536 {
        return 0;
    }
    v as u16
}

/// Not an obligation: an unsigned source no wider than the target
/// cannot truncate.
pub fn widening(b: u8) -> u32 {
    b as u32
}

/// Unprovable but waived with a justification: the waiver is
/// load-bearing here, so it is not stale either.
pub fn waived(raw: u64) -> u8 {
    // ldis: allow(T1, "fixture: callers pass line counts below 256")
    raw as u8
}
