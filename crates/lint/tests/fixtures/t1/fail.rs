//! T1 fail fixture: narrowing casts the domain cannot prove
//! value-preserving. Exact count pinned by the self-test.

/// Unconstrained source.
pub fn unbounded(x: u32) -> u8 {
    x as u8
}

/// The sum of two u32 halves can exceed u16.
pub fn summed(a: u32, b: u32) -> u16 {
    (a + b) as u16
}

/// Off-by-one guard: `v` may still be exactly 256.
pub fn off_by_one(v: u32) -> u8 {
    if v > 256 {
        return 0;
    }
    v as u8
}
