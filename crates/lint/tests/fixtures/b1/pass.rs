//! B1 pass fixture: every shift amount is provably below the shifted
//! type's bit width, through four different proof routes.

/// Branch refinement: the else-arm knows `len < 64`.
pub fn low_mask(len: u32) -> u64 {
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

/// Known bits: `k & 31` has all bits above 4 provably zero.
pub fn masked_shift(k: u32) -> u32 {
    1u32 << (k & 31)
}

/// Early return: past the guard, `word < 16`.
pub fn word_bit(word: u8) -> u16 {
    if word >= 16 {
        return 0;
    }
    1u16 << word
}

/// Loop refinement: the `while` condition bounds `i` inside the body
/// even after widening kicks in.
pub fn loop_shift() -> u64 {
    let mut acc = 0u64;
    let mut i = 0u32;
    while i < 64 {
        acc |= 1u64 << i;
        i += 1;
    }
    acc
}
