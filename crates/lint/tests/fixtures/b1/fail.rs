//! B1 fail fixture: three shift amounts the domain cannot bound below
//! the shifted type's width. Exact count pinned by the self-test.

/// Off-by-one guard: `len` may still be exactly 64.
pub fn off_by_one(len: u32) -> u64 {
    if len > 64 {
        return u64::MAX;
    }
    (1u64 << len) - 1
}

/// No bound at all on the amount.
pub fn unbounded(k: u32) -> u16 {
    1u16 << k
}

/// Mask wider than the shifted type: `k & 15` can reach 15 >= 8.
pub fn wrong_mask(k: u32) -> u8 {
    1u8 << (k & 15)
}
