//! Control-flow zoo for the CFG snapshot: one function per lowering
//! shape the builder handles. The rendered graphs are pinned byte-for-
//! byte in `cfg.snap` (regenerate with `UPDATE_SNAPSHOTS=1`).

pub fn straight(a: u64) -> u64 {
    let b = a + 1;
    let c = b * 2;
    c
}

pub fn branchy(a: u64, flip: bool) -> u64 {
    let mut x = a;
    if flip {
        x = x + 1;
    } else {
        x = x + 2;
    }
    x
}

pub fn else_if_chain(a: u64) -> u64 {
    if a > 100 {
        3
    } else if a > 10 {
        2
    } else {
        1
    }
}

pub fn looping(n: u64) -> u64 {
    let mut total = 0;
    let mut i = 0;
    while i < n {
        total += i;
        i += 1;
    }
    total
}

pub fn bare_loop_with_break(n: u64) -> u64 {
    let mut i = 0;
    loop {
        i += 1;
        if i >= n {
            break;
        }
    }
    i
}

pub fn early_return(v: Option<u64>) -> u64 {
    if v.is_none() {
        return 0;
    }
    v.unwrap_or(1)
}

pub fn matcher(k: u64) -> u64 {
    match k {
        0 => 10,
        1 => {
            let t = k + 1;
            t * 2
        }
        _ => 0,
    }
}

pub fn for_each(items: &[u64]) -> u64 {
    let mut acc = 0;
    for it in items {
        acc += *it;
    }
    acc
}

pub fn continue_and_break(items: &[u64]) -> u64 {
    let mut acc = 0;
    for it in items {
        if *it == 0 {
            continue;
        }
        if *it > 100 {
            break;
        }
        acc += *it;
    }
    acc
}
