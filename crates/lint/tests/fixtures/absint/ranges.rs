//! Domain snapshot fixture: small functions whose solved abstract
//! states pin the interval and known-bits transfer functions
//! byte-for-byte (see `tests/absint.rs`).

/// Straight-line arithmetic: literals, add, mask, shift.
pub fn straight(x: u32) -> u32 {
    let a = 12u32;
    let b = a + 3;
    let m = x & 0xff;
    let s = m << 2;
    b + s
}

/// Branch refinement and the join at the merge.
pub fn branchy(v: u32) -> u32 {
    let mut out = 0u32;
    if v < 16 {
        out = v;
    } else {
        out = 16;
    }
    out
}

/// A counting loop: the widening ladder must stabilize the state.
pub fn counting() -> u64 {
    let mut acc = 0u64;
    let mut i = 0u32;
    while i < 64 {
        acc |= 1u64 << i;
        i += 1;
    }
    acc
}

/// Narrowing after a guard: the exit state proves the cast.
pub fn narrow(v: u32) -> u8 {
    if v >= 256 {
        return 255;
    }
    v as u8
}
