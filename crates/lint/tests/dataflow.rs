//! Integration tests for the flow-sensitive engine: the CFG builder's
//! rendered output is pinned byte-for-byte against a snapshot, and the
//! worklist solver's lattice behavior (fixpoint on loops, must-vs-may
//! joins, branch-sensitive gen/kill) is exercised over real lowered
//! functions rather than hand-built graphs.

use ldis_lint::cfg::Cfg;
use ldis_lint::dataflow::{solve_forward, GenKill};
use ldis_lint::lexer::lex;
use ldis_lint::parser;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture_src() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cfg/control_flow.rs");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Builds the CFG of the fixture function named `name`.
fn cfg_of(name: &str) -> Cfg {
    let src = fixture_src();
    let lexed = lex(&src);
    let parsed = parser::parse(&lexed.tokens);
    let f = parsed
        .fns
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("fixture fn {name} not found"));
    Cfg::build(&lexed.tokens, f.body.clone())
}

fn set(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[test]
fn cfg_render_snapshot_is_byte_identical() {
    let src = fixture_src();
    let lexed = lex(&src);
    let parsed = parser::parse(&lexed.tokens);
    let mut rendered = String::new();
    for f in &parsed.fns {
        let cfg = Cfg::build(&lexed.tokens, f.body.clone());
        rendered.push_str(&format!("fn {}\n", f.name));
        rendered.push_str(&cfg.render(&lexed.tokens));
        rendered.push('\n');
    }
    let snap_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cfg/cfg.snap");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&snap_path, &rendered).expect("writing snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&snap_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", snap_path.display()));
    assert_eq!(
        rendered, expected,
        "CFG render drifted from tests/fixtures/cfg/cfg.snap; \
         if the change is intended, regenerate with UPDATE_SNAPSHOTS=1"
    );
}

#[test]
fn solver_reaches_fixpoint_on_loops() {
    // Every looping shape in the fixture must converge without tripping
    // the safety valve, and the exit must be reachable.
    for name in [
        "looping",
        "bare_loop_with_break",
        "for_each",
        "continue_and_break",
    ] {
        let cfg = cfg_of(name);
        let gk = GenKill {
            must: false,
            boundary: set(&["root"]),
            gen: vec![BTreeSet::new(); cfg.nodes.len()],
            kill: vec![BTreeSet::new(); cfg.nodes.len()],
        };
        let sol = solve_forward(&cfg, &gk);
        assert!(sol.converged, "{name} did not converge");
        assert!(sol.input[cfg.exit].is_some(), "{name}: exit unreachable");
    }
}

#[test]
fn must_join_intersects_and_may_join_unions_at_merge() {
    // In `branchy`, gen a different name on each arm of the if. The
    // must-analysis keeps neither at the merge; the may-analysis keeps
    // both.
    let cfg = cfg_of("branchy");
    let mut gen = vec![BTreeSet::new(); cfg.nodes.len()];
    let mut tagged = 0;
    for (id, node) in cfg.nodes.iter().enumerate() {
        // The two `x = x + k;` arm statements are the only nodes whose
        // spans contain an integer literal 1 or 2 after lowering.
        if !node.span.is_empty() && node.preds.len() == 1 {
            let toks = lex(&fixture_src()).tokens;
            let texts: Vec<&str> = toks[node.span.clone()]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            if texts.contains(&"x") && (texts.contains(&"1") || texts.contains(&"2")) {
                gen[id] = set(&[if texts.contains(&"1") { "then" } else { "else" }]);
                tagged += 1;
            }
        }
    }
    assert_eq!(tagged, 2, "expected both if arms to be tagged");

    let must = GenKill {
        must: true,
        boundary: BTreeSet::new(),
        gen: gen.clone(),
        kill: vec![BTreeSet::new(); cfg.nodes.len()],
    };
    let sol = solve_forward(&cfg, &must);
    assert!(sol.converged);
    assert_eq!(
        sol.input[cfg.exit].as_ref().unwrap().len(),
        0,
        "must-join keeps only facts proven on every path"
    );

    let may = GenKill {
        must: false,
        boundary: BTreeSet::new(),
        gen,
        kill: vec![BTreeSet::new(); cfg.nodes.len()],
    };
    let sol = solve_forward(&cfg, &may);
    assert!(sol.converged);
    assert_eq!(
        sol.input[cfg.exit].as_ref().unwrap(),
        &set(&["then", "else"]),
        "may-join unions facts from both arms"
    );
}

#[test]
fn branch_sensitive_kill_reaches_merge_under_must_join() {
    // Gen a fact at entry, kill it on the then-arm only: the must-join
    // at the merge loses it, proving the kill is branch-sensitive and
    // the no-else false edge is wired.
    let cfg = cfg_of("branchy");
    let src = fixture_src();
    let toks = lex(&src).tokens;
    let mut kill = vec![BTreeSet::new(); cfg.nodes.len()];
    let mut killed = 0;
    for (id, node) in cfg.nodes.iter().enumerate() {
        let texts: Vec<&str> = toks[node.span.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        if texts.contains(&"1") && texts.contains(&"x") {
            kill[id] = set(&["clean"]);
            killed += 1;
        }
    }
    assert_eq!(killed, 1, "exactly the then-arm kills");

    let gk = GenKill {
        must: true,
        boundary: set(&["clean"]),
        gen: vec![BTreeSet::new(); cfg.nodes.len()],
        kill,
    };
    let sol = solve_forward(&cfg, &gk);
    assert!(sol.converged);
    assert!(
        sol.input[cfg.exit].as_ref().unwrap().is_empty(),
        "a kill on one path must clear the must-fact at the merge"
    );
}

#[test]
fn code_after_bare_loop_without_break_is_unreachable() {
    let src = "fn f() -> u64 { let mut i = 0; loop { i += 1; } }";
    let lexed = lex(src);
    let parsed = parser::parse(&lexed.tokens);
    let cfg = Cfg::build(&lexed.tokens, parsed.fns[0].body.clone());
    let gk = GenKill {
        must: false,
        boundary: set(&["root"]),
        gen: vec![BTreeSet::new(); cfg.nodes.len()],
        kill: vec![BTreeSet::new(); cfg.nodes.len()],
    };
    let sol = solve_forward(&cfg, &gk);
    assert!(sol.converged, "diverging loop still reaches fixpoint");
    assert!(
        sol.input[cfg.exit].is_none(),
        "exit after a break-less bare loop must stay unreachable"
    );
}
