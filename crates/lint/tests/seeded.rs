//! Seeded regressions: prove the interprocedural rules actually gate
//! the workspace by injecting known defects into the *live* sources (in
//! memory, nothing on disk) and checking each one fails the same
//! classification `ldis-lint --deny` uses.
//!
//! Six seeds, matching the defect classes the rules were built for:
//! (a) a transitive panic behind a public `crates/sfp` entry point,
//! (b) a word-index/byte-address argument swap in `crates/core`,
//! (c) a derive-salt collision in `crates/core` (rule S1),
//! (d) a lock-order cycle in the experiments executor (rule L2),
//! (e) an off-by-one shift bound next to the span-mask kernels (B1), and
//! (f) a lossy `words_used as u8` truncation in the arena (T1).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// All live `.rs` sources, as `scan_workspace` would collect them.
fn live_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    ldis_lint::collect_files(&root)
        .expect("workspace listing")
        .into_iter()
        .filter(|rel| rel.ends_with(".rs"))
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel))
                .unwrap_or_else(|e| panic!("reading {rel}: {e}"));
            (rel, src)
        })
        .collect()
}

/// Appends `seed` to `path`'s source and returns the deny-tier errors
/// the patched workspace produces under the committed baseline.
fn errors_with_seed(path: &str, seed: &str) -> Vec<ldis_lint::report::Finding> {
    let root = workspace_root();
    let baseline = ldis_lint::load_baseline(&root.join("lint.toml")).expect("lint.toml parses");
    let mut sources = live_sources();
    let target = sources
        .iter_mut()
        .find(|(rel, _)| rel == path)
        .unwrap_or_else(|| panic!("{path} not in workspace"));
    target.1.push_str(seed);
    let cfg = ldis_lint::analyze::AnalysisConfig::from_baseline(&baseline);
    let findings = ldis_lint::analyze::scan_model(&sources, &cfg);
    ldis_lint::report::classify(findings, &baseline).errors
}

#[test]
fn unseeded_workspace_is_clean() {
    // Control: without a seed, the interprocedural pass reports nothing —
    // so any errors in the seeded tests are attributable to the seed.
    let root = workspace_root();
    let baseline = ldis_lint::load_baseline(&root.join("lint.toml")).expect("lint.toml parses");
    let cfg = ldis_lint::analyze::AnalysisConfig::from_baseline(&baseline);
    let findings = ldis_lint::analyze::scan_model(&live_sources(), &cfg);
    let errors = ldis_lint::report::classify(findings, &baseline).errors;
    assert!(
        errors.is_empty(),
        "{:?}",
        errors
            .iter()
            .map(|f| format!("{}:{} {}", f.path, f.line, f.message))
            .collect::<Vec<_>>()
    );
}

#[test]
fn injected_transitive_panic_in_sfp_fails_deny() {
    let errors = errors_with_seed(
        "crates/sfp/src/lib.rs",
        "\nfn seeded_helper(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n\n\
         pub fn seeded_entry(v: Option<u8>) -> u8 {\n    seeded_helper(v)\n}\n",
    );
    let p2: Vec<_> = errors
        .iter()
        .filter(|f| f.rule == "P2" && f.message.contains("seeded_entry"))
        .collect();
    assert_eq!(p2.len(), 1, "seeded panic not caught: {errors:?}");
    let msg = &p2[0].message;
    assert!(
        msg.contains("seeded_entry (crates/sfp/src/lib.rs:"),
        "{msg}"
    );
    assert!(
        msg.contains("seeded_helper (crates/sfp/src/lib.rs:"),
        "{msg}"
    );
    assert!(
        msg.contains("`.unwrap()` at crates/sfp/src/lib.rs:"),
        "{msg}"
    );
}

#[test]
fn injected_word_byte_swap_in_core_fails_deny() {
    let errors = errors_with_seed(
        "crates/core/src/lib.rs",
        "\nfn seeded_lookup(word_idx: usize) -> u64 {\n    word_idx as u64\n}\n\n\
         pub fn seeded_swap(addr: u64) -> u64 {\n    seeded_lookup(addr as usize)\n}\n",
    );
    let u1: Vec<_> = errors
        .iter()
        .filter(|f| f.rule == "U1" && f.path == "crates/core/src/lib.rs")
        .collect();
    assert_eq!(u1.len(), 1, "seeded unit swap not caught: {errors:?}");
    let msg = &u1[0].message;
    assert!(msg.contains("expects a word-index"), "{msg}");
    assert!(msg.contains("got a byte-address"), "{msg}");
}

#[test]
fn injected_salt_collision_in_core_fails_deny() {
    // Two derive sites with the same base and the same statically-
    // resolved salt tuple: the derived streams are identical.
    let errors = errors_with_seed(
        "crates/core/src/lib.rs",
        "\nfn seeded_salt_a(seed: u64) -> u64 {\n    \
         SimRng::derive_seed_chain(seed, &[0x5eed, stable_id(\"seeded\")])\n}\n\n\
         fn seeded_salt_b(seed: u64) -> u64 {\n    \
         SimRng::derive_seed_chain(seed, &[0x5eed, stable_id(\"seeded\")])\n}\n",
    );
    let s1: Vec<_> = errors
        .iter()
        .filter(|f| f.rule == "S1" && f.path == "crates/core/src/lib.rs")
        .collect();
    assert_eq!(s1.len(), 1, "seeded salt collision not caught: {errors:?}");
    let msg = &s1[0].message;
    assert!(msg.contains("duplicates the derive at"), "{msg}");
    assert!(msg.contains("stable_id(\"seeded\")"), "{msg}");
}

#[test]
fn injected_lock_order_cycle_in_executor_fails_deny() {
    // Opposite acquisition orders over two fresh mutexes: two workers
    // running these concurrently deadlock.
    let errors = errors_with_seed(
        "crates/experiments/src/exec/mod.rs",
        "\nfn seeded_order_fb(front: &Mutex<u64>, back: &Mutex<u64>) -> u64 {\n    \
         let f = front.lock().unwrap_or_else(|e| e.into_inner());\n    \
         let b = back.lock().unwrap_or_else(|e| e.into_inner());\n    \
         *f + *b\n}\n\n\
         fn seeded_order_bf(front: &Mutex<u64>, back: &Mutex<u64>) -> u64 {\n    \
         let b = back.lock().unwrap_or_else(|e| e.into_inner());\n    \
         let f = front.lock().unwrap_or_else(|e| e.into_inner());\n    \
         *f + *b\n}\n",
    );
    let l2: Vec<_> = errors.iter().filter(|f| f.rule == "L2").collect();
    assert_eq!(l2.len(), 1, "seeded lock cycle not caught: {errors:?}");
    let msg = &l2[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(msg.contains("front") && msg.contains("back"), "{msg}");
}

#[test]
fn injected_off_by_one_shift_bound_in_footprint_fails_deny() {
    // The classic span-mask guard bug: `>` where `>=` was meant, so
    // `first == 16` reaches the shift and panics in debug / wraps the
    // amount in release. The interval domain sees [0, 16] past the
    // guard and refuses the proof.
    let errors = errors_with_seed(
        "crates/mem/src/footprint.rs",
        "\nfn seeded_span_shift(first: u8) -> u16 {\n    \
         if first > 16 {\n        return 0;\n    }\n    \
         1u16 << first\n}\n",
    );
    let b1: Vec<_> = errors
        .iter()
        .filter(|f| f.rule == "B1" && f.path == "crates/mem/src/footprint.rs")
        .collect();
    assert_eq!(b1.len(), 1, "seeded shift bound not caught: {errors:?}");
    let msg = &b1[0].message;
    assert!(msg.contains("not provably < 16"), "{msg}");
    assert!(msg.contains("[0, 16]"), "{msg}");
}

#[test]
fn injected_words_used_truncation_in_arena_fails_deny() {
    // A used-word count widened by arena coordinates and stored back
    // into the u8 packed field: nothing bounds the sum below 256, so
    // the narrowing cast silently corrupts the count.
    let errors = errors_with_seed(
        "crates/cache/src/arena.rs",
        "\nfn seeded_words_used(total: usize, set: usize, way: usize) -> u8 {\n    \
         let words_used = total + set + way;\n    \
         words_used as u8\n}\n",
    );
    let t1: Vec<_> = errors
        .iter()
        .filter(|f| f.rule == "T1" && f.path == "crates/cache/src/arena.rs")
        .collect();
    assert_eq!(t1.len(), 1, "seeded truncation not caught: {errors:?}");
    let msg = &t1[0].message;
    assert!(msg.contains("narrowing `as u8`"), "{msg}");
}
