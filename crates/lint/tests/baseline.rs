//! Live-workspace lint check: the committed `lint.toml` baseline must
//! match the actual findings exactly — no unbaselined errors (new debt)
//! and no stale entries (paid-down debt whose allowance wasn't shrunk).
//! This is the same contract CI enforces with `ldis-lint --deny`, run as
//! a plain test so `cargo test` catches drift too.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn baseline_matches_live_findings() {
    let root = workspace_root();
    let baseline = ldis_lint::load_baseline(&root.join("lint.toml")).expect("lint.toml parses");
    let outcome = ldis_lint::scan_workspace(&root, &baseline).expect("workspace scans");

    let errors: Vec<String> = outcome
        .errors
        .iter()
        .map(|f| format!("{}:{} {}[{}]", f.path, f.line, f.message, f.rule))
        .collect();
    assert!(
        errors.is_empty(),
        "unbaselined lint findings (fix them or justify in lint.toml):\n{}",
        errors.join("\n")
    );

    let stale: Vec<String> = outcome
        .stale
        .iter()
        .map(|s| {
            format!(
                "{} {}: allows {} but only {} remain",
                s.rule, s.path, s.allowed, s.live
            )
        })
        .collect();
    assert!(
        stale.is_empty(),
        "stale lint.toml entries (shrink them):\n{}",
        stale.join("\n")
    );
}

#[test]
fn baseline_entries_are_justified() {
    let root = workspace_root();
    let baseline = ldis_lint::load_baseline(&root.join("lint.toml")).expect("lint.toml parses");
    for entry in &baseline.allows {
        assert!(
            !entry.justification.contains("TODO"),
            "{} {}: baseline entry still carries a TODO justification",
            entry.rule,
            entry.path
        );
    }
}
