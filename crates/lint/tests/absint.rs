//! Integration tests for the abstract-interpretation layer: the
//! interval + known-bits lattice (widening termination, join soundness,
//! transfer functions), the B1/R1/T1 fixture corpus with exact finding
//! counts, the T1 waiver-hygiene pass, and the committed domain-state
//! snapshot pinning the transfer functions byte-for-byte.

use ldis_lint::absint::{self, AbsVal, IntTy};
use ldis_lint::model::Workspace;
use std::path::PathBuf;

fn fixture(dir: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Runs the workspace pass over one fixture scanned under a synthetic
/// in-scope path, returning only findings of `rule`.
fn model_findings(rule: &str, as_path: &str, src: &str) -> Vec<ldis_lint::report::Finding> {
    let files = vec![(as_path.to_string(), src.to_string())];
    ldis_lint::analyze::scan_model(&files, &ldis_lint::analyze::AnalysisConfig::default())
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

// --- lattice unit tests ----------------------------------------------

#[test]
fn join_is_an_upper_bound() {
    // The join of two values must contain both operands: interval hull
    // on [min, max], intersection (AND) on the provably-zero bits.
    let a = AbsVal::range(3, 10);
    let b = AbsVal::range(-2, 5);
    let j = a.join(&b);
    assert!(j.min <= a.min && j.min <= b.min);
    assert!(j.max >= a.max && j.max >= b.max);

    let x = AbsVal::exact(0b0100, Some(IntTy::U8));
    let y = AbsVal::exact(0b0001, Some(IntTy::U8));
    let j = x.join(&y);
    // Both 4 and 1 must satisfy the joined zeros mask.
    assert_eq!(4i128 as u128 & j.zeros, 0);
    assert_eq!(1i128 as u128 & j.zeros, 0);
    assert!(j.min <= 1 && j.max >= 4);
}

#[test]
fn join_with_top_is_top() {
    let a = AbsVal::range(0, 7);
    assert_eq!(a.join(&AbsVal::top()), AbsVal::top().join(&a));
    let j = a.join(&AbsVal::top());
    assert!(j.min <= AbsVal::top().min && j.max >= AbsVal::top().max);
}

#[test]
fn widening_climbs_a_finite_ladder() {
    // Repeated widen() must reach a fixpoint in a bounded number of
    // steps from any starting value — this is what caps the solver's
    // visits per node.
    for start in [
        AbsVal::range(0, 1),
        AbsVal::range(-5, 1_000_000),
        AbsVal::exact(42, Some(IntTy::U64)),
        AbsVal::ty_top(IntTy::U32),
    ] {
        let mut v = start;
        let mut steps = 0;
        loop {
            let w = v.widen();
            if w == v {
                break;
            }
            v = w;
            steps += 1;
            assert!(steps < 64, "widening did not terminate from {v:?}");
        }
    }
}

#[test]
fn widening_is_extensive() {
    // widen(v) must contain v, or the solver would lose sound facts.
    for v in [
        AbsVal::range(1, 100),
        AbsVal::range(-3, 3),
        AbsVal::exact(0, Some(IntTy::U8)),
    ] {
        let w = v.widen();
        assert!(w.min <= v.min && w.max >= v.max, "{w:?} !>= {v:?}");
    }
}

#[test]
fn shift_transfer_tracks_known_bits() {
    // (x & 0xf) << 4: the low 4 bits become provably zero and the
    // interval scales by 16.
    let x = AbsVal::ty_top(IntTy::U32);
    let masked = x.bitand(&AbsVal::exact(0xf, None));
    assert_eq!(masked.min, 0);
    assert_eq!(masked.max, 0xf);
    let shifted = masked.shl(&AbsVal::exact(4, None));
    assert_eq!(shifted.min, 0);
    assert_eq!(shifted.max, 0xf0);
    assert_eq!(shifted.zeros & 0xff, 0x0f, "low nibble provably zero");
}

#[test]
fn mask_transfer_intersects_zero_bits() {
    // AND accumulates zeros from both sides; the result's interval is
    // bounded by the smaller non-negative operand.
    let a = AbsVal::range(0, 1000);
    let m = a.bitand(&AbsVal::exact(0x3f, None));
    assert_eq!(m.min, 0);
    assert_eq!(m.max, 0x3f);
    assert_eq!(m.zeros & 0xff, 0xc0, "bits 6..8 provably zero");
}

#[test]
fn shr_shrinks_the_interval() {
    let a = AbsVal::range(0, 255);
    let s = a.shr(&AbsVal::exact(4, None));
    assert_eq!(s.min, 0);
    assert_eq!(s.max, 15);
}

// --- solver termination over real bodies -----------------------------

#[test]
fn solver_converges_on_counting_loops() {
    let src = fixture("absint", "ranges.rs");
    let files = vec![("crates/mem/src/fixture.rs".to_string(), src)];
    let ws = Workspace::build(&files);
    let aws = absint::AbsintWorkspace::build(&ws);
    for (f, info) in ws.fns.iter().enumerate() {
        let fa = aws.solve(&ws, f);
        assert!(
            fa.sol.converged,
            "{} did not converge under widening",
            info.item.qual
        );
    }
}

// --- fixture corpus: exact counts ------------------------------------

/// Each absint rule with its fixture dir, synthetic in-scope path and
/// exact fail-fixture finding count.
const ABSINT_CASES: &[(&str, &str, &str, usize)] = &[
    ("B1", "b1", "crates/mem/src/fixture.rs", 3),
    ("R1", "r1", "crates/cache/src/fixture.rs", 2),
    ("T1", "t1", "crates/mem/src/fixture.rs", 3),
];

#[test]
fn absint_fail_fixture_counts_are_exact() {
    for (rule, dir, as_path, expected) in ABSINT_CASES {
        let src = fixture(dir, "fail.rs");
        let found = model_findings(rule, as_path, &src);
        assert_eq!(
            found.len(),
            *expected,
            "{rule} on fixtures/{dir}/fail.rs: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
        for f in &found {
            assert_eq!(f.path, *as_path);
            assert!(f.line > 0 && f.col > 0, "{rule} finding lacks a location");
            assert_eq!(f.level, ldis_lint::report::Level::Deny);
        }
    }
}

#[test]
fn absint_rules_are_silent_on_pass_fixtures() {
    for (rule, dir, as_path, _) in ABSINT_CASES {
        let src = fixture(dir, "pass.rs");
        let found = model_findings(rule, as_path, &src);
        assert!(
            found.is_empty(),
            "{rule} fired on fixtures/{dir}/pass.rs: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn t1_pass_fixture_waiver_is_not_stale() {
    // The pass fixture's one waiver covers a genuinely unproven cast,
    // so the stale-waiver hygiene pass must stay quiet too.
    let src = fixture("t1", "pass.rs");
    let found = model_findings("W1", "crates/mem/src/fixture.rs", &src);
    assert!(
        found.is_empty(),
        "stale-waiver pass fired on fixtures/t1/pass.rs: {:?}",
        found.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
}

// --- T1 waiver hygiene ------------------------------------------------

#[test]
fn stale_t1_waiver_is_a_finding() {
    // A justified T1 waiver over a provable (or absent) cast waives
    // nothing: W1 flags it so it cannot swallow the next real finding.
    let src = "pub fn fine(b: u8) -> u32 {\n\
               \x20   // ldis: allow(T1, \"nothing to waive here\")\n\
               \x20   b as u32\n\
               }\n";
    let found = model_findings("W1", "crates/mem/src/fixture.rs", src);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].message.contains("stale `T1` waiver"));
}

#[test]
fn unjustified_t1_waiver_does_not_waive() {
    // A bare `allow(T1)` with no justification is malformed: the cast
    // still fires and the waiver itself is flagged.
    let src = "pub fn trunc(x: u32) -> u8 {\n\
               \x20   // ldis: allow(T1)\n\
               \x20   x as u8\n\
               }\n";
    let t1 = model_findings("T1", "crates/mem/src/fixture.rs", src);
    assert_eq!(t1.len(), 1, "unjustified waiver must not waive: {t1:?}");
    // The malformed-waiver finding itself comes from the per-file pass.
    let w1: Vec<_> = ldis_lint::scan_file("crates/mem/src/fixture.rs", src)
        .into_iter()
        .filter(|f| f.rule == "W1")
        .collect();
    assert!(
        w1.iter().any(|f| f.line == 2),
        "malformed waiver not flagged: {w1:?}"
    );
}

#[test]
fn t1_debt_round_trips_through_update_baseline() {
    // A T1 finding becomes a TODO [[allow]] entry under
    // --update-baseline, the B1/R1/T1 tier overrides survive the
    // rewrite, and the regenerated file parses back and covers the
    // finding without going stale.
    let src = "pub fn trunc(x: u32) -> u8 {\n    x as u8\n}\n";
    let baseline =
        ldis_lint::report::Baseline::parse("[tier]\nB1 = \"deny\"\nR1 = \"deny\"\nT1 = \"deny\"\n")
            .expect("tier table parses");
    let findings = model_findings("T1", "crates/mem/src/fixture.rs", src);
    let outcome = ldis_lint::report::classify(findings, &baseline);
    assert_eq!(outcome.errors.len(), 1, "the unbaselined cast must error");

    let entries = ldis_lint::regenerate_baseline(&outcome, &baseline);
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].rule, "T1");
    assert!(entries[0].justification.contains("TODO"));

    let text = ldis_lint::report::write_baseline(&entries, &baseline.tiers);
    for rule in ["B1", "R1", "T1"] {
        assert!(
            text.contains(&format!("{rule} = \"deny\"")),
            "tier override for {rule} dropped by the rewrite:\n{text}"
        );
    }
    let reparsed = ldis_lint::report::Baseline::parse(&text).expect("regenerated file parses");
    let outcome = ldis_lint::report::classify(
        model_findings("T1", "crates/mem/src/fixture.rs", src),
        &reparsed,
    );
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.baselined.len(), 1);
    assert!(outcome.stale.is_empty());
}

// --- domain snapshot --------------------------------------------------

#[test]
fn domain_state_snapshot_is_byte_identical() {
    let src = fixture("absint", "ranges.rs");
    let files = vec![("crates/mem/src/fixture.rs".to_string(), src)];
    let ws = Workspace::build(&files);
    let aws = absint::AbsintWorkspace::build(&ws);
    let mut rendered = String::new();
    for (f, info) in ws.fns.iter().enumerate() {
        let fa = aws.solve(&ws, f);
        rendered.push_str(&format!("fn {}\n", info.item.name));
        rendered.push_str(&fa.render(&ws.files[info.file].tokens));
        rendered.push('\n');
    }
    let snap_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/absint/domain.snap");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&snap_path, &rendered).expect("writing snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&snap_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", snap_path.display()));
    assert_eq!(
        rendered, expected,
        "domain render drifted from tests/fixtures/absint/domain.snap; \
         if the change is intended, regenerate with UPDATE_SNAPSHOTS=1"
    );
}
