//! Fixture self-tests: every rule fires on its `fail/` fixture and is
//! silent on its `pass/` fixture. The fixtures live under
//! `tests/fixtures/{pass,fail}/` and are excluded from the workspace
//! scan itself (`rules_for` skips them), so the deliberate violations
//! never pollute the real lint run.

use std::path::PathBuf;

fn fixture(kind: &str, name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Scans a Rust fixture as if it lived at `as_path`, returning only the
/// deny-tier findings of `rule`.
fn deny_findings(rule: &str, as_path: &str, src: &str) -> Vec<ldis_lint::report::Finding> {
    ldis_lint::scan_file(as_path, src)
        .into_iter()
        .filter(|f| f.rule == rule && f.level == ldis_lint::report::Level::Deny)
        .collect()
}

/// Each rule with its fixture stem and the synthetic in-scope path the
/// fixture is scanned under (sim-crate source for D1/D2/P1, an example
/// for C1 — matching the real scope map).
const RUST_CASES: &[(&str, &str, &str)] = &[
    ("D1", "d1.rs", "crates/mem/src/fixture.rs"),
    ("D2", "d2.rs", "crates/mem/src/fixture.rs"),
    ("P1", "p1.rs", "crates/mem/src/fixture.rs"),
    ("C1", "c1.rs", "examples/fixture.rs"),
];

#[test]
fn every_rule_fires_on_its_fail_fixture() {
    for (rule, name, as_path) in RUST_CASES {
        let src = fixture("fail", name);
        let found = deny_findings(rule, as_path, &src);
        assert!(
            !found.is_empty(),
            "{rule} did not fire on fixtures/fail/{name}"
        );
        for f in &found {
            assert_eq!(f.path, *as_path);
            assert!(f.line > 0 && f.col > 0, "{rule} finding lacks a location");
            assert!(!f.message.is_empty());
        }
    }
}

#[test]
fn every_rule_is_silent_on_its_pass_fixture() {
    for (rule, name, as_path) in RUST_CASES {
        let src = fixture("pass", name);
        let found = deny_findings(rule, as_path, &src);
        assert!(
            found.is_empty(),
            "{rule} fired on fixtures/pass/{name}: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn fail_fixture_counts_are_exact() {
    // Pin the exact counts so a regression in any sub-check (e.g. the
    // env-read detector or a macro in the panic family) is caught, not
    // just total silence.
    let cases = [
        ("D1", "d1.rs", "crates/mem/src/fixture.rs", 4),
        ("D2", "d2.rs", "crates/mem/src/fixture.rs", 3),
        ("P1", "p1.rs", "crates/mem/src/fixture.rs", 4),
        ("C1", "c1.rs", "examples/fixture.rs", 5),
    ];
    for (rule, name, as_path, expected) in cases {
        let src = fixture("fail", name);
        let found = deny_findings(rule, as_path, &src);
        assert_eq!(
            found.len(),
            expected,
            "{rule} on fixtures/fail/{name}: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
    }
}

/// Runs the interprocedural pass over one fixture file scanned under a
/// synthetic in-scope path, returning only findings of `rule`.
fn model_findings(rule: &str, as_path: &str, src: &str) -> Vec<ldis_lint::report::Finding> {
    let files = vec![(as_path.to_string(), src.to_string())];
    ldis_lint::analyze::scan_model(&files, &ldis_lint::analyze::AnalysisConfig::default())
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

/// The interprocedural rules with their fixture stems, synthetic paths
/// and exact fail-fixture finding counts.
const MODEL_CASES: &[(&str, &str, &str, usize)] = &[
    ("P2", "p2.rs", "crates/sfp/src/fixture.rs", 2),
    ("U1", "u1.rs", "crates/mem/src/fixture.rs", 4),
    ("D3", "d3.rs", "crates/experiments/src/fixture.rs", 3),
    ("S1", "s1.rs", "crates/core/src/fixture.rs", 4),
    ("L2", "l2.rs", "crates/experiments/src/fixture.rs", 4),
    ("O1", "o1.rs", "crates/cache/src/fixture.rs", 7),
];

#[test]
fn interprocedural_fail_fixture_counts_are_exact() {
    for (rule, name, as_path, expected) in MODEL_CASES {
        let src = fixture("fail", name);
        let found = model_findings(rule, as_path, &src);
        assert_eq!(
            found.len(),
            *expected,
            "{rule} on fixtures/fail/{name}: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
        for f in &found {
            assert_eq!(f.path, *as_path);
            assert!(f.line > 0 && f.col > 0, "{rule} finding lacks a location");
        }
    }
}

#[test]
fn interprocedural_rules_are_silent_on_pass_fixtures() {
    for (rule, name, as_path, _) in MODEL_CASES {
        let src = fixture("pass", name);
        let found = model_findings(rule, as_path, &src);
        assert!(
            found.is_empty(),
            "{rule} fired on fixtures/pass/{name}: {:?}",
            found
                .iter()
                .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn p2_fixture_diagnostic_renders_the_full_call_path() {
    let src = fixture("fail", "p2.rs");
    let found = model_findings("P2", "crates/sfp/src/fixture.rs", &src);
    let entry = found
        .iter()
        .find(|f| f.message.contains("`entry`"))
        .expect("finding for `entry`");
    for hop in ["entry", "mid", "deep"] {
        assert!(
            entry
                .message
                .contains(&format!("{hop} (crates/sfp/src/fixture.rs:")),
            "missing hop {hop}: {}",
            entry.message
        );
    }
    assert!(entry
        .message
        .contains("`.unwrap()` at crates/sfp/src/fixture.rs:"));
}

#[test]
fn call_graph_snapshot_is_byte_identical() {
    let files = vec![
        (
            "crates/mem/src/lib.rs".to_string(),
            fixture("callgraph", "mem.rs"),
        ),
        (
            "crates/cache/src/lib.rs".to_string(),
            fixture("callgraph", "cache.rs"),
        ),
    ];
    let ws = ldis_lint::model::Workspace::build(&files);
    let rendered = ws.render();
    let snap_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/callgraph/graph.snap");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&snap_path, &rendered).expect("writing snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&snap_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", snap_path.display()));
    assert_eq!(
        rendered, expected,
        "call-graph render drifted from tests/fixtures/callgraph/graph.snap; \
         if the change is intended, regenerate with UPDATE_SNAPSHOTS=1"
    );
}

#[test]
fn golden_fixtures_validate() {
    let bad = fixture("fail", "golden_bad.json");
    let found = ldis_lint::scan_file("tests/golden/golden_bad.json", &bad);
    let messages: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(found.len(), 4, "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("named golden_bad.json")));
    assert!(messages.iter().any(|m| m.contains("`rows` is empty")));
    assert!(messages.iter().any(|m| m.contains("`seed`")));
    assert!(messages.iter().any(|m| m.contains("`accesses`")));

    let ok = fixture("pass", "golden_ok.json");
    let found = ldis_lint::scan_file("tests/golden/golden_ok.json", &ok);
    assert!(
        found.is_empty(),
        "{:?}",
        found.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
}

#[test]
fn fixtures_are_out_of_workspace_scope() {
    for kind in ["pass", "fail"] {
        for name in [
            "d1.rs", "d2.rs", "p1.rs", "c1.rs", "p2.rs", "u1.rs", "d3.rs", "s1.rs", "l2.rs",
            "o1.rs",
        ] {
            let rel = format!("crates/lint/tests/fixtures/{kind}/{name}");
            assert_eq!(ldis_lint::rules_for(&rel), None, "{rel} must be skipped");
        }
    }
    for rel in [
        "crates/lint/tests/fixtures/b1/pass.rs",
        "crates/lint/tests/fixtures/b1/fail.rs",
        "crates/lint/tests/fixtures/r1/pass.rs",
        "crates/lint/tests/fixtures/r1/fail.rs",
        "crates/lint/tests/fixtures/t1/pass.rs",
        "crates/lint/tests/fixtures/t1/fail.rs",
        "crates/lint/tests/fixtures/absint/ranges.rs",
    ] {
        assert_eq!(ldis_lint::rules_for(rel), None, "{rel} must be skipped");
    }
}
