//! A small Rust lexer: enough syntax awareness to lint token streams.
//!
//! The offline build environment has no registry access, so `syn` is not
//! an option. The rules in this crate only need a faithful *token* view
//! of a source file — identifiers, punctuation, literals — with comments
//! and string contents kept out of the way. This lexer provides exactly
//! that: every token carries a 1-based line/column span, comments are
//! collected separately (they feed the `// ldis: allow(RULE, "why")`
//! index), and `#[cfg(test)]` item regions can be computed from the
//! token stream so panic-safety rules can exempt test code.

/// The coarse classification of a token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `let`, `r#match`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0x1f`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-5`).
    Float,
    /// A string literal of any flavor (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `:`, `{`, ...).
    Punct,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token classification.
    pub kind: TokKind,
    /// The token's text. For raw identifiers the `r#` prefix is stripped;
    /// string/char tokens keep their quotes.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A comment (line or block) with the line it starts on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end of file, which is good enough for linting.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0u32;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        // String-ish literals and prefixed identifiers.
        if c == 'r' || c == 'b' {
            if let Some(tok) = lex_prefixed(&mut cur, line, col) {
                out.tokens.push(tok);
                continue;
            }
        }
        if c == '"' {
            out.tokens.push(lex_quoted(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.tokens.push(lex_char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.tokens.push(lex_number(&mut cur, line, col));
            continue;
        }
        // Everything else: one punctuation character per token.
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Handles `r"—"`, `r#"—"#`, `r#ident`, `b"—"`, `br#"—"#` and `b'x'`.
/// Returns `None` when the `r`/`b` is just the start of a plain identifier.
fn lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let c0 = cur.peek(0)?;
    // b'x' byte char.
    if c0 == 'b' && cur.peek(1) == Some('\'') {
        cur.bump(); // b
        let mut tok = lex_char_or_lifetime(cur, line, col);
        tok.text.insert(0, 'b');
        return Some(tok);
    }
    // Find where a raw marker could start: r / br.
    let after = if c0 == 'b' && cur.peek(1) == Some('r') {
        2
    } else if c0 == 'r' {
        1
    } else if c0 == 'b' && cur.peek(1) == Some('"') {
        // b"..."
        cur.bump();
        let mut tok = lex_quoted(cur, line, col);
        tok.text.insert(0, 'b');
        return Some(tok);
    } else {
        return None;
    };
    // Count hashes after the prefix.
    let mut hashes = 0usize;
    while cur.peek(after + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(after + hashes) {
        Some('"') => {
            // Raw string: consume prefix, hashes, then to closing `"###`.
            let mut text = String::new();
            for _ in 0..after + hashes + 1 {
                text.push(cur.bump().unwrap_or('"'));
            }
            loop {
                match cur.bump() {
                    None => break,
                    Some('"') => {
                        text.push('"');
                        let mut matched = 0usize;
                        while matched < hashes && cur.peek(0) == Some('#') {
                            text.push('#');
                            cur.bump();
                            matched += 1;
                        }
                        if matched == hashes {
                            break;
                        }
                    }
                    Some(ch) => text.push(ch),
                }
            }
            Some(Token {
                kind: TokKind::Str,
                text,
                line,
                col,
            })
        }
        Some(ch) if after == 1 && hashes == 1 && is_ident_start(ch) => {
            // Raw identifier r#foo: strip the prefix so `r#match` lints as
            // the identifier `match`.
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(c2) = cur.peek(0) {
                if !is_ident_continue(c2) {
                    break;
                }
                text.push(c2);
                cur.bump();
            }
            Some(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            })
        }
        _ => None,
    }
}

fn lex_quoted(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// After a `'`: a lifetime (`'a`, `'static`) or a char literal (`'x'`).
fn lex_char_or_lifetime(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\'')); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Definitely a char literal with an escape.
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            // Consume to the closing quote (covers \u{...}).
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(ch) if is_ident_start(ch) || ch.is_ascii_digit() => {
            // Could be 'a' (char) or 'abc (lifetime): look past the run.
            let mut run = 0usize;
            while let Some(c2) = cur.peek(run) {
                if !is_ident_continue(c2) {
                    break;
                }
                run += 1;
            }
            if cur.peek(run) == Some('\'') {
                for _ in 0..=run {
                    if let Some(c2) = cur.bump() {
                        text.push(c2);
                    }
                }
                Token {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                }
            } else {
                // Lifetime: the token text is the bare name (no quote).
                text.clear();
                for _ in 0..run {
                    if let Some(c2) = cur.bump() {
                        text.push(c2);
                    }
                }
                Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                }
            }
        }
        Some(other) => {
            // e.g. '(' as a char literal.
            text.push(other);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokKind::Char,
            text,
            line,
            col,
        },
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut kind = TokKind::Int;
    // Leading digits (any radix prefix is consumed by the alnum run).
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            // Exponent sign: 1e-5 / 2.5E+3.
            text.push(ch);
            cur.bump();
            if (ch == 'e' || ch == 'E')
                && !text.starts_with("0x")
                && matches!(cur.peek(0), Some('+') | Some('-'))
            {
                kind = TokKind::Float;
                text.push(cur.bump().unwrap_or('+'));
            }
        } else if ch == '.' {
            // `0..7` is two tokens; `1.5` continues the literal.
            match cur.peek(1) {
                Some(next) if next.is_ascii_digit() => {
                    kind = TokKind::Float;
                    text.push('.');
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    Token {
        kind,
        text,
        line,
        col,
    }
}

/// Matches the `]` closing the attribute whose `[` is at `open`, and
/// reports whether the attribute is a `#[cfg(test)]`-style gate (a `cfg`
/// containing `test` not negated by `not(...)`).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut cfg_test = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, cfg_test);
            }
        } else if t.is_ident("cfg") {
            is_cfg = true;
        } else if is_cfg && t.is_ident("test") {
            // Reject `not(test)`: look back for `not (` immediately before.
            let negated = i >= 2 && tokens[i - 1].is_punct('(') && tokens[i - 2].is_ident("not");
            if !negated {
                cfg_test = true;
            }
        }
        i += 1;
    }
    (tokens.len(), cfg_test)
}

/// Line ranges (inclusive) of items gated behind `#[cfg(test)]`.
///
/// The scan is token-based: after a `#[cfg(test)]` attribute (and any
/// further attributes) the next braced block is taken as the item body.
/// An attribute followed by `;` before any `{` (e.g. `mod tests;`)
/// contributes no region.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let (mut j, cfg_test) = scan_attr(tokens, i + 1);
            if cfg_test {
                // Skip any further attributes.
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    let (next, _) = scan_attr(tokens, j + 1);
                    j = next;
                }
                // Find the item body.
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < tokens.len() {
                        if tokens[k].is_punct('{') {
                            depth += 1;
                        } else if tokens[k].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    let end = tokens.get(k).map_or(u32::MAX, |t| t.line);
                    regions.push((tokens[i].line, end));
                    i = k + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Is `line` inside any of the `regions` from [`test_regions`]?
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_positions() {
        let l = lex("let x = a.b();\nfoo");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "b", "(", ")", ";", "foo"]
        );
        assert_eq!(l.tokens[9].line, 2);
        assert_eq!(l.tokens[9].col, 1);
    }

    #[test]
    fn comments_are_separated() {
        let l = lex("a // trailing HashMap\n/* block\nunwrap() */ b");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"x("unwrap() HashMap", 'a', b"panic!")"#);
        assert!(l
            .tokens
            .iter()
            .all(|t| !t.text.contains("unwrap") || t.kind == TokKind::Str));
        let kinds: Vec<TokKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Str));
        assert!(kinds.contains(&TokKind::Char));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex("r#\"has \"quotes\" inside\"# r#match");
        assert_eq!(l.tokens[0].kind, TokKind::Str);
        assert!(l.tokens[1].is_ident("match"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("0..7 1.5 0x1f_u32 2e-5");
        let kinds: Vec<(TokKind, &str)> =
            l.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert_eq!(kinds[0], (TokKind::Int, "0"));
        assert_eq!(kinds[1], (TokKind::Punct, "."));
        assert_eq!(kinds[2], (TokKind::Punct, "."));
        assert_eq!(kinds[3], (TokKind::Int, "7"));
        assert_eq!(kinds[4], (TokKind::Float, "1.5"));
        assert_eq!(kinds[5], (TokKind::Int, "0x1f_u32"));
        assert_eq!(kinds[6], (TokKind::Float, "2e-5"));
    }

    #[test]
    fn cfg_test_regions_cover_test_mods() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn b() {}\n\
                   }\n\
                   fn c() {}\n";
        let l = lex(src);
        let regions = test_regions(&l.tokens);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, 3));
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let l = lex("#[cfg(not(test))]\nmod prod { fn b() {} }");
        assert!(test_regions(&l.tokens).is_empty());
    }

    #[test]
    fn cfg_test_on_declaration_only_is_ignored() {
        let l = lex("#[cfg(test)]\nmod tests;\nfn c() {}");
        assert!(test_regions(&l.tokens).is_empty());
    }
}
