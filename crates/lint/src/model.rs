//! The workspace model: symbol table and call graph over every crate.
//!
//! [`Workspace::build`] lexes and parses a set of files (in practice all
//! `crates/*/src/**/*.rs`) into one flat function table, then extracts
//! call sites and panic sites from every body. Name resolution is
//! deliberately conservative in the over-approximating direction:
//!
//! * `recv.method(...)` links to **every** workspace method named
//!   `method` (receiver types are unknowable at token level);
//! * `Type::method(...)` links to the methods of `impl Type` blocks; if
//!   the qualifier instead names a module or a workspace crate
//!   (`parallel::sweep`, `ldis_mem::stable_id`), it links to the free
//!   functions of that module/crate;
//! * `free(...)` links to same-file functions first, then same-crate free
//!   functions, then (covering `use other_crate::free`) every free
//!   function of that name in the workspace.
//!
//! Unresolved names (std, core, alloc) are assumed panic-free — the same
//! stance the token-level P1 rule takes. Over-approximation can produce
//! spurious reachability, never missed reachability, which is the right
//! polarity for a panic-freedom proof.

use crate::lexer::{self, Token};
use crate::parser::{self, FnItem};
use crate::rules::AllowIndex;
use std::collections::BTreeMap;
use std::ops::Range;

/// Index of a function in [`Workspace::fns`].
pub type FnId = usize;

/// One source file in the model.
pub struct ModelFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The crate directory name (`crates/<name>/...`), or the first path
    /// segment for out-of-crate files.
    pub krate: String,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Source lines (owned; the model outlives the source strings).
    pub lines: Vec<String>,
    /// Waiver-comment index.
    pub allows: AllowIndex,
    /// `#[cfg(test)]` line ranges.
    pub test_regions: Vec<(u32, u32)>,
}

impl ModelFile {
    /// The source line `line` (1-based), for snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Is `line` inside a `#[cfg(test)]` region?
    pub fn in_tests(&self, line: u32) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }
}

/// One function in the workspace table.
pub struct FnInfo {
    /// File the function lives in.
    pub file: usize,
    /// Parsed item (name, qual, params, body range, position).
    pub item: FnItem,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq)]
pub enum Callee {
    /// `recv.name(...)`
    Method(String),
    /// `Qual::name(...)`
    Path(String, String),
    /// `name(...)`
    Bare(String),
}

impl Callee {
    /// The callee's bare name.
    pub fn name(&self) -> &str {
        match self {
            Callee::Method(n) | Callee::Bare(n) => n,
            Callee::Path(_, n) => n,
        }
    }
}

/// One call site inside a function body.
pub struct CallSite {
    /// How the callee is named.
    pub callee: Callee,
    /// Resolved workspace targets (empty for std/external calls).
    pub targets: Vec<FnId>,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Token index of the callee name (for argument inspection).
    pub tok: usize,
}

/// One panic site (`.unwrap()`, `.expect(`, `panic!`-family) inside a
/// function body.
pub struct PanicSite {
    /// What panics, as written (`.unwrap()`, `panic!`, ...).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The parsed workspace: files, functions, and per-function call/panic
/// sites.
pub struct Workspace {
    /// All files, in the order given to [`Workspace::build`].
    pub files: Vec<ModelFile>,
    /// All functions across all files.
    pub fns: Vec<FnInfo>,
    /// Call sites per function (indexed by [`FnId`]).
    pub calls: Vec<Vec<CallSite>>,
    /// Panic sites per function (indexed by [`FnId`]).
    pub panics: Vec<Vec<PanicSite>>,
    by_method: BTreeMap<String, Vec<FnId>>,
    by_qual: BTreeMap<String, Vec<FnId>>,
    by_free: BTreeMap<String, Vec<FnId>>,
}

/// The crate directory name for a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or_else(|| rel.split('/').next().unwrap_or(rel))
        .to_string()
}

/// Maps a crate *package* alias to its directory name: `ldis_mem` →
/// `mem`, `ldis_distill` → `core` (the one package whose name and
/// directory differ). Returns the input unchanged when no alias matches.
fn unalias_crate(name: &str) -> &str {
    match name {
        "ldis_distill" => "core",
        _ => name.strip_prefix("ldis_").unwrap_or(name),
    }
}

impl Workspace {
    /// Lexes, parses and cross-links `files` (pairs of workspace-relative
    /// path and source text).
    pub fn build(files: &[(String, String)]) -> Workspace {
        let mut model_files = Vec::with_capacity(files.len());
        let mut fns: Vec<FnInfo> = Vec::new();
        for (idx, (path, src)) in files.iter().enumerate() {
            let lexed = lexer::lex(src);
            let parsed = parser::parse(&lexed.tokens);
            let test_regions = lexer::test_regions(&lexed.tokens);
            for item in parsed.fns {
                let in_test = lexer::in_regions(&test_regions, item.line);
                fns.push(FnInfo {
                    file: idx,
                    item,
                    in_test,
                });
            }
            model_files.push(ModelFile {
                path: path.clone(),
                krate: crate_of(path),
                allows: AllowIndex::build(&lexed.comments),
                test_regions,
                lines: src.lines().map(str::to_string).collect(),
                tokens: lexed.tokens,
            });
        }

        let mut by_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.item.is_method {
                by_method.entry(f.item.name.clone()).or_default().push(id);
                by_qual.entry(f.item.qual.clone()).or_default().push(id);
            } else {
                by_free.entry(f.item.name.clone()).or_default().push(id);
            }
        }

        let mut ws = Workspace {
            files: model_files,
            fns,
            calls: Vec::new(),
            panics: Vec::new(),
            by_method,
            by_qual,
            by_free,
        };
        for id in 0..ws.fns.len() {
            let (calls, panics) = ws.extract_sites(id);
            ws.calls.push(calls);
            ws.panics.push(panics);
        }
        ws
    }

    /// The token ranges of `fn_id`'s body that belong to *it*, excluding
    /// nested fn items (their sites are attributed to themselves).
    fn own_ranges(&self, fn_id: FnId) -> Vec<Range<usize>> {
        let f = &self.fns[fn_id];
        let body = f.item.body.clone();
        let mut holes: Vec<Range<usize>> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(other, o)| {
                *other != fn_id
                    && o.file == f.file
                    && o.item.span.start >= body.start
                    && o.item.span.end <= body.end
            })
            .map(|(_, o)| o.item.span.clone())
            .collect();
        holes.sort_by_key(|r| r.start);
        let mut ranges = Vec::new();
        let mut cursor = body.start;
        for h in holes {
            if h.start > cursor {
                ranges.push(cursor..h.start);
            }
            cursor = cursor.max(h.end);
        }
        if cursor < body.end {
            ranges.push(cursor..body.end);
        }
        ranges
    }

    fn extract_sites(&self, fn_id: FnId) -> (Vec<CallSite>, Vec<PanicSite>) {
        let f = &self.fns[fn_id];
        let file = &self.files[f.file];
        let toks = &file.tokens;
        let mut calls = Vec::new();
        let mut panics = Vec::new();
        for range in self.own_ranges(fn_id) {
            for i in range.clone() {
                let t = &toks[i];
                if t.kind != lexer::TokKind::Ident {
                    continue;
                }
                // Panic macros.
                if PANIC_MACROS.iter().any(|m| t.is_ident(m))
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    panics.push(PanicSite {
                        what: format!("{}!", t.text),
                        line: t.line,
                        col: t.col,
                    });
                    continue;
                }
                // `.unwrap()` / `.expect(`.
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    panics.push(PanicSite {
                        what: format!(".{}()", t.text),
                        line: t.line,
                        col: t.col,
                    });
                    continue;
                }
                // Call sites: `ident (`.
                if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    continue;
                }
                if CALL_KEYWORDS.iter().any(|k| t.is_ident(k)) {
                    continue;
                }
                let callee = if i > 0 && toks[i - 1].is_punct('.') {
                    Callee::Method(t.text.clone())
                } else if i > 1 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    match toks.get(i.wrapping_sub(3)) {
                        Some(q) if q.kind == lexer::TokKind::Ident => {
                            Callee::Path(q.text.clone(), t.text.clone())
                        }
                        _ => Callee::Bare(t.text.clone()),
                    }
                } else {
                    Callee::Bare(t.text.clone())
                };
                let targets = self.resolve(&callee, f.file);
                calls.push(CallSite {
                    callee,
                    targets,
                    line: t.line,
                    col: t.col,
                    tok: i,
                });
            }
        }
        (calls, panics)
    }

    /// Resolves a callee name to workspace functions (see module docs for
    /// the strategy). The result is sorted and deduplicated.
    pub fn resolve(&self, callee: &Callee, from_file: usize) -> Vec<FnId> {
        let mut out: Vec<FnId> = match callee {
            Callee::Method(name) => self.by_method.get(name).cloned().unwrap_or_default(),
            Callee::Path(qual, name) => {
                if let Some(ids) = self.by_qual.get(&format!("{qual}::{name}")) {
                    ids.clone()
                } else {
                    // Module- or crate-qualified free function: keep free
                    // fns whose file lives in the module/crate the
                    // qualifier names.
                    let target_crate = unalias_crate(qual);
                    let qual_marker_mod = format!("/{qual}.rs");
                    let qual_marker_dir = format!("/{qual}/");
                    self.by_free
                        .get(name)
                        .into_iter()
                        .flatten()
                        .copied()
                        .filter(|&id| {
                            let file = &self.files[self.fns[id].file];
                            file.krate == target_crate
                                || file.path.ends_with(&qual_marker_mod)
                                || file.path.contains(&qual_marker_dir)
                                || (qual == "self" || qual == "crate")
                                    && file.krate == self.files[from_file].krate
                        })
                        .collect()
                }
            }
            Callee::Bare(name) => {
                let Some(all) = self.by_free.get(name) else {
                    return Vec::new();
                };
                let same_file: Vec<FnId> = all
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].file == from_file)
                    .collect();
                if !same_file.is_empty() {
                    same_file
                } else {
                    let krate = &self.files[from_file].krate;
                    let same_crate: Vec<FnId> = all
                        .iter()
                        .copied()
                        .filter(|&id| &self.files[self.fns[id].file].krate == krate)
                        .collect();
                    if same_crate.is_empty() {
                        all.clone() // `use other::free` — over-approximate
                    } else {
                        same_crate
                    }
                }
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A short human-readable label for a function: `qual (path:line)`.
    pub fn label(&self, id: FnId) -> String {
        let f = &self.fns[id];
        format!(
            "{} ({}:{})",
            f.item.qual, self.files[f.file].path, f.item.line
        )
    }

    /// Renders the call graph as stable text, one block per function in
    /// (path, line) order — the format pinned by the snapshot test.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut order: Vec<FnId> = (0..self.fns.len()).collect();
        order.sort_by_key(|&id| {
            let f = &self.fns[id];
            (self.files[f.file].path.clone(), f.item.line, f.item.col)
        });
        let mut s = String::new();
        for id in order {
            let f = &self.fns[id];
            let vis = if f.item.is_pub { "pub " } else { "" };
            let test = if f.in_test { " [test]" } else { "" };
            let _ = writeln!(s, "{vis}fn {}{test}", self.label(id));
            for p in &self.panics[id] {
                let _ = writeln!(s, "  ! {} @{}:{}", p.what, p.line, p.col);
            }
            for c in &self.calls[id] {
                if c.targets.is_empty() {
                    continue; // std/external: not part of the graph
                }
                let mut names: Vec<String> = c.targets.iter().map(|&t| self.label(t)).collect();
                names.sort();
                let _ = writeln!(
                    s,
                    "  -> {} @{}:{} => {}",
                    c.callee.name(),
                    c.line,
                    c.col,
                    names.join(", ")
                );
            }
        }
        s
    }
}

/// Macros whose expansion aborts the simulation.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "in", "as", "move", "loop", "else", "await", "box",
    "dyn", "impl", "fn", "where", "mut", "ref", "use", "pub", "crate", "super", "self", "Self",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        Workspace::build(&owned)
    }

    #[test]
    fn bare_calls_resolve_same_file_first() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\npub fn entry() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let entry = w.fns.iter().position(|f| f.item.name == "entry").unwrap();
        assert_eq!(w.calls[entry].len(), 1);
        assert_eq!(w.calls[entry][0].targets.len(), 1);
        let target = w.calls[entry][0].targets[0];
        assert_eq!(w.files[w.fns[target].file].path, "crates/a/src/lib.rs");
    }

    #[test]
    fn method_calls_over_approximate_across_types() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { pub fn go(&self) {} }\n\
             impl B { pub fn go(&self) {} }\n\
             pub fn entry(a: &A) { a.go(); }\n",
        )]);
        let entry = w.fns.iter().position(|f| f.item.name == "entry").unwrap();
        assert_eq!(w.calls[entry][0].targets.len(), 2, "both go() impls link");
    }

    #[test]
    fn path_calls_resolve_methods_and_crate_frees() {
        let w = ws(&[
            (
                "crates/mem/src/rng.rs",
                "pub struct SimRng;\nimpl SimRng { pub fn derive(&self) {} }\npub fn stable_id() {}\n",
            ),
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { SimRng::derive(); ldis_mem::stable_id(); std::mem::take(); }\n",
            ),
        ]);
        let entry = w.fns.iter().position(|f| f.item.name == "entry").unwrap();
        let resolved: Vec<usize> = w.calls[entry].iter().map(|c| c.targets.len()).collect();
        assert_eq!(
            resolved,
            [1, 1, 0],
            "derive, stable_id resolve; std::mem::take does not"
        );
    }

    #[test]
    fn panic_sites_are_collected_per_fn() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn ok() -> u8 { 1 }\n\
             fn bad(v: Option<u8>) -> u8 { v.unwrap() }\n\
             fn worse() { panic!(\"x\"); }\n",
        )]);
        let by_name = |n: &str| w.fns.iter().position(|f| f.item.name == n).unwrap();
        assert!(w.panics[by_name("ok")].is_empty());
        assert_eq!(w.panics[by_name("bad")].len(), 1);
        assert_eq!(w.panics[by_name("bad")][0].what, ".unwrap()");
        assert_eq!(w.panics[by_name("worse")][0].what, "panic!");
    }

    #[test]
    fn nested_fn_sites_are_not_attributed_to_the_parent() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn outer() { fn inner(v: Option<u8>) -> u8 { v.unwrap() } inner(None); }\n",
        )]);
        let outer = w.fns.iter().position(|f| f.item.name == "outer").unwrap();
        let inner = w.fns.iter().position(|f| f.item.name == "inner").unwrap();
        assert!(w.panics[outer].is_empty());
        assert_eq!(w.panics[inner].len(), 1);
        assert_eq!(w.calls[outer].len(), 1, "outer calls inner");
        assert_eq!(w.calls[outer][0].targets, vec![inner]);
    }

    #[test]
    fn render_is_stable_and_labelled() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn helper(v: Option<u8>) -> u8 { v.unwrap() }\npub fn entry() { helper(None); }\n",
        )]);
        let text = w.render();
        assert!(text.contains("fn helper (crates/a/src/lib.rs:1)"));
        assert!(text.contains("! .unwrap() @1:"));
        assert!(text.contains("pub fn entry (crates/a/src/lib.rs:2)"));
        assert!(text.contains("-> helper @2:"));
    }
}
