//! Per-function control-flow graphs at statement granularity.
//!
//! [`Cfg::build`] turns a function-body token range (from
//! [`crate::parser::FnItem::body`]) into a graph of statement nodes with
//! branch, loop and match edges — the substrate the flow-sensitive rules
//! (S1 seed provenance, and anything after it) solve dataflow over via
//! [`crate::dataflow`].
//!
//! The builder follows the same loss-tolerance contract as the item
//! parser: syntax it does not model (`?` early exits, labeled breaks,
//! `if let` chains with struct literals in the scrutinee) degrades to a
//! coarser but still connected graph, never a panic. Over-connecting is
//! acceptable — a may-analysis gets extra paths, a must-analysis gets
//! weaker facts — while silently dropping real edges would not be, so
//! every construct keeps at least its fall-through edge.
//!
//! Granularity: one node per statement. An expression statement with an
//! embedded block (`let x = if c { a } else { b };`) is a single node —
//! the dataflow rules only need statement-level kill/gen, and the
//! committed CFG snapshot stays readable.

use crate::lexer::{TokKind, Token};
use std::ops::Range;

/// Index of a node in [`Cfg::nodes`].
pub type NodeId = usize;

/// What a CFG node models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Synthetic function entry (empty span).
    Entry,
    /// Synthetic function exit (empty span); `return` edges here.
    Exit,
    /// One straight-line statement.
    Stmt,
    /// An `if`/`if let` condition; successors are the branch heads.
    Cond,
    /// A `while`/`for`/`loop` header; the back edge returns here.
    Loop,
    /// A `match` scrutinee; one successor per arm.
    Match,
    /// Synthetic merge point after a branch/loop/match (empty span).
    Join,
}

impl NodeKind {
    fn describe(self) -> &'static str {
        match self {
            NodeKind::Entry => "entry",
            NodeKind::Exit => "exit",
            NodeKind::Stmt => "stmt",
            NodeKind::Cond => "cond",
            NodeKind::Loop => "loop",
            NodeKind::Match => "match",
            NodeKind::Join => "join",
        }
    }
}

/// One node of a function CFG.
#[derive(Clone, Debug)]
pub struct Node {
    /// What the node models.
    pub kind: NodeKind,
    /// Token range of the statement/header (empty for synthetic nodes).
    /// Node spans never overlap: every token belongs to at most one node.
    pub span: Range<usize>,
    /// 1-based source line of the first token (0 for synthetic nodes).
    pub line: u32,
    /// Successor nodes.
    pub succs: Vec<NodeId>,
    /// Predecessor nodes.
    pub preds: Vec<NodeId>,
}

/// A per-function control-flow graph.
pub struct Cfg {
    /// All nodes; `entry` and `exit` are always present.
    pub nodes: Vec<Node>,
    /// The synthetic entry node.
    pub entry: NodeId,
    /// The synthetic exit node.
    pub exit: NodeId,
    /// Non-empty spans sorted by start, for [`Cfg::node_at`].
    spans: Vec<(usize, usize, NodeId)>,
}

/// Item keywords that open a nested item at statement position; their
/// bodies belong to the nested item's own CFG, not this one.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "macro_rules",
];

impl Cfg {
    /// Builds the CFG for one function body token range.
    pub fn build(toks: &[Token], body: Range<usize>) -> Cfg {
        let mut b = Builder {
            toks,
            nodes: Vec::new(),
            exit: 0,
            loops: Vec::new(),
        };
        let entry = b.node(NodeKind::Entry, body.start..body.start);
        let exit = b.node(NodeKind::Exit, body.end..body.end);
        b.exit = exit;
        let tail = b.block(body, Some(entry));
        if let Some(t) = tail {
            b.edge(t, exit);
        }
        let mut spans: Vec<(usize, usize, NodeId)> = b
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.span.is_empty())
            .map(|(id, n)| (n.span.start, n.span.end, id))
            .collect();
        spans.sort_unstable();
        Cfg {
            nodes: b.nodes,
            entry,
            exit,
            spans,
        }
    }

    /// The node whose span contains token index `tok`, if any. Brace
    /// tokens and synthetic-node positions belong to no node.
    pub fn node_at(&self, tok: usize) -> Option<NodeId> {
        // Spans are disjoint, so the candidate is the last span starting
        // at or before `tok`.
        let idx = self.spans.partition_point(|&(start, _, _)| start <= tok);
        let (start, end, id) = *self.spans.get(idx.checked_sub(1)?)?;
        (start <= tok && tok < end).then_some(id)
    }

    /// Renders the graph as stable text for the committed snapshot: one
    /// line per node with kind, source line, sorted successors and a
    /// short token preview.
    pub fn render(&self, toks: &[Token]) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (id, n) in self.nodes.iter().enumerate() {
            let mut succs = n.succs.clone();
            succs.sort_unstable();
            succs.dedup();
            let arrows = succs
                .iter()
                .map(|t| format!("n{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            let preview = toks[n.span.clone()]
                .iter()
                .take(8)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let ellipsis = if n.span.len() > 8 { " ..." } else { "" };
            let _ = writeln!(
                s,
                "  n{id} {} L{} -> [{arrows}] {preview}{ellipsis}",
                n.kind.describe(),
                n.line
            );
        }
        s
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    nodes: Vec<Node>,
    exit: NodeId,
    /// Innermost-last stack of `(continue target, break target)`.
    loops: Vec<(NodeId, NodeId)>,
}

impl<'a> Builder<'a> {
    fn node(&mut self, kind: NodeKind, span: Range<usize>) -> NodeId {
        let line = if span.is_empty() {
            0
        } else {
            self.toks.get(span.start).map_or(0, |t| t.line)
        };
        self.nodes.push(Node {
            kind,
            span,
            line,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
            self.nodes[to].preds.push(from);
        }
    }

    /// Connects `cur` to a fresh node and makes the fresh node current.
    fn step(&mut self, cur: Option<NodeId>, kind: NodeKind, span: Range<usize>) -> NodeId {
        let n = self.node(kind, span);
        if let Some(c) = cur {
            self.edge(c, n);
        }
        n
    }

    /// The index just past the `}` matching the `{` at `open`, clamped
    /// to `end`.
    fn brace_end(&self, open: usize, end: usize) -> usize {
        crate::parser::brace_end(self.toks, open).min(end)
    }

    /// First `{` at bracket depth 0 in `range` (for `if cond {`,
    /// `while cond {`, `match scrutinee {` headers).
    fn body_open(&self, range: Range<usize>) -> Option<usize> {
        let mut depth = 0i32;
        for i in range {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                return Some(i);
            } else if t.is_punct(';') && depth == 0 {
                return None; // runaway header: bail
            }
        }
        None
    }

    /// End of a plain statement starting at `start`: the index of the
    /// `;` at depth 0 (all brackets counted, so embedded block
    /// expressions are swallowed), or `end` for a trailing expression.
    fn stmt_end(&self, start: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return i;
            }
            i += 1;
        }
        end
    }

    /// Lowers the statements of one block range. `cur` is the node flow
    /// enters from (`None` when the block head is unreachable, e.g.
    /// after a `return`). Returns the node flow leaves from, or `None`
    /// when every path diverged.
    fn block(&mut self, range: Range<usize>, mut cur: Option<NodeId>) -> Option<NodeId> {
        let mut i = range.start;
        while i < range.end {
            let t = &self.toks[i];
            if t.is_punct(';') {
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                // Bare block: lower its statements in line.
                let end = self.brace_end(i, range.end);
                cur = self.block(i + 1..end.saturating_sub(1), cur);
                i = end;
                continue;
            }
            if t.kind == TokKind::Ident {
                if t.is_ident("unsafe") && self.toks.get(i + 1).is_some_and(|n| n.is_punct('{')) {
                    i += 1; // the `{` case above lowers the block
                    continue;
                }
                if ITEM_KEYWORDS.iter().any(|k| t.is_ident(k)) {
                    // Nested item: its body belongs to its own CFG.
                    i = self.skip_item(i, range.end);
                    continue;
                }
                if t.is_ident("if") {
                    let (tail, next) = self.lower_if(i, range.end, cur);
                    cur = tail;
                    i = next;
                    continue;
                }
                if t.is_ident("while") || t.is_ident("for") || t.is_ident("loop") {
                    let (tail, next) = self.lower_loop(i, range.end, cur);
                    cur = tail;
                    i = next;
                    continue;
                }
                if t.is_ident("match") {
                    if let Some((tail, next)) = self.lower_match(i, range.end, cur) {
                        cur = tail;
                        i = next;
                        continue;
                    }
                    // `match` header without a body: fall through to a
                    // plain statement so the tokens still get a node.
                }
                if t.is_ident("return") || t.is_ident("break") || t.is_ident("continue") {
                    let end = self.stmt_end(i, range.end);
                    let n = self.step(cur, NodeKind::Stmt, i..end);
                    let target = if t.is_ident("return") {
                        Some(self.exit)
                    } else if t.is_ident("break") {
                        self.loops.last().map(|&(_, after)| after)
                    } else {
                        self.loops.last().map(|&(head, _)| head)
                    };
                    self.edge(n, target.unwrap_or(self.exit));
                    cur = None;
                    i = end + 1;
                    continue;
                }
            }
            // Plain statement (covers `let`, expression statements, and a
            // trailing expression).
            let end = self.stmt_end(i, range.end);
            cur = Some(self.step(cur, NodeKind::Stmt, i..end));
            i = end + 1;
        }
        cur
    }

    /// Skips a nested item starting at its keyword: to the end of its
    /// braced body, or past its `;` for declarations.
    fn skip_item(&self, at: usize, end: usize) -> usize {
        let mut i = at;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('{') {
                return self.brace_end(i, end);
            }
            if t.is_punct(';') {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Lowers `if cond { .. } [else if .. | else { .. }]`. Returns the
    /// join node (always created; unreachable when all branches
    /// diverge) and the index to resume from.
    fn lower_if(&mut self, at: usize, end: usize, cur: Option<NodeId>) -> (Option<NodeId>, usize) {
        let Some(open) = self.body_open(at + 1..end) else {
            // Header never opened a body: degrade to a statement.
            let stmt_end = self.stmt_end(at, end);
            let n = self.step(cur, NodeKind::Stmt, at..stmt_end);
            return (Some(n), stmt_end + 1);
        };
        let cond = self.step(cur, NodeKind::Cond, at..open);
        let then_end = self.brace_end(open, end);
        let then_tail = self.block(open + 1..then_end.saturating_sub(1), Some(cond));
        let join = self.node(NodeKind::Join, then_end..then_end);
        if let Some(t) = then_tail {
            self.edge(t, join);
        }
        let mut next = then_end;
        if self.toks.get(then_end).is_some_and(|t| t.is_ident("else")) {
            let else_at = then_end + 1;
            if self.toks.get(else_at).is_some_and(|t| t.is_ident("if")) {
                // `else if`: the chained condition is the false branch.
                let (chain_tail, chain_next) = self.lower_if(else_at, end, Some(cond));
                if let Some(t) = chain_tail {
                    self.edge(t, join);
                }
                next = chain_next;
            } else if self.toks.get(else_at).is_some_and(|t| t.is_punct('{')) {
                let else_end = self.brace_end(else_at, end);
                let else_tail = self.block(else_at + 1..else_end.saturating_sub(1), Some(cond));
                if let Some(t) = else_tail {
                    self.edge(t, join);
                }
                next = else_end;
            } else {
                // Malformed else: keep the false edge.
                self.edge(cond, join);
                next = else_at;
            }
        } else {
            // No else: condition false falls through.
            self.edge(cond, join);
        }
        (Some(join), next)
    }

    /// Lowers `while cond { .. }`, `for pat in iter { .. }` and
    /// `loop { .. }`.
    fn lower_loop(
        &mut self,
        at: usize,
        end: usize,
        cur: Option<NodeId>,
    ) -> (Option<NodeId>, usize) {
        let is_bare_loop = self.toks[at].is_ident("loop");
        let Some(open) = self.body_open(at + 1..end) else {
            let stmt_end = self.stmt_end(at, end);
            let n = self.step(cur, NodeKind::Stmt, at..stmt_end);
            return (Some(n), stmt_end + 1);
        };
        let head = self.step(cur, NodeKind::Loop, at..open);
        let body_end = self.brace_end(open, end);
        let after = self.node(NodeKind::Join, body_end..body_end);
        self.loops.push((head, after));
        let body_tail = self.block(open + 1..body_end.saturating_sub(1), Some(head));
        self.loops.pop();
        if let Some(t) = body_tail {
            self.edge(t, head); // back edge
        }
        if !is_bare_loop {
            // `while`/`for` may run zero iterations; a bare `loop` only
            // leaves through its `break` edges.
            self.edge(head, after);
        }
        (Some(after), body_end)
    }

    /// Lowers `match scrutinee { pat => body, .. }`. Returns `None` when
    /// the header has no braced body (caller degrades to a statement).
    fn lower_match(
        &mut self,
        at: usize,
        end: usize,
        cur: Option<NodeId>,
    ) -> Option<(Option<NodeId>, usize)> {
        let open = self.body_open(at + 1..end)?;
        let head = self.step(cur, NodeKind::Match, at..open);
        let body_end = self.brace_end(open, end);
        let after = self.node(NodeKind::Join, body_end..body_end);
        let inner = open + 1..body_end.saturating_sub(1);
        let mut i = inner.start;
        while i < inner.end {
            // Find the arm's `=>` at depth 0 (pattern braces balance).
            let mut depth = 0i32;
            let mut arrow = None;
            let mut j = i;
            while j < inner.end {
                let t = &self.toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0
                    && t.is_punct('=')
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
                {
                    arrow = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let body_start = arrow + 2;
            let (body_range, next) = if self.toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
                let arm_end = self.brace_end(body_start, inner.end);
                (body_start + 1..arm_end.saturating_sub(1), arm_end)
            } else {
                let arm_end = self.stmt_end_comma(body_start, inner.end);
                (body_start..arm_end, arm_end)
            };
            let arm_tail = self.block(body_range, Some(head));
            if let Some(t) = arm_tail {
                self.edge(t, after);
            }
            i = next;
            while i < inner.end && self.toks[i].is_punct(',') {
                i += 1;
            }
        }
        Some((Some(after), body_end))
    }

    /// End of an expression match arm: the `,` at depth 0, or `limit`.
    fn stmt_end_comma(&self, start: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        let mut i = start;
        while i < limit {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                return i;
            }
            i += 1;
        }
        limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;

    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let lexed = lex(src);
        let parsed = parser::parse(&lexed.tokens);
        let body = parsed.fns[0].body.clone();
        let cfg = Cfg::build(&lexed.tokens, body);
        (lexed.tokens, cfg)
    }

    fn kinds(cfg: &Cfg) -> Vec<NodeKind> {
        cfg.nodes.iter().map(|n| n.kind).collect()
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = 2; a + b; }");
        assert_eq!(
            kinds(&cfg),
            [
                NodeKind::Entry,
                NodeKind::Exit,
                NodeKind::Stmt,
                NodeKind::Stmt,
                NodeKind::Stmt
            ]
        );
        assert_eq!(cfg.nodes[cfg.entry].succs, [2]);
        assert_eq!(cfg.nodes[2].succs, [3]);
        assert_eq!(cfg.nodes[3].succs, [4]);
        assert_eq!(cfg.nodes[4].succs, [cfg.exit]);
    }

    #[test]
    fn if_else_branches_and_joins() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { one(); } else { two(); } after(); }");
        let cond = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Cond)
            .unwrap();
        assert_eq!(cfg.nodes[cond].succs.len(), 2, "then and else heads");
        let join = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Join)
            .unwrap();
        assert_eq!(cfg.nodes[join].preds.len(), 2, "both branches merge");
        assert_eq!(cfg.nodes[join].succs.len(), 1, "join flows to after()");
    }

    #[test]
    fn if_without_else_keeps_the_false_edge() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { one(); } after(); }");
        let cond = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Cond)
            .unwrap();
        let join = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Join)
            .unwrap();
        assert!(
            cfg.nodes[cond].succs.contains(&join),
            "false path skips the then block"
        );
    }

    #[test]
    fn while_loop_has_back_edge_and_zero_iteration_exit() {
        let (_, cfg) = cfg_of("fn f(mut n: u32) { while n > 0 { n -= 1; } done(); }");
        let head = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Loop)
            .unwrap();
        let body = cfg
            .nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.kind == NodeKind::Stmt && n.preds.contains(&head))
            .map(|(id, _)| id)
            .unwrap();
        assert!(cfg.nodes[body].succs.contains(&head), "back edge");
        let after = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Join)
            .unwrap();
        assert!(
            cfg.nodes[head].succs.contains(&after),
            "zero-iteration path"
        );
    }

    #[test]
    fn bare_loop_only_exits_through_break() {
        let (_, cfg) = cfg_of("fn f() { loop { if done() { break; } step(); } after(); }");
        let head = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Loop)
            .unwrap();
        let loop_after = cfg.nodes[head]
            .succs
            .iter()
            .find(|&&s| cfg.nodes[s].kind == NodeKind::Join);
        assert!(loop_after.is_none(), "no zero-iteration edge on bare loop");
        let brk = cfg
            .nodes
            .iter()
            .position(|n| {
                n.kind == NodeKind::Stmt
                    && n.succs.iter().any(|&s| {
                        cfg.nodes[s].kind == NodeKind::Join && cfg.nodes[s].span.start > n.span.end
                    })
            })
            .expect("break edges to the loop's after-join");
        assert!(!cfg.nodes[brk].span.is_empty());
    }

    #[test]
    fn return_diverges_to_exit() {
        let (_, cfg) = cfg_of("fn f(c: bool) -> u32 { if c { return 1; } 2 }");
        let ret = cfg
            .nodes
            .iter()
            .position(|n| {
                n.kind == NodeKind::Stmt && n.succs == vec![cfg.exit] && n.span.len() == 2
            })
            .expect("return node edges only to exit");
        assert_eq!(cfg.nodes[ret].succs, [cfg.exit]);
    }

    #[test]
    fn match_fans_out_per_arm() {
        let (_, cfg) =
            cfg_of("fn f(x: u32) -> u32 { match x { 0 => zero(), 1 => { one() } _ => other(), } }");
        let head = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Match)
            .unwrap();
        assert_eq!(cfg.nodes[head].succs.len(), 3, "three arms");
        let join = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Join)
            .unwrap();
        assert_eq!(cfg.nodes[join].preds.len(), 3, "all arms merge");
    }

    #[test]
    fn nested_fn_bodies_are_not_lowered() {
        let (_, cfg) = cfg_of("fn f() { fn inner() { a(); b(); c(); } inner(); }");
        let stmts = cfg
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Stmt)
            .count();
        assert_eq!(stmts, 1, "only the inner() call belongs to f");
    }

    #[test]
    fn node_at_maps_tokens_to_their_statement() {
        let (toks, cfg) = cfg_of("fn f() { let a = 1; if a > 0 { b(); } }");
        let let_tok = toks.iter().position(|t| t.is_ident("a")).unwrap();
        let node = cfg.node_at(let_tok).unwrap();
        assert_eq!(cfg.nodes[node].kind, NodeKind::Stmt);
        let b_tok = toks.iter().position(|t| t.is_ident("b")).unwrap();
        let bn = cfg.node_at(b_tok).unwrap();
        assert_eq!(cfg.nodes[bn].kind, NodeKind::Stmt);
        assert_ne!(node, bn);
        assert_eq!(cfg.node_at(toks.len() + 5), None);
    }

    #[test]
    fn render_is_stable_and_readable() {
        let (toks, cfg) = cfg_of("fn f(c: bool) { if c { one(); } two(); }");
        let text = cfg.render(&toks);
        assert!(text.contains("n0 entry L0"));
        assert!(text.contains("cond"));
        assert!(text.contains("if c"));
        assert_eq!(text, cfg.render(&toks), "rendering is deterministic");
    }
}
