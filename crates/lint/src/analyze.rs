//! The interprocedural passes: P2 (panic-reachability), U1 (unit
//! safety) and D3 (float determinism), run over the workspace model
//! built by [`crate::model`].
//!
//! * **P2** proves every `pub fn` of the sim-core crates transitively
//!   panic-free. Panic *sources* are the same sites the token-level P1
//!   rule flags (`.unwrap()`, `.expect(`, `panic!`-family), minus
//!   `#[cfg(test)]` code, inline waivers, and the files whose panic
//!   contract is justified in `lint.toml`. Reachability runs over the
//!   conservative call graph; the diagnostic renders the shortest call
//!   path from the public entry point to the panic site.
//! * **U1** assigns *units* — byte address, 8 B word index, line
//!   address, set index — to integer-valued expressions from two
//!   provenance sources: `LineGeometry`/`CacheConfig` accessor chains
//!   (`geom.word_index(a).get()` is word-valued; `line.raw()` on a
//!   `LineAddr` is line-valued) and the workspace naming convention for
//!   integer parameters (`addr`, `line`, `word_idx`, `set_idx`). It
//!   flags cross-unit arithmetic, comparisons, raw indexing by a
//!   byte/line-valued integer, wrong-unit newtype construction, and
//!   call arguments whose unit contradicts every resolved callee.
//! * **D3** flags floating-point accumulation that merges parallel-sweep
//!   cell results outside the canonical-order merge: shared
//!   `Mutex<f64>`-style accumulators, and float `+=`/`sum::<f64>`
//!   reductions inside closures handed to `sweep`/`spawn`.

use crate::lexer::{TokKind, Token};
use crate::model::{Callee, FnId, Workspace};
use crate::report::Finding;
use crate::rules::Rule;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// Crates whose public API the paper's headline numbers rest on: P2
/// requires every `pub fn` here to be transitively panic-free.
pub const P2_CRATES: &[&str] = &["cache", "core", "compress", "sfp", "mem", "mrc", "timing"];

/// Configuration for the interprocedural pass.
#[derive(Default)]
pub struct AnalysisConfig {
    /// Files whose panic sites are justified by a `P1` (or `P2`) entry in
    /// `lint.toml`; their sites do not count as P2 panic sources.
    pub justified_panic_paths: BTreeSet<String>,
}

impl AnalysisConfig {
    /// Derives the justified-path set from a parsed baseline.
    pub fn from_baseline(baseline: &crate::report::Baseline) -> Self {
        AnalysisConfig {
            justified_panic_paths: baseline
                .allows
                .iter()
                .filter(|a| a.rule == "P1" || a.rule == "P2")
                .map(|a| a.path.clone())
                .collect(),
        }
    }
}

/// Runs all interprocedural rules over `files` (pairs of
/// workspace-relative path and source text).
pub fn scan_model(files: &[(String, String)], cfg: &AnalysisConfig) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();
    p2(&ws, cfg, &mut findings);
    u1(&ws, &mut findings);
    d3(&ws, &mut findings);
    findings
}

fn finding(
    ws: &Workspace,
    rule: Rule,
    file: usize,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule: rule.id(),
        level: rule.level(),
        path: ws.files[file].path.clone(),
        line,
        col,
        message,
        snippet: ws.files[file].snippet(line),
    }
}

// --- P2: interprocedural panic-reachability ------------------------------

/// Is this file's code held to the no-panic contract? Mirrors the P1
/// scope: sim-crate sources and experiments library sources.
fn in_panic_scope(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let Some((krate, sub)) = rest.split_once('/') else {
        return false;
    };
    (crate::SIM_CRATES.contains(&krate) && sub.starts_with("src/"))
        || (krate == "experiments" && sub.starts_with("src/") && !sub.starts_with("src/bin/"))
}

fn p2(ws: &Workspace, cfg: &AnalysisConfig, findings: &mut Vec<Finding>) {
    // Which functions contain a live (unjustified) panic site?
    let live_panic: Vec<bool> = (0..ws.fns.len())
        .map(|id| {
            let f = &ws.fns[id];
            let file = &ws.files[f.file];
            if f.in_test
                || !in_panic_scope(&file.path)
                || cfg.justified_panic_paths.contains(&file.path)
            {
                return false;
            }
            ws.panics[id].iter().any(|p| {
                !file.allows.allows(Rule::P1, p.line) && !file.allows.allows(Rule::P2, p.line)
            })
        })
        .collect();

    // Entry points: public functions of the sim-core crates, plus the
    // crash-safe executor — a quarantine layer that panics is worse than
    // no quarantine layer at all.
    for entry in 0..ws.fns.len() {
        let f = &ws.fns[entry];
        let file = &ws.files[f.file];
        let Some(rest) = file.path.strip_prefix("crates/") else {
            continue;
        };
        let Some((krate, sub)) = rest.split_once('/') else {
            continue;
        };
        let core_entry = P2_CRATES.contains(&krate) && sub.starts_with("src/");
        let exec_entry = krate == "experiments" && sub.starts_with("src/exec");
        if !core_entry && !exec_entry {
            continue;
        }
        if !f.item.is_pub || f.in_test || file.allows.allows(Rule::P2, f.item.line) {
            continue;
        }
        if let Some(path) = shortest_panic_path(ws, entry, &live_panic) {
            let hops: Vec<String> = path.iter().map(|&id| ws.label(id)).collect();
            let last = *path.last().unwrap_or(&entry);
            let site = ws.panics[last]
                .iter()
                .find(|p| {
                    let lf = &ws.files[ws.fns[last].file];
                    !lf.allows.allows(Rule::P1, p.line) && !lf.allows.allows(Rule::P2, p.line)
                })
                .map(|p| {
                    format!(
                        "`{}` at {}:{}",
                        p.what, ws.files[ws.fns[last].file].path, p.line
                    )
                })
                .unwrap_or_else(|| "a panic site".to_string());
            findings.push(finding(
                ws,
                Rule::P2,
                f.file,
                f.item.line,
                f.item.col,
                format!(
                    "public `{}` can reach a panic: {} -> {}",
                    f.item.qual,
                    hops.join(" -> "),
                    site
                ),
            ));
        }
    }
}

/// BFS over the call graph from `entry`; returns the shortest path (as
/// function ids, entry first) to a function with a live panic site.
fn shortest_panic_path(ws: &Workspace, entry: FnId, live_panic: &[bool]) -> Option<Vec<FnId>> {
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut seen: BTreeSet<FnId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(entry);
    queue.push_back(entry);
    while let Some(id) = queue.pop_front() {
        if live_panic[id] {
            let mut path = vec![id];
            let mut cur = id;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for call in &ws.calls[id] {
            for &t in &call.targets {
                if seen.insert(t) {
                    parent.insert(t, id);
                    queue.push_back(t);
                }
            }
        }
    }
    None
}

// --- U1: unit safety ------------------------------------------------------

/// The unit of an integer-valued expression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Unit {
    /// A byte address in the simulated physical address space.
    Byte,
    /// A word index within a line (0..words_per_line).
    Word,
    /// A line address (byte address / line size).
    Line,
    /// A set index (line address masked to 0..num_sets).
    Set,
}

impl Unit {
    fn describe(self) -> &'static str {
        match self {
            Unit::Byte => "byte-address",
            Unit::Word => "word-index",
            Unit::Line => "line-address",
            Unit::Set => "set-index",
        }
    }
}

/// What the operand tracker knows about a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tracked {
    /// A unit-bearing newtype (`Addr`, `LineAddr`, `WordIndex`): safe by
    /// construction until `.raw()`/`.get()` unwraps it.
    Typed(Newtype),
    /// A bare integer carrying a unit.
    Int(Unit),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Newtype {
    Addr,
    LineAddr,
    WordIndex,
}

impl Newtype {
    fn unit(self) -> Unit {
        match self {
            Newtype::Addr => Unit::Byte,
            Newtype::LineAddr => Unit::Line,
            Newtype::WordIndex => Unit::Word,
        }
    }

    fn of_type_name(name: &str) -> Option<Newtype> {
        match name {
            "Addr" => Some(Newtype::Addr),
            "LineAddr" => Some(Newtype::LineAddr),
            "WordIndex" => Some(Newtype::WordIndex),
            _ => None,
        }
    }
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Unit implied by an identifier per the workspace naming convention.
/// Matches whole `_`-separated parts, so `offset` never matches `set`.
pub fn name_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    let parts: Vec<&str> = lower.split('_').collect();
    let has = |p: &str| parts.contains(&p);
    if has("word") && (has("idx") || has("index") || has("i")) || lower == "widx" {
        return Some(Unit::Word);
    }
    if has("set") && (has("idx") || has("index")) {
        return Some(Unit::Set);
    }
    if has("line") {
        return Some(Unit::Line);
    }
    if has("addr") || has("address") || has("byte") {
        return Some(Unit::Byte);
    }
    None
}

/// Is U1 in force for this path? Sim-crate sources only: that is where
/// the address algebra lives; experiments code consumes reports, not
/// addresses.
fn in_unit_scope(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let Some((krate, sub)) = rest.split_once('/') else {
        return false;
    };
    crate::SIM_CRATES.contains(&krate) && sub.starts_with("src/")
}

/// Per-function variable table: name → tracked provenance.
type VarMap = BTreeMap<String, Tracked>;

fn u1(ws: &Workspace, findings: &mut Vec<Finding>) {
    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        if !in_unit_scope(&file.path) || f.in_test {
            continue;
        }
        let toks = &file.tokens;
        let mut vars = VarMap::new();
        for p in &f.item.params {
            let ty_last = p.ty.rsplit(' ').next().unwrap_or(&p.ty);
            if let Some(nt) = Newtype::of_type_name(ty_last) {
                vars.insert(p.name.clone(), Tracked::Typed(nt));
            } else if INT_TYPES.contains(&ty_last) {
                if let Some(u) = name_unit(&p.name) {
                    vars.insert(p.name.clone(), Tracked::Int(u));
                }
            }
        }
        let body = f.item.body.clone();
        collect_lets(toks, body.clone(), &mut vars);
        check_body(ws, id, &vars, findings);
    }
}

/// Walks a body once, recording `let` bindings whose declared type or
/// initializer has known provenance. Shadowing keeps the latest binding;
/// that is the reaching definition for everything after it, which is the
/// only place the checks look.
fn collect_lets(toks: &[Token], body: Range<usize>, vars: &mut VarMap) {
    let mut i = body.start;
    while i < body.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let name = name_tok.text.clone();
        j += 1;
        // Optional `: Type`.
        let mut declared: Option<Tracked> = None;
        if toks.get(j).is_some_and(|t| t.is_punct(':')) {
            let ty_start = j + 1;
            let mut k = ty_start;
            while k < body.end && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                k += 1;
            }
            if let Some(last_ident) = toks[ty_start..k]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
            {
                if let Some(nt) = Newtype::of_type_name(&last_ident.text) {
                    declared = Some(Tracked::Typed(nt));
                } else if INT_TYPES.contains(&last_ident.text.as_str()) {
                    declared = name_unit(&name).map(Tracked::Int);
                }
            }
            j = k;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('=')) {
            i = j;
            continue;
        }
        // Initializer runs to the `;` at depth 0; bail on `{` (block
        // initializers are not simple operands anyway).
        let init_start = j + 1;
        let mut depth = 0i32;
        let mut k = init_start;
        let mut end = None;
        while k < body.end {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') {
                break;
            } else if depth == 0 && t.is_punct(';') {
                end = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(end) = end {
            let inferred = operand_unit(toks, init_start..end, vars);
            match declared.or(inferred) {
                Some(tr) => {
                    vars.insert(name, tr);
                }
                None => {
                    // Unknown provenance shadows any previous binding.
                    vars.remove(&name);
                }
            }
            i = end + 1;
        } else {
            if let Some(tr) = declared {
                vars.insert(name, tr);
            }
            i = k + 1;
        }
    }
}

/// Accessor methods that produce a known newtype regardless of receiver.
fn accessor_newtype(name: &str) -> Option<Newtype> {
    match name {
        "word_index" => Some(Newtype::WordIndex),
        "line_addr" => Some(Newtype::LineAddr),
        "line_base" | "word_base" => Some(Newtype::Addr),
        _ => None,
    }
}

/// The unit of a *simple operand*: an identifier or `Type::new(...)`
/// base followed by a method chain, with an optional trailing `as <int>`
/// cast. Anything else — literals, arithmetic, unknown methods — is
/// untracked (`None`), which keeps the rule quiet rather than clever.
fn operand_unit(toks: &[Token], range: Range<usize>, vars: &VarMap) -> Option<Tracked> {
    let mut end = range.end;
    // Strip `as <type ident>` suffixes (casts preserve units).
    while end >= range.start + 2
        && toks[end - 1].kind == TokKind::Ident
        && toks[end - 2].is_ident("as")
    {
        end -= 2;
    }
    if end <= range.start {
        return None;
    }
    let mut i = range.start;
    // Base: `ident`, `Type::new(...)` or `Type::default()`.
    let base_tok = &toks[i];
    if base_tok.kind != TokKind::Ident {
        return None;
    }
    let mut state: Option<Tracked>;
    if i + 1 < end && toks[i + 1].is_punct(':') {
        // `Type::method(...)` base.
        if i + 3 >= end || !toks[i + 2].is_punct(':') || toks[i + 3].kind != TokKind::Ident {
            return None;
        }
        let ty = Newtype::of_type_name(&base_tok.text);
        let method = &toks[i + 3].text;
        if i + 4 >= end || !toks[i + 4].is_punct('(') {
            return None;
        }
        let close = matching_close(toks, i + 4, end)?;
        state = match (ty, method.as_str()) {
            (Some(nt), "new") => Some(Tracked::Typed(nt)),
            _ => None,
        };
        state?;
        i = close + 1;
    } else {
        state = vars.get(&base_tok.text).copied();
        // An untracked base still matters when a chain follows: the chain
        // may establish provenance (`geom.word_index(a).get()`).
        i += 1;
    }
    // Method chain.
    while i < end {
        if !toks[i].is_punct('.') {
            return None; // not a simple operand
        }
        let name_tok = toks.get(i + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let method = name_tok.text.as_str();
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            // Field access: drop tracking but keep walking.
            state = None;
            i += 2;
            continue;
        }
        let close = matching_close(toks, i + 2, end)?;
        state = match method {
            m if accessor_newtype(m).is_some() => accessor_newtype(m).map(Tracked::Typed),
            "set_index" => Some(Tracked::Int(Unit::Set)),
            "raw" => match state {
                Some(Tracked::Typed(nt)) => Some(Tracked::Int(nt.unit())),
                _ => None,
            },
            "get" | "as_usize" => match state {
                Some(Tracked::Typed(Newtype::WordIndex)) => Some(Tracked::Int(Unit::Word)),
                Some(Tracked::Typed(_)) => None,
                other => other,
            },
            _ => None,
        };
        i = close + 1;
    }
    state
}

/// Index of the `)`/`]` matching the opener at `open`, bounded by `end`.
fn matching_close(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The largest simple operand ending at token index `end` (exclusive).
fn operand_before(toks: &[Token], end: usize) -> Option<Range<usize>> {
    let mut i = end;
    // Optional cast: `... as u64` — the cast's type ident sits at end-1.
    while i >= 2 && toks[i - 1].kind == TokKind::Ident && toks[i - 2].is_ident("as") {
        i -= 2;
    }
    let mut start = i;
    loop {
        if start == 0 {
            break;
        }
        let t = &toks[start - 1];
        if t.is_punct(')') || t.is_punct(']') {
            // Walk back over the balanced group.
            let mut depth = 0i32;
            let mut k = start - 1;
            loop {
                let t2 = &toks[k];
                if t2.is_punct(')') || t2.is_punct(']') {
                    depth += 1;
                } else if t2.is_punct('(') || t2.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            start = k;
            continue;
        }
        if t.kind == TokKind::Ident {
            start -= 1;
            // Keep going over `.` / `::` chains.
            if start >= 1 && toks[start - 1].is_punct('.') {
                start -= 1;
                continue;
            }
            if start >= 2 && toks[start - 1].is_punct(':') && toks[start - 2].is_punct(':') {
                start -= 2;
                continue;
            }
            break;
        }
        break;
    }
    (start < end).then_some(start..end)
}

/// The largest simple operand starting at token index `start`.
fn operand_after(toks: &[Token], start: usize, limit: usize) -> Option<Range<usize>> {
    let mut i = start;
    if i >= limit || toks[i].kind != TokKind::Ident {
        return None;
    }
    i += 1;
    loop {
        if i + 1 < limit && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
            if i + 2 < limit && toks[i + 2].kind == TokKind::Ident {
                i += 3;
                continue;
            }
            return None;
        }
        if i < limit && (toks[i].is_punct('(') || toks[i].is_punct('[')) {
            let close = matching_close(toks, i, limit)?;
            i = close + 1;
            continue;
        }
        if i + 1 < limit && toks[i].is_punct('.') && toks[i + 1].kind == TokKind::Ident {
            i += 2;
            continue;
        }
        if i + 1 < limit && toks[i].is_ident("as") {
            // handled by caller? no: `x as u64` — consume the cast.
            i += 1;
            continue;
        }
        break;
    }
    Some(start..i)
}

/// Binary operators U1 checks for cross-unit mixing. `(text, tokens)`
/// where tokens is how many `Punct` tokens the operator spans.
fn binary_op_at(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let t = &toks[i];
    let next = toks.get(i + 1);
    let is = |c: char| t.is_punct(c);
    let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
    if is('+') {
        return Some(if next_is('=') { ("+=", 2) } else { ("+", 1) });
    }
    if is('-') {
        if next_is('>') {
            return None;
        }
        return Some(if next_is('=') { ("-=", 2) } else { ("-", 1) });
    }
    if is('=') && next_is('=') {
        return Some(("==", 2));
    }
    if is('!') && next_is('=') {
        return Some(("!=", 2));
    }
    if is('<') {
        if next_is('<') {
            return None; // shifts change units legitimately
        }
        return Some(if next_is('=') { ("<=", 2) } else { ("<", 1) });
    }
    if is('>') {
        if next_is('>') {
            return None;
        }
        return Some(if next_is('=') { (">=", 2) } else { (">", 1) });
    }
    None
}

fn check_body(ws: &Workspace, id: FnId, vars: &VarMap, findings: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    let int_unit = |range: Range<usize>| -> Option<Unit> {
        match operand_unit(toks, range, vars) {
            Some(Tracked::Int(u)) => Some(u),
            _ => None,
        }
    };
    let body = f.item.body.clone();
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        let line = t.line;
        // 1. Cross-unit binary arithmetic / comparison.
        if t.kind == TokKind::Punct {
            if let Some((op, width)) = binary_op_at(toks, i) {
                // Binary use needs a left operand; unary minus and
                // pattern contexts have none.
                let binary = i > body.start
                    && (toks[i - 1].kind == TokKind::Ident
                        || toks[i - 1].is_punct(')')
                        || toks[i - 1].is_punct(']'));
                if binary {
                    let lhs = operand_before(toks, i).and_then(&int_unit);
                    let rhs = operand_after(toks, i + width, body.end).and_then(&int_unit);
                    if let (Some(a), Some(b)) = (lhs, rhs) {
                        if a != b && !file.allows.allows(Rule::U1, line) {
                            findings.push(finding(
                                ws,
                                Rule::U1,
                                f.file,
                                line,
                                t.col,
                                format!(
                                    "cross-unit `{op}`: {} value mixed with {} value without a geometry conversion",
                                    a.describe(),
                                    b.describe()
                                ),
                            ));
                        }
                    }
                    i += width;
                    continue;
                }
            }
            // 2. Raw indexing by a byte/line-valued integer.
            if t.is_punct('[') && i > body.start {
                let prev = &toks[i - 1];
                let indexes =
                    prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
                if indexes {
                    if let Some(close) = matching_close(toks, i, body.end) {
                        if let Some(u) = int_unit(i + 1..close) {
                            if matches!(u, Unit::Byte | Unit::Line)
                                && !file.allows.allows(Rule::U1, line)
                            {
                                findings.push(finding(
                                    ws,
                                    Rule::U1,
                                    f.file,
                                    line,
                                    t.col,
                                    format!(
                                        "indexing with a {} value; convert through the geometry (`word_index`/`set_index`) first",
                                        u.describe()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        // 3. Wrong-unit newtype construction: `Addr::new(line_valued)`.
        if t.kind == TokKind::Ident {
            if let Some(nt) = Newtype::of_type_name(&t.text) {
                if toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|x| x.is_ident("new"))
                    && toks.get(i + 4).is_some_and(|x| x.is_punct('('))
                {
                    if let Some(close) = matching_close(toks, i + 4, body.end) {
                        if let Some(u) = int_unit(i + 5..close) {
                            if u != nt.unit() && !file.allows.allows(Rule::U1, line) {
                                findings.push(finding(
                                    ws,
                                    Rule::U1,
                                    f.file,
                                    line,
                                    t.col,
                                    format!(
                                        "`{}::new` called with a {} value (expects a {} value); use the geometry conversion instead",
                                        t.text,
                                        u.describe(),
                                        nt.unit().describe()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // 4. Call arguments whose unit contradicts every resolved callee.
    for call in &ws.calls[id] {
        let Some((args, _)) = crate::rules::split_args(toks, call.tok + 1) else {
            continue;
        };
        if call.targets.is_empty() || file.allows.allows(Rule::U1, call.line) {
            continue;
        }
        for (k, arg) in args.iter().enumerate() {
            let Some(arg_unit) = int_unit(arg.clone()) else {
                continue;
            };
            // The call graph over-approximates: a method call resolves to
            // every same-name method in the workspace. Only flag when the
            // argument's unit contradicts EVERY candidate that has a
            // parameter in this position — a candidate whose parameter
            // carries no unit is compatible and vetoes the finding.
            let mut expected: BTreeSet<Unit> = BTreeSet::new();
            let mut param_name = String::new();
            let mut any_candidate = false;
            let mut compatible = false;
            for &target in &call.targets {
                let tf = &ws.fns[target];
                // UFCS method calls pass the receiver as argument 0.
                let shift =
                    usize::from(matches!(call.callee, Callee::Path(..)) && tf.item.has_self);
                let Some(p) = k.checked_sub(shift).and_then(|pk| tf.item.params.get(pk)) else {
                    continue;
                };
                any_candidate = true;
                let ty_last = p.ty.rsplit(' ').next().unwrap_or(&p.ty);
                match name_unit(&p.name).filter(|_| INT_TYPES.contains(&ty_last)) {
                    Some(u) if u != arg_unit => {
                        expected.insert(u);
                        param_name = p.name.clone();
                    }
                    _ => compatible = true,
                }
            }
            if any_candidate && !compatible && !expected.is_empty() {
                let wanted: Vec<&str> = expected.iter().map(|u| u.describe()).collect();
                findings.push(finding(
                    ws,
                    Rule::U1,
                    f.file,
                    call.line,
                    call.col,
                    format!(
                        "`{}` expects a {} value for `{param_name}`, got a {} value",
                        call.callee.name(),
                        wanted.join("/"),
                        arg_unit.describe()
                    ),
                ));
            }
        }
    }
}

// --- D3: float determinism ------------------------------------------------

/// Files D3 applies to: experiments library sources (minus the canonical
/// merge itself) and sim-crate sources.
fn in_d3_scope(path: &str) -> bool {
    if path == "crates/experiments/src/parallel.rs" {
        return false; // the canonical-order merge lives here
    }
    in_panic_scope(path)
}

/// Entry points whose closures run on worker threads: accumulating
/// floats inside them merges cells in completion order.
const D3_PARALLEL_CALLS: &[&str] = &["sweep", "sweep_with_threads", "spawn"];

fn d3(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (idx, file) in ws.files.iter().enumerate() {
        if !in_d3_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        // Float-typed let bindings, for the accumulation check.
        let float_vars = collect_float_vars(toks);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || file.in_tests(t.line) {
                continue;
            }
            // Shared float accumulators: Mutex<f64>, RwLock<f32>,
            // Mutex::new(0.0).
            if (t.is_ident("Mutex") || t.is_ident("RwLock"))
                && !file.allows.allows(Rule::D3, t.line)
            {
                let generic_float = toks.get(i + 1).is_some_and(|n| n.is_punct('<'))
                    && generic_contains_float(toks, i + 1);
                let ctor_float = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident("new"))
                    && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
                    && matching_close(toks, i + 4, toks.len())
                        .is_some_and(|c| toks[i + 5..c].iter().any(is_floatish));
                if generic_float || ctor_float {
                    findings.push(finding(
                        ws,
                        Rule::D3,
                        idx,
                        t.line,
                        t.col,
                        format!(
                            "shared `{}` over a float merges parallel cell results in completion order; collect per-cell results and reduce after the canonical-order merge (`parallel::sweep`)",
                            t.text
                        ),
                    ));
                }
                continue;
            }
            // Float accumulation inside a worker closure.
            if D3_PARALLEL_CALLS.iter().any(|c| t.is_ident(c))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                let Some(close) = matching_close(toks, i + 1, toks.len()) else {
                    continue;
                };
                scan_closure_accumulation(ws, idx, i + 2..close, &float_vars, findings);
            }
        }
    }
}

fn is_floatish(t: &Token) -> bool {
    t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32")
}

fn generic_contains_float(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[open..] {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return false;
        } else if is_floatish(t) {
            return true;
        }
    }
    false
}

/// Names of `let`-bound variables with float provenance (declared
/// `f64`/`f32` or initialized from a float literal).
fn collect_float_vars(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks[j].is_ident("mut") {
                j += 1;
            }
            if toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Look ahead to the end of the statement for float signs.
                let mut k = j + 1;
                let mut floaty = false;
                let mut depth = 0i32;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct('{') || (depth == 0 && t.is_punct(';')) {
                        break;
                    } else if is_floatish(t) {
                        floaty = true;
                    }
                    k += 1;
                }
                if floaty {
                    out.insert(name);
                }
            }
        }
        i += 1;
    }
    out
}

/// Flags float compound assignment and `sum::<f64>` reductions inside a
/// worker-closure token range.
fn scan_closure_accumulation(
    ws: &Workspace,
    file_idx: usize,
    range: Range<usize>,
    float_vars: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let file = &ws.files[file_idx];
    let toks = &file.tokens;
    // Only closures merge results in completion order; a plain
    // `sweep(&items, job)` where `job` is a named fn cannot capture an
    // accumulator. Require a `|` inside the args before flagging.
    if !toks[range.clone()].iter().any(|t| t.is_punct('|')) {
        return;
    }
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        // `lhs += rhs` (and -=, *=, /=) with float evidence on either side.
        if t.kind == TokKind::Punct
            && ["+", "-", "*", "/"].iter().any(|c| t.text == *c)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('='))
        {
            let lhs_float = operand_before(toks, i).is_some_and(|r| {
                toks[r.clone()].iter().any(|x| {
                    is_floatish(x)
                        || (x.kind == TokKind::Ident && float_vars.contains(&x.text))
                        || x.is_ident("lock")
                })
            });
            let rhs_float = {
                let mut k = i + 2;
                let mut found = false;
                let mut depth = 0i32;
                while k < range.end {
                    let x = &toks[k];
                    if x.is_punct('(') || x.is_punct('[') {
                        depth += 1;
                    } else if x.is_punct(')') || x.is_punct(']') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && (x.is_punct(';') || x.is_punct(',')) {
                        break;
                    } else if is_floatish(x)
                        || (x.kind == TokKind::Ident && float_vars.contains(&x.text))
                    {
                        found = true;
                    }
                    k += 1;
                }
                found
            };
            if (lhs_float || rhs_float)
                && !file.in_tests(t.line)
                && !file.allows.allows(Rule::D3, t.line)
            {
                findings.push(finding(
                    ws,
                    Rule::D3,
                    file_idx,
                    t.line,
                    t.col,
                    format!(
                        "float `{}=` inside a parallel worker closure accumulates cells in completion order; return the value and reduce after the canonical-order merge",
                        t.text
                    ),
                ));
            }
            i += 2;
            continue;
        }
        // `.sum::<f64>()` / `.product::<f32>()` inside the closure.
        if (t.is_ident("sum") || t.is_ident("product"))
            && i > range.start
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && generic_contains_float(toks, i + 3)
            && !file.in_tests(t.line)
            && !file.allows.allows(Rule::D3, t.line)
        {
            findings.push(finding(
                ws,
                Rule::D3,
                file_idx,
                t.line,
                t.col,
                format!(
                    "float `.{}()` reduction inside a parallel worker closure; reduce after the canonical-order merge",
                    t.text
                ),
            ));
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        scan_model(&owned, &AnalysisConfig::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn p2_reports_the_shortest_transitive_path() {
        let found = scan(&[(
            "crates/sfp/src/lib.rs",
            "fn deep(v: Option<u8>) -> u8 { v.unwrap() }\n\
             fn mid(v: Option<u8>) -> u8 { deep(v) }\n\
             pub fn entry(v: Option<u8>) -> u8 { mid(v) }\n",
        )]);
        let p2: Vec<&Finding> = found.iter().filter(|f| f.rule == "P2").collect();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].line, 3);
        assert!(p2[0].message.contains("entry (crates/sfp/src/lib.rs:3)"));
        assert!(p2[0].message.contains("mid (crates/sfp/src/lib.rs:2)"));
        assert!(p2[0].message.contains("deep (crates/sfp/src/lib.rs:1)"));
        assert!(p2[0]
            .message
            .contains("`.unwrap()` at crates/sfp/src/lib.rs:1"));
    }

    #[test]
    fn p2_respects_waivers_and_test_code() {
        let clean = scan(&[(
            "crates/sfp/src/lib.rs",
            "fn deep(v: Option<u8>) -> u8 { v.unwrap() } // ldis: allow(P1, \"guarded by caller\")\n\
             pub fn entry(v: Option<u8>) -> u8 { deep(v) }\n\
             #[cfg(test)]\n\
             mod tests { pub fn t(v: Option<u8>) -> u8 { v.unwrap() } }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "P2"), "{clean:?}");
    }

    #[test]
    fn p2_ignores_panics_outside_sim_core_entry_crates() {
        // A panic in the experiments crate is in panic scope, but only
        // sim-core pub fns are entry points; a pub fn in workloads (not a
        // P2 crate) reaching it is not reported.
        let found = scan(&[(
            "crates/workloads/src/lib.rs",
            "pub fn entry(v: Option<u8>) -> u8 { v.unwrap() }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "P2"));
    }

    #[test]
    fn u1_flags_cross_unit_arithmetic_and_indexing() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(addr: u64, line_addr: u64, words: &[u64]) -> u64 {\n\
             let x = addr + line_addr;\n\
             let w = words[addr as usize];\n\
             x + w\n\
             }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 2, "{u1:?}");
        assert!(u1[0].message.contains("cross-unit `+`"));
        assert!(u1[1].message.contains("indexing with a byte-address"));
    }

    #[test]
    fn u1_tracks_geometry_chains_and_newtype_misuse() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(geom: &LineGeometry, addr: Addr, store: &[u64]) -> u64 {\n\
             let byte = addr.raw();\n\
             let _bad = LineAddr::new(byte);\n\
             store[addr.raw() as usize]\n\
             }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 2, "{u1:?}");
        assert!(u1[0]
            .message
            .contains("`LineAddr::new` called with a byte-address"));
        assert!(u1[1].message.contains("indexing with a byte-address"));
    }

    #[test]
    fn u1_accepts_proper_conversions() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(geom: &LineGeometry, addr: Addr, store: &[u64]) -> u64 {\n\
             let w = geom.word_index(addr).as_usize();\n\
             let line = geom.line_addr(addr);\n\
             let _back = geom.line_base(line);\n\
             store[w]\n\
             }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "U1"), "{found:?}");
    }

    #[test]
    fn u1_checks_call_argument_units() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "fn lookup(word_idx: usize) -> u64 { word_idx as u64 }\n\
             pub fn f(addr: u64) -> u64 { lookup(addr as usize) }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 1, "{u1:?}");
        assert!(u1[0].message.contains("expects a word-index"));
    }

    #[test]
    fn d3_flags_shared_float_accumulators_and_closure_sums() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(cells: &[u64]) -> f64 {\n\
             let total = Mutex::new(0.0f64);\n\
             sweep(cells, |c| { let mpki = *c as f64; *total.lock().unwrap() += mpki; });\n\
             let t = *total.lock().unwrap(); t\n\
             }\n",
        )]);
        let d3: Vec<&Finding> = found.iter().filter(|f| f.rule == "D3").collect();
        assert_eq!(d3.len(), 2, "{d3:?}");
        assert!(d3[0].message.contains("shared `Mutex`"));
        assert!(d3[1].message.contains("float `+=`"));
    }

    #[test]
    fn d3_is_silent_on_canonical_order_reduction() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(cells: &[u64]) -> f64 {\n\
             let per_cell: Vec<f64> = sweep(cells, |c| *c as f64);\n\
             let mut total = 0.0;\n\
             for v in &per_cell { total += v; }\n\
             total\n\
             }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "D3"), "{found:?}");
    }

    #[test]
    fn name_unit_matches_whole_parts_only() {
        assert_eq!(name_unit("addr"), Some(Unit::Byte));
        assert_eq!(name_unit("byte_addr"), Some(Unit::Byte));
        assert_eq!(name_unit("line_addr"), Some(Unit::Line));
        assert_eq!(name_unit("word_idx"), Some(Unit::Word));
        assert_eq!(name_unit("set_index"), Some(Unit::Set));
        assert_eq!(name_unit("offset"), None, "`offset` must not match `set`");
        assert_eq!(name_unit("deadline"), None);
        assert_eq!(name_unit("words"), None);
    }
}
