//! The interprocedural passes: P2 (panic-reachability), U1 (unit
//! safety) and D3 (float determinism), run over the workspace model
//! built by [`crate::model`].
//!
//! * **P2** proves every `pub fn` of the sim-core crates transitively
//!   panic-free. Panic *sources* are the same sites the token-level P1
//!   rule flags (`.unwrap()`, `.expect(`, `panic!`-family), minus
//!   `#[cfg(test)]` code, inline waivers, and the files whose panic
//!   contract is justified in `lint.toml`. Reachability runs over the
//!   conservative call graph; the diagnostic renders the shortest call
//!   path from the public entry point to the panic site.
//! * **U1** assigns *units* — byte address, 8 B word index, line
//!   address, set index — to integer-valued expressions from two
//!   provenance sources: `LineGeometry`/`CacheConfig` accessor chains
//!   (`geom.word_index(a).get()` is word-valued; `line.raw()` on a
//!   `LineAddr` is line-valued) and the workspace naming convention for
//!   integer parameters (`addr`, `line`, `word_idx`, `set_idx`). It
//!   flags cross-unit arithmetic, comparisons, raw indexing by a
//!   byte/line-valued integer, wrong-unit newtype construction, and
//!   call arguments whose unit contradicts every resolved callee.
//! * **D3** flags floating-point accumulation that merges parallel-sweep
//!   cell results outside the canonical-order merge: shared
//!   `Mutex<f64>`-style accumulators, and float `+=`/`sum::<f64>`
//!   reductions inside closures handed to `sweep`/`spawn`.
//! * **S1** (flow-sensitive, over [`crate::cfg`] + [`crate::dataflow`])
//!   proves seed provenance: every `SimRng::new` argument must be
//!   derived from the root seed on *every* path (must-analysis), salt
//!   literals must not collide across derive call sites, and a derived
//!   RNG must not be used again once a parallel region captured it
//!   (may-analysis).
//! * **L2** proves lock discipline: the workspace lock-acquisition-order
//!   graph is acyclic, no lock is re-acquired while held, and nothing
//!   that can transitively panic (P2's facts) runs under a held lock.
//! * **O1** requires counter arithmetic — `+`/`*`/`<<` on `u64`/`u32`
//!   stats-struct fields and `LineGeometry` address math — to be
//!   `checked_`/`saturating_`/explicitly wrapping or carry a waiver.

use crate::absint;
use crate::cfg::Cfg;
use crate::dataflow::{solve_forward, Analysis, GenKill};
use crate::lexer::{TokKind, Token};
use crate::model::{Callee, FnId, Workspace};
use crate::report::Finding;
use crate::rules::Rule;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;

/// Crates whose public API the paper's headline numbers rest on: P2
/// requires every `pub fn` here to be transitively panic-free.
pub const P2_CRATES: &[&str] = &["cache", "core", "compress", "sfp", "mem", "mrc", "timing"];

/// Configuration for the interprocedural pass.
#[derive(Default)]
pub struct AnalysisConfig {
    /// Files whose panic sites are justified by a `P1` (or `P2`) entry in
    /// `lint.toml`; their sites do not count as P2 panic sources.
    pub justified_panic_paths: BTreeSet<String>,
}

impl AnalysisConfig {
    /// Derives the justified-path set from a parsed baseline.
    pub fn from_baseline(baseline: &crate::report::Baseline) -> Self {
        AnalysisConfig {
            justified_panic_paths: baseline
                .allows
                .iter()
                .filter(|a| a.rule == "P1" || a.rule == "P2")
                .map(|a| a.path.clone())
                .collect(),
        }
    }
}

/// Runs all interprocedural rules over `files` (pairs of
/// workspace-relative path and source text).
pub fn scan_model(files: &[(String, String)], cfg: &AnalysisConfig) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();
    model_rules(&ws, cfg, &mut findings);
    absint_rules(&ws, &mut findings);
    findings
}

/// The pre-absint interprocedural rules only (P2/U1/D3/S1/L2/O1) —
/// split out so `bench-lint` can time the abstract-interpretation
/// phase separately.
pub fn scan_model_base(files: &[(String, String)], cfg: &AnalysisConfig) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();
    model_rules(&ws, cfg, &mut findings);
    findings
}

/// The abstract-interpretation rules only (B1/R1/T1 plus stale-T1
/// waiver hygiene).
pub fn scan_model_absint(files: &[(String, String)]) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();
    absint_rules(&ws, &mut findings);
    findings
}

fn model_rules(ws: &Workspace, cfg: &AnalysisConfig, findings: &mut Vec<Finding>) {
    p2(ws, cfg, findings);
    u1(ws, findings);
    d3(ws, findings);
    s1(ws, findings);
    l2(ws, cfg, findings);
    o1(ws, findings);
}

fn finding(
    ws: &Workspace,
    rule: Rule,
    file: usize,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule: rule.id(),
        level: rule.level(),
        path: ws.files[file].path.clone(),
        line,
        col,
        message,
        snippet: ws.files[file].snippet(line),
    }
}

// --- P2: interprocedural panic-reachability ------------------------------

/// Is this file's code held to the no-panic contract? Mirrors the P1
/// scope: sim-crate sources and experiments library sources.
fn in_panic_scope(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let Some((krate, sub)) = rest.split_once('/') else {
        return false;
    };
    (crate::SIM_CRATES.contains(&krate) && sub.starts_with("src/"))
        || (krate == "experiments" && sub.starts_with("src/") && !sub.starts_with("src/bin/"))
}

/// Which functions contain a live (unjustified, non-test) panic site?
/// Shared between P2 (reachability proofs) and L2 (panic-under-lock).
fn live_panic_flags(ws: &Workspace, cfg: &AnalysisConfig) -> Vec<bool> {
    (0..ws.fns.len())
        .map(|id| {
            let f = &ws.fns[id];
            let file = &ws.files[f.file];
            if f.in_test
                || !in_panic_scope(&file.path)
                || cfg.justified_panic_paths.contains(&file.path)
            {
                return false;
            }
            ws.panics[id].iter().any(|p| {
                !file.allows.allows(Rule::P1, p.line) && !file.allows.allows(Rule::P2, p.line)
            })
        })
        .collect()
}

/// Transitive closure of [`live_panic_flags`] over the conservative call
/// graph: which functions can *reach* a live panic site?
fn reaches_panic_flags(ws: &Workspace, live: &[bool]) -> Vec<bool> {
    let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); ws.fns.len()];
    for (id, calls) in ws.calls.iter().enumerate() {
        for c in calls {
            for &t in &c.targets {
                callers[t].push(id);
            }
        }
    }
    let mut reach = live.to_vec();
    let mut queue: VecDeque<FnId> = (0..ws.fns.len()).filter(|&i| reach[i]).collect();
    while let Some(id) = queue.pop_front() {
        for &caller in &callers[id] {
            if !reach[caller] {
                reach[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    reach
}

fn p2(ws: &Workspace, cfg: &AnalysisConfig, findings: &mut Vec<Finding>) {
    let live_panic = live_panic_flags(ws, cfg);

    // Entry points: public functions of the sim-core crates, plus the
    // crash-safe executor — a quarantine layer that panics is worse than
    // no quarantine layer at all.
    for entry in 0..ws.fns.len() {
        let f = &ws.fns[entry];
        let file = &ws.files[f.file];
        let Some(rest) = file.path.strip_prefix("crates/") else {
            continue;
        };
        let Some((krate, sub)) = rest.split_once('/') else {
            continue;
        };
        let core_entry = P2_CRATES.contains(&krate) && sub.starts_with("src/");
        let exec_entry = krate == "experiments" && sub.starts_with("src/exec");
        if !core_entry && !exec_entry {
            continue;
        }
        if !f.item.is_pub || f.in_test || file.allows.allows(Rule::P2, f.item.line) {
            continue;
        }
        if let Some(path) = shortest_panic_path(ws, entry, &live_panic) {
            let hops: Vec<String> = path.iter().map(|&id| ws.label(id)).collect();
            let last = *path.last().unwrap_or(&entry);
            let site = ws.panics[last]
                .iter()
                .find(|p| {
                    let lf = &ws.files[ws.fns[last].file];
                    !lf.allows.allows(Rule::P1, p.line) && !lf.allows.allows(Rule::P2, p.line)
                })
                .map(|p| {
                    format!(
                        "`{}` at {}:{}",
                        p.what, ws.files[ws.fns[last].file].path, p.line
                    )
                })
                .unwrap_or_else(|| "a panic site".to_string());
            findings.push(finding(
                ws,
                Rule::P2,
                f.file,
                f.item.line,
                f.item.col,
                format!(
                    "public `{}` can reach a panic: {} -> {}",
                    f.item.qual,
                    hops.join(" -> "),
                    site
                ),
            ));
        }
    }
}

/// BFS over the call graph from `entry`; returns the shortest path (as
/// function ids, entry first) to a function with a live panic site.
fn shortest_panic_path(ws: &Workspace, entry: FnId, live_panic: &[bool]) -> Option<Vec<FnId>> {
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut seen: BTreeSet<FnId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(entry);
    queue.push_back(entry);
    while let Some(id) = queue.pop_front() {
        if live_panic[id] {
            let mut path = vec![id];
            let mut cur = id;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for call in &ws.calls[id] {
            for &t in &call.targets {
                if seen.insert(t) {
                    parent.insert(t, id);
                    queue.push_back(t);
                }
            }
        }
    }
    None
}

// --- U1: unit safety ------------------------------------------------------

/// The unit of an integer-valued expression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Unit {
    /// A byte address in the simulated physical address space.
    Byte,
    /// A word index within a line (0..words_per_line).
    Word,
    /// A line address (byte address / line size).
    Line,
    /// A set index (line address masked to 0..num_sets).
    Set,
}

impl Unit {
    fn describe(self) -> &'static str {
        match self {
            Unit::Byte => "byte-address",
            Unit::Word => "word-index",
            Unit::Line => "line-address",
            Unit::Set => "set-index",
        }
    }
}

/// What the operand tracker knows about a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tracked {
    /// A unit-bearing newtype (`Addr`, `LineAddr`, `WordIndex`): safe by
    /// construction until `.raw()`/`.get()` unwraps it.
    Typed(Newtype),
    /// A bare integer carrying a unit.
    Int(Unit),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Newtype {
    Addr,
    LineAddr,
    WordIndex,
}

impl Newtype {
    fn unit(self) -> Unit {
        match self {
            Newtype::Addr => Unit::Byte,
            Newtype::LineAddr => Unit::Line,
            Newtype::WordIndex => Unit::Word,
        }
    }

    fn of_type_name(name: &str) -> Option<Newtype> {
        match name {
            "Addr" => Some(Newtype::Addr),
            "LineAddr" => Some(Newtype::LineAddr),
            "WordIndex" => Some(Newtype::WordIndex),
            _ => None,
        }
    }
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Unit implied by an identifier per the workspace naming convention.
/// Matches whole `_`-separated parts, so `offset` never matches `set`.
pub fn name_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    let parts: Vec<&str> = lower.split('_').collect();
    let has = |p: &str| parts.contains(&p);
    if has("word") && (has("idx") || has("index") || has("i")) || lower == "widx" {
        return Some(Unit::Word);
    }
    if has("set") && (has("idx") || has("index")) {
        return Some(Unit::Set);
    }
    if has("line") {
        return Some(Unit::Line);
    }
    if has("addr") || has("address") || has("byte") {
        return Some(Unit::Byte);
    }
    None
}

/// Is U1 in force for this path? Sim-crate sources only: that is where
/// the address algebra lives; experiments code consumes reports, not
/// addresses.
fn in_unit_scope(path: &str) -> bool {
    let Some(rest) = path.strip_prefix("crates/") else {
        return false;
    };
    let Some((krate, sub)) = rest.split_once('/') else {
        return false;
    };
    crate::SIM_CRATES.contains(&krate) && sub.starts_with("src/")
}

/// Per-function variable table: name → tracked provenance.
type VarMap = BTreeMap<String, Tracked>;

fn u1(ws: &Workspace, findings: &mut Vec<Finding>) {
    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        if !in_unit_scope(&file.path) || f.in_test {
            continue;
        }
        let toks = &file.tokens;
        let mut vars = VarMap::new();
        for p in &f.item.params {
            let ty_last = p.ty.rsplit(' ').next().unwrap_or(&p.ty);
            if let Some(nt) = Newtype::of_type_name(ty_last) {
                vars.insert(p.name.clone(), Tracked::Typed(nt));
            } else if INT_TYPES.contains(&ty_last) {
                if let Some(u) = name_unit(&p.name) {
                    vars.insert(p.name.clone(), Tracked::Int(u));
                }
            }
        }
        let body = f.item.body.clone();
        collect_lets(toks, body.clone(), &mut vars);
        check_body(ws, id, &vars, findings);
    }
}

/// Walks a body once, recording `let` bindings whose declared type or
/// initializer has known provenance. Shadowing keeps the latest binding;
/// that is the reaching definition for everything after it, which is the
/// only place the checks look.
fn collect_lets(toks: &[Token], body: Range<usize>, vars: &mut VarMap) {
    let mut i = body.start;
    while i < body.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let name = name_tok.text.clone();
        j += 1;
        // Optional `: Type`.
        let mut declared: Option<Tracked> = None;
        if toks.get(j).is_some_and(|t| t.is_punct(':')) {
            let ty_start = j + 1;
            let mut k = ty_start;
            while k < body.end && !toks[k].is_punct('=') && !toks[k].is_punct(';') {
                k += 1;
            }
            if let Some(last_ident) = toks[ty_start..k]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
            {
                if let Some(nt) = Newtype::of_type_name(&last_ident.text) {
                    declared = Some(Tracked::Typed(nt));
                } else if INT_TYPES.contains(&last_ident.text.as_str()) {
                    declared = name_unit(&name).map(Tracked::Int);
                }
            }
            j = k;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('=')) {
            i = j;
            continue;
        }
        // Initializer runs to the `;` at depth 0; bail on `{` (block
        // initializers are not simple operands anyway).
        let init_start = j + 1;
        let mut depth = 0i32;
        let mut k = init_start;
        let mut end = None;
        while k < body.end {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') {
                break;
            } else if depth == 0 && t.is_punct(';') {
                end = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(end) = end {
            let inferred = operand_unit(toks, init_start..end, vars);
            match declared.or(inferred) {
                Some(tr) => {
                    vars.insert(name, tr);
                }
                None => {
                    // Unknown provenance shadows any previous binding.
                    vars.remove(&name);
                }
            }
            i = end + 1;
        } else {
            if let Some(tr) = declared {
                vars.insert(name, tr);
            }
            i = k + 1;
        }
    }
}

/// Accessor methods that produce a known newtype regardless of receiver.
fn accessor_newtype(name: &str) -> Option<Newtype> {
    match name {
        "word_index" => Some(Newtype::WordIndex),
        "line_addr" => Some(Newtype::LineAddr),
        "line_base" | "word_base" => Some(Newtype::Addr),
        _ => None,
    }
}

/// The unit of a *simple operand*: an identifier or `Type::new(...)`
/// base followed by a method chain, with an optional trailing `as <int>`
/// cast. Anything else — literals, arithmetic, unknown methods — is
/// untracked (`None`), which keeps the rule quiet rather than clever.
fn operand_unit(toks: &[Token], range: Range<usize>, vars: &VarMap) -> Option<Tracked> {
    let mut end = range.end;
    // Strip `as <type ident>` suffixes (casts preserve units).
    while end >= range.start + 2
        && toks[end - 1].kind == TokKind::Ident
        && toks[end - 2].is_ident("as")
    {
        end -= 2;
    }
    if end <= range.start {
        return None;
    }
    let mut i = range.start;
    // Base: `ident`, `Type::new(...)` or `Type::default()`.
    let base_tok = &toks[i];
    if base_tok.kind != TokKind::Ident {
        return None;
    }
    let mut state: Option<Tracked>;
    if i + 1 < end && toks[i + 1].is_punct(':') {
        // `Type::method(...)` base.
        if i + 3 >= end || !toks[i + 2].is_punct(':') || toks[i + 3].kind != TokKind::Ident {
            return None;
        }
        let ty = Newtype::of_type_name(&base_tok.text);
        let method = &toks[i + 3].text;
        if i + 4 >= end || !toks[i + 4].is_punct('(') {
            return None;
        }
        let close = matching_close(toks, i + 4, end)?;
        state = match (ty, method.as_str()) {
            (Some(nt), "new") => Some(Tracked::Typed(nt)),
            _ => None,
        };
        state?;
        i = close + 1;
    } else {
        state = vars.get(&base_tok.text).copied();
        // An untracked base still matters when a chain follows: the chain
        // may establish provenance (`geom.word_index(a).get()`).
        i += 1;
    }
    // Method chain.
    while i < end {
        if !toks[i].is_punct('.') {
            return None; // not a simple operand
        }
        let name_tok = toks.get(i + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let method = name_tok.text.as_str();
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            // Field access: drop tracking but keep walking.
            state = None;
            i += 2;
            continue;
        }
        let close = matching_close(toks, i + 2, end)?;
        state = match method {
            m if accessor_newtype(m).is_some() => accessor_newtype(m).map(Tracked::Typed),
            "set_index" => Some(Tracked::Int(Unit::Set)),
            "raw" => match state {
                Some(Tracked::Typed(nt)) => Some(Tracked::Int(nt.unit())),
                _ => None,
            },
            "get" | "as_usize" => match state {
                Some(Tracked::Typed(Newtype::WordIndex)) => Some(Tracked::Int(Unit::Word)),
                Some(Tracked::Typed(_)) => None,
                other => other,
            },
            _ => None,
        };
        i = close + 1;
    }
    state
}

/// Index of the `)`/`]` matching the opener at `open`, bounded by `end`.
fn matching_close(toks: &[Token], open: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The largest simple operand ending at token index `end` (exclusive).
fn operand_before(toks: &[Token], end: usize) -> Option<Range<usize>> {
    let mut i = end;
    // Optional cast: `... as u64` — the cast's type ident sits at end-1.
    while i >= 2 && toks[i - 1].kind == TokKind::Ident && toks[i - 2].is_ident("as") {
        i -= 2;
    }
    let mut start = i;
    loop {
        if start == 0 {
            break;
        }
        let t = &toks[start - 1];
        if t.is_punct(')') || t.is_punct(']') {
            // Walk back over the balanced group.
            let mut depth = 0i32;
            let mut k = start - 1;
            loop {
                let t2 = &toks[k];
                if t2.is_punct(')') || t2.is_punct(']') {
                    depth += 1;
                } else if t2.is_punct('(') || t2.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            start = k;
            continue;
        }
        if t.kind == TokKind::Ident {
            start -= 1;
            // Keep going over `.` / `::` chains.
            if start >= 1 && toks[start - 1].is_punct('.') {
                start -= 1;
                continue;
            }
            if start >= 2 && toks[start - 1].is_punct(':') && toks[start - 2].is_punct(':') {
                start -= 2;
                continue;
            }
            break;
        }
        break;
    }
    (start < end).then_some(start..end)
}

/// The largest simple operand starting at token index `start`.
fn operand_after(toks: &[Token], start: usize, limit: usize) -> Option<Range<usize>> {
    let mut i = start;
    if i >= limit || toks[i].kind != TokKind::Ident {
        return None;
    }
    i += 1;
    loop {
        if i + 1 < limit && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
            if i + 2 < limit && toks[i + 2].kind == TokKind::Ident {
                i += 3;
                continue;
            }
            return None;
        }
        if i < limit && (toks[i].is_punct('(') || toks[i].is_punct('[')) {
            let close = matching_close(toks, i, limit)?;
            i = close + 1;
            continue;
        }
        if i + 1 < limit && toks[i].is_punct('.') && toks[i + 1].kind == TokKind::Ident {
            i += 2;
            continue;
        }
        if i + 1 < limit && toks[i].is_ident("as") {
            // handled by caller? no: `x as u64` — consume the cast.
            i += 1;
            continue;
        }
        break;
    }
    Some(start..i)
}

/// Binary operators U1 checks for cross-unit mixing. `(text, tokens)`
/// where tokens is how many `Punct` tokens the operator spans.
fn binary_op_at(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let t = &toks[i];
    let next = toks.get(i + 1);
    let is = |c: char| t.is_punct(c);
    let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
    if is('+') {
        return Some(if next_is('=') { ("+=", 2) } else { ("+", 1) });
    }
    if is('-') {
        if next_is('>') {
            return None;
        }
        return Some(if next_is('=') { ("-=", 2) } else { ("-", 1) });
    }
    if is('=') && next_is('=') {
        return Some(("==", 2));
    }
    if is('!') && next_is('=') {
        return Some(("!=", 2));
    }
    if is('<') {
        if next_is('<') {
            return None; // shifts change units legitimately
        }
        return Some(if next_is('=') { ("<=", 2) } else { ("<", 1) });
    }
    if is('>') {
        if next_is('>') {
            return None;
        }
        return Some(if next_is('=') { (">=", 2) } else { (">", 1) });
    }
    None
}

fn check_body(ws: &Workspace, id: FnId, vars: &VarMap, findings: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    let int_unit = |range: Range<usize>| -> Option<Unit> {
        match operand_unit(toks, range, vars) {
            Some(Tracked::Int(u)) => Some(u),
            _ => None,
        }
    };
    let body = f.item.body.clone();
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        let line = t.line;
        // 1. Cross-unit binary arithmetic / comparison.
        if t.kind == TokKind::Punct {
            if let Some((op, width)) = binary_op_at(toks, i) {
                // Binary use needs a left operand; unary minus and
                // pattern contexts have none.
                let binary = i > body.start
                    && (toks[i - 1].kind == TokKind::Ident
                        || toks[i - 1].is_punct(')')
                        || toks[i - 1].is_punct(']'));
                if binary {
                    let lhs = operand_before(toks, i).and_then(&int_unit);
                    let rhs = operand_after(toks, i + width, body.end).and_then(&int_unit);
                    if let (Some(a), Some(b)) = (lhs, rhs) {
                        if a != b && !file.allows.allows(Rule::U1, line) {
                            findings.push(finding(
                                ws,
                                Rule::U1,
                                f.file,
                                line,
                                t.col,
                                format!(
                                    "cross-unit `{op}`: {} value mixed with {} value without a geometry conversion",
                                    a.describe(),
                                    b.describe()
                                ),
                            ));
                        }
                    }
                    i += width;
                    continue;
                }
            }
            // 2. Raw indexing by a byte/line-valued integer.
            if t.is_punct('[') && i > body.start {
                let prev = &toks[i - 1];
                let indexes =
                    prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
                if indexes {
                    if let Some(close) = matching_close(toks, i, body.end) {
                        if let Some(u) = int_unit(i + 1..close) {
                            if matches!(u, Unit::Byte | Unit::Line)
                                && !file.allows.allows(Rule::U1, line)
                            {
                                findings.push(finding(
                                    ws,
                                    Rule::U1,
                                    f.file,
                                    line,
                                    t.col,
                                    format!(
                                        "indexing with a {} value; convert through the geometry (`word_index`/`set_index`) first",
                                        u.describe()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        // 3. Wrong-unit newtype construction: `Addr::new(line_valued)`.
        if t.kind == TokKind::Ident {
            if let Some(nt) = Newtype::of_type_name(&t.text) {
                if toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|x| x.is_ident("new"))
                    && toks.get(i + 4).is_some_and(|x| x.is_punct('('))
                {
                    if let Some(close) = matching_close(toks, i + 4, body.end) {
                        if let Some(u) = int_unit(i + 5..close) {
                            if u != nt.unit() && !file.allows.allows(Rule::U1, line) {
                                findings.push(finding(
                                    ws,
                                    Rule::U1,
                                    f.file,
                                    line,
                                    t.col,
                                    format!(
                                        "`{}::new` called with a {} value (expects a {} value); use the geometry conversion instead",
                                        t.text,
                                        u.describe(),
                                        nt.unit().describe()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // 4. Call arguments whose unit contradicts every resolved callee.
    for call in &ws.calls[id] {
        let Some((args, _)) = crate::rules::split_args(toks, call.tok + 1) else {
            continue;
        };
        if call.targets.is_empty() || file.allows.allows(Rule::U1, call.line) {
            continue;
        }
        for (k, arg) in args.iter().enumerate() {
            let Some(arg_unit) = int_unit(arg.clone()) else {
                continue;
            };
            // The call graph over-approximates: a method call resolves to
            // every same-name method in the workspace. Only flag when the
            // argument's unit contradicts EVERY candidate that has a
            // parameter in this position — a candidate whose parameter
            // carries no unit is compatible and vetoes the finding.
            let mut expected: BTreeSet<Unit> = BTreeSet::new();
            let mut param_name = String::new();
            let mut any_candidate = false;
            let mut compatible = false;
            for &target in &call.targets {
                let tf = &ws.fns[target];
                // UFCS method calls pass the receiver as argument 0.
                let shift =
                    usize::from(matches!(call.callee, Callee::Path(..)) && tf.item.has_self);
                let Some(p) = k.checked_sub(shift).and_then(|pk| tf.item.params.get(pk)) else {
                    continue;
                };
                any_candidate = true;
                let ty_last = p.ty.rsplit(' ').next().unwrap_or(&p.ty);
                match name_unit(&p.name).filter(|_| INT_TYPES.contains(&ty_last)) {
                    Some(u) if u != arg_unit => {
                        expected.insert(u);
                        param_name = p.name.clone();
                    }
                    _ => compatible = true,
                }
            }
            if any_candidate && !compatible && !expected.is_empty() {
                let wanted: Vec<&str> = expected.iter().map(|u| u.describe()).collect();
                findings.push(finding(
                    ws,
                    Rule::U1,
                    f.file,
                    call.line,
                    call.col,
                    format!(
                        "`{}` expects a {} value for `{param_name}`, got a {} value",
                        call.callee.name(),
                        wanted.join("/"),
                        arg_unit.describe()
                    ),
                ));
            }
        }
    }
}

// --- D3: float determinism ------------------------------------------------

/// Files D3 applies to: experiments library sources (minus the canonical
/// merge itself) and sim-crate sources.
fn in_d3_scope(path: &str) -> bool {
    if path == "crates/experiments/src/parallel.rs" {
        return false; // the canonical-order merge lives here
    }
    in_panic_scope(path)
}

/// Entry points whose closures run on worker threads: accumulating
/// floats inside them merges cells in completion order.
const D3_PARALLEL_CALLS: &[&str] = &["sweep", "sweep_with_threads", "spawn"];

fn d3(ws: &Workspace, findings: &mut Vec<Finding>) {
    for (idx, file) in ws.files.iter().enumerate() {
        if !in_d3_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        // Float-typed let bindings, for the accumulation check.
        let float_vars = collect_float_vars(toks);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || file.in_tests(t.line) {
                continue;
            }
            // Shared float accumulators: Mutex<f64>, RwLock<f32>,
            // Mutex::new(0.0).
            if (t.is_ident("Mutex") || t.is_ident("RwLock"))
                && !file.allows.allows(Rule::D3, t.line)
            {
                let generic_float = toks.get(i + 1).is_some_and(|n| n.is_punct('<'))
                    && generic_contains_float(toks, i + 1);
                let ctor_float = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident("new"))
                    && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
                    && matching_close(toks, i + 4, toks.len())
                        .is_some_and(|c| toks[i + 5..c].iter().any(is_floatish));
                if generic_float || ctor_float {
                    findings.push(finding(
                        ws,
                        Rule::D3,
                        idx,
                        t.line,
                        t.col,
                        format!(
                            "shared `{}` over a float merges parallel cell results in completion order; collect per-cell results and reduce after the canonical-order merge (`parallel::sweep`)",
                            t.text
                        ),
                    ));
                }
                continue;
            }
            // Float accumulation inside a worker closure.
            if D3_PARALLEL_CALLS.iter().any(|c| t.is_ident(c))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                let Some(close) = matching_close(toks, i + 1, toks.len()) else {
                    continue;
                };
                scan_closure_accumulation(ws, idx, i + 2..close, &float_vars, findings);
            }
        }
    }
}

fn is_floatish(t: &Token) -> bool {
    t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32")
}

fn generic_contains_float(toks: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[open..] {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return false;
        } else if is_floatish(t) {
            return true;
        }
    }
    false
}

/// Names of `let`-bound variables with float provenance (declared
/// `f64`/`f32` or initialized from a float literal).
fn collect_float_vars(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks[j].is_ident("mut") {
                j += 1;
            }
            if toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Look ahead to the end of the statement for float signs.
                let mut k = j + 1;
                let mut floaty = false;
                let mut depth = 0i32;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if t.is_punct('{') || (depth == 0 && t.is_punct(';')) {
                        break;
                    } else if is_floatish(t) {
                        floaty = true;
                    }
                    k += 1;
                }
                if floaty {
                    out.insert(name);
                }
            }
        }
        i += 1;
    }
    out
}

/// Flags float compound assignment and `sum::<f64>` reductions inside a
/// worker-closure token range.
fn scan_closure_accumulation(
    ws: &Workspace,
    file_idx: usize,
    range: Range<usize>,
    float_vars: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let file = &ws.files[file_idx];
    let toks = &file.tokens;
    // Only closures merge results in completion order; a plain
    // `sweep(&items, job)` where `job` is a named fn cannot capture an
    // accumulator. Require a `|` inside the args before flagging.
    if !toks[range.clone()].iter().any(|t| t.is_punct('|')) {
        return;
    }
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        // `lhs += rhs` (and -=, *=, /=) with float evidence on either side.
        if t.kind == TokKind::Punct
            && ["+", "-", "*", "/"].iter().any(|c| t.text == *c)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('='))
        {
            let lhs_float = operand_before(toks, i).is_some_and(|r| {
                toks[r.clone()].iter().any(|x| {
                    is_floatish(x)
                        || (x.kind == TokKind::Ident && float_vars.contains(&x.text))
                        || x.is_ident("lock")
                })
            });
            let rhs_float = {
                let mut k = i + 2;
                let mut found = false;
                let mut depth = 0i32;
                while k < range.end {
                    let x = &toks[k];
                    if x.is_punct('(') || x.is_punct('[') {
                        depth += 1;
                    } else if x.is_punct(')') || x.is_punct(']') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0 && (x.is_punct(';') || x.is_punct(',')) {
                        break;
                    } else if is_floatish(x)
                        || (x.kind == TokKind::Ident && float_vars.contains(&x.text))
                    {
                        found = true;
                    }
                    k += 1;
                }
                found
            };
            if (lhs_float || rhs_float)
                && !file.in_tests(t.line)
                && !file.allows.allows(Rule::D3, t.line)
            {
                findings.push(finding(
                    ws,
                    Rule::D3,
                    file_idx,
                    t.line,
                    t.col,
                    format!(
                        "float `{}=` inside a parallel worker closure accumulates cells in completion order; return the value and reduce after the canonical-order merge",
                        t.text
                    ),
                ));
            }
            i += 2;
            continue;
        }
        // `.sum::<f64>()` / `.product::<f32>()` inside the closure.
        if (t.is_ident("sum") || t.is_ident("product"))
            && i > range.start
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && generic_contains_float(toks, i + 3)
            && !file.in_tests(t.line)
            && !file.allows.allows(Rule::D3, t.line)
        {
            findings.push(finding(
                ws,
                Rule::D3,
                file_idx,
                t.line,
                t.col,
                format!(
                    "float `.{}()` reduction inside a parallel worker closure; reduce after the canonical-order merge",
                    t.text
                ),
            ));
        }
        i += 1;
    }
}

// --- S1: seed provenance (flow-sensitive) ---------------------------------

/// Functions that mint a derived seed or RNG stream from the root seed.
const DERIVE_ORIGINS: &[&str] = &[
    "derive",
    "derive_seed",
    "derive_seed_chain",
    "stable_id",
    "fork",
];

/// Is S1 in force for this path? The determinism crates plus the
/// experiments library — minus `crates/mem/src/rng.rs`, which implements
/// the derive primitives themselves (its constructors ARE the origins).
fn in_seed_scope(path: &str) -> bool {
    path != "crates/mem/src/rng.rs" && in_panic_scope(path)
}

/// Does the identifier carry a `seed` component per the workspace naming
/// convention (whole `_`-separated parts, like [`name_unit`])?
fn has_seed_part(name: &str) -> bool {
    name.to_ascii_lowercase()
        .split('_')
        .any(|p| p == "seed" || p == "seeds")
}

/// Is the expression in `range` derived from the root seed, given the
/// set of variables known-derived on every path to this statement?
///
/// Derived means: it contains a call to a derive origin
/// (`derive`/`derive_seed`/`derive_seed_chain`/`stable_id`/`fork`), or
/// it is a *simple path* (idents, `.`/`::`/`&` only — no literals, no
/// arithmetic) naming a derived variable or a `seed`-named component.
/// `seed ^ 0x123`-style ad-hoc mixing is deliberately NOT derived: xor
/// folds distinct streams onto each other, which is the exact bug class
/// the salt-chain discipline exists to prevent.
fn expr_is_derived(toks: &[Token], range: Range<usize>, derived: &BTreeSet<String>) -> bool {
    for i in range.clone() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && DERIVE_ORIGINS.iter().any(|d| t.is_ident(d))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            return true;
        }
    }
    let mut qualifies = false;
    for t in &toks[range] {
        match t.kind {
            TokKind::Ident => {
                if derived.contains(&t.text) || has_seed_part(&t.text) {
                    qualifies = true;
                }
            }
            TokKind::Punct if t.is_punct('.') || t.is_punct(':') || t.is_punct('&') => {}
            _ => return false,
        }
    }
    qualifies
}

/// Splits a statement span into an assignment: `let [mut] name ... = rhs`
/// or `name = rhs`. Returns the bound name and the rhs token range.
fn assignment_parts(toks: &[Token], span: Range<usize>) -> Option<(String, Range<usize>)> {
    let mut i = span.start;
    if toks.get(i)?.is_ident("let") {
        i += 1;
        if toks.get(i)?.is_ident("mut") {
            i += 1;
        }
    }
    let name_tok = toks.get(i)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find the `=` at depth 0 that is neither `==` nor part of a
    // compound/comparison operator.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < span.end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') {
            let prev_compound = toks.get(j.wrapping_sub(1)).is_some_and(|p| {
                ["+", "-", "*", "/", "%", "^", "&", "|", "<", ">", "!", "="]
                    .iter()
                    .any(|c| p.text == *c && p.kind == TokKind::Punct)
            });
            let next_eq = toks.get(j + 1).is_some_and(|n| n.is_punct('='));
            if !prev_compound && !next_eq {
                return (j + 1 < span.end).then(|| (name, j + 1..span.end));
            }
        }
        j += 1;
    }
    None
}

/// The must-analysis fact: variables holding a derived seed/RNG on every
/// path. Transfer interprets one statement-level assignment per node.
struct SeedTaint<'a> {
    toks: &'a [Token],
    cfg: &'a Cfg,
    boundary: BTreeSet<String>,
}

impl Analysis for SeedTaint<'_> {
    type Fact = BTreeSet<String>;

    fn boundary(&self) -> Self::Fact {
        self.boundary.clone()
    }

    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.intersection(b).cloned().collect() // must: derived on EVERY path
    }

    fn transfer(&self, node: usize, input: &Self::Fact) -> Self::Fact {
        let mut out = input.clone();
        let span = self.cfg.nodes[node].span.clone();
        if let Some((name, rhs)) = assignment_parts(self.toks, span) {
            if expr_is_derived(self.toks, rhs, &out) {
                out.insert(name);
            } else {
                out.remove(&name);
            }
        }
        out
    }
}

fn s1(ws: &Workspace, findings: &mut Vec<Finding>) {
    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        if !in_seed_scope(&file.path) || f.in_test {
            continue;
        }
        let toks = &file.tokens;
        let body = f.item.body.clone();
        // Cheap relevance gate before building a CFG.
        if !toks[body.clone()]
            .iter()
            .any(|t| t.is_ident("SimRng") || t.is_ident("fork"))
        {
            continue;
        }
        let graph = Cfg::build(toks, body);
        s1_non_derived_construction(ws, id, &graph, findings);
        s1_reuse_after_parallel(ws, id, &graph, findings);
    }
    s1_salt_collisions(ws, findings);
}

/// Flags `SimRng::new(arg)` where `arg` is not derived on every path.
fn s1_non_derived_construction(ws: &Workspace, id: FnId, graph: &Cfg, findings: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    let sites: Vec<&crate::model::CallSite> = ws.calls[id]
        .iter()
        .filter(|c| matches!(&c.callee, Callee::Path(q, n) if q == "SimRng" && n == "new"))
        .collect();
    if sites.is_empty() {
        return;
    }
    let boundary: BTreeSet<String> = f
        .item
        .params
        .iter()
        .filter(|p| has_seed_part(&p.name))
        .map(|p| p.name.clone())
        .collect();
    let taint = SeedTaint {
        toks,
        cfg: graph,
        boundary,
    };
    let sol = solve_forward(graph, &taint);
    for site in sites {
        if file.in_tests(site.line) || file.allows.allows(Rule::S1, site.line) {
            continue;
        }
        let Some((args, _)) = crate::rules::split_args(toks, site.tok + 1) else {
            continue;
        };
        let Some(arg) = args.first() else { continue };
        // The input fact before the statement containing the call; an
        // unreachable or unmapped site produces no finding.
        let Some(fact) = graph.node_at(site.tok).and_then(|n| sol.input[n].clone()) else {
            continue;
        };
        if !expr_is_derived(toks, arg.clone(), &fact) {
            findings.push(finding(
                ws,
                Rule::S1,
                f.file,
                site.line,
                site.col,
                "`SimRng::new` seeded from a non-derived value; route it through `SimRng::derive`/`derive_seed_chain`/`stable_id` so the stream stays collision-free under the root seed".to_string(),
            ));
        }
    }
}

/// RHS shapes that produce an RNG value: `SimRng::...`, `.fork()`, or a
/// `.derive(...)` method call.
fn rhs_makes_rng(toks: &[Token], rhs: Range<usize>) -> bool {
    for i in rhs.clone() {
        let t = &toks[i];
        if t.is_ident("SimRng") {
            return true;
        }
        if (t.is_ident("fork") || t.is_ident("derive"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            return true;
        }
    }
    false
}

/// Does this statement span hand `var` to a parallel-region closure
/// (`sweep`/`sweep_with_threads`/`spawn` call whose args contain a `|`
/// closure mentioning `var`)?
fn captures_in_parallel(toks: &[Token], span: Range<usize>, var: &str) -> bool {
    for i in span.clone() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && D3_PARALLEL_CALLS.iter().any(|c| t.is_ident(c))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matching_close(toks, i + 1, span.end) {
                let args = &toks[i + 2..close];
                if args.iter().any(|x| x.is_punct('|')) && args.iter().any(|x| x.is_ident(var)) {
                    return true;
                }
            }
        }
    }
    false
}

/// May-analysis: flags a derived RNG used again after a parallel region
/// captured it — the second use interleaves with the workers' stream,
/// making the result order-dependent.
fn s1_reuse_after_parallel(ws: &Workspace, id: FnId, graph: &Cfg, findings: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    let mut rng_vars: BTreeSet<String> = BTreeSet::new();
    for node in &graph.nodes {
        if let Some((name, rhs)) = assignment_parts(toks, node.span.clone()) {
            if rhs_makes_rng(toks, rhs) {
                rng_vars.insert(name);
            }
        }
    }
    if rng_vars.is_empty() {
        return;
    }
    let n = graph.nodes.len();
    let mut gen = vec![BTreeSet::new(); n];
    for (nid, node) in graph.nodes.iter().enumerate() {
        for v in &rng_vars {
            if captures_in_parallel(toks, node.span.clone(), v) {
                gen[nid].insert(v.clone());
            }
        }
    }
    if gen.iter().all(BTreeSet::is_empty) {
        return;
    }
    let consumed = GenKill {
        must: false, // may: consumed on SOME path is already a hazard
        boundary: BTreeSet::new(),
        gen: gen.clone(),
        kill: vec![BTreeSet::new(); n],
    };
    let sol = solve_forward(graph, &consumed);
    for (nid, node) in graph.nodes.iter().enumerate() {
        let Some(before) = &sol.input[nid] else {
            continue;
        };
        for v in before {
            let Some(use_tok) = node.span.clone().find(|&i| toks[i].is_ident(v)) else {
                continue;
            };
            let t = &toks[use_tok];
            if file.in_tests(t.line) || file.allows.allows(Rule::S1, t.line) {
                continue;
            }
            let message = if gen[nid].contains(v) {
                format!(
                    "derived RNG `{v}` is captured by a second parallel region; fork a fresh stream per region so cell seeds stay collision-free"
                )
            } else {
                format!(
                    "derived RNG `{v}` is used again after a parallel region captured it; its stream interleaves with the workers' — derive a fresh RNG instead"
                )
            };
            findings.push(finding(ws, Rule::S1, f.file, t.line, t.col, message));
        }
    }
}

/// One statically-resolved component of a derive-salt tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum SaltPart {
    Int(i128),
    Id(String),
}

impl SaltPart {
    fn describe(&self) -> String {
        match self {
            SaltPart::Int(v) => format!("{v:#x}"),
            SaltPart::Id(s) => format!("stable_id(\"{s}\")"),
        }
    }
}

/// Resolves one salt argument to constant components: an integer
/// constant expression, a `stable_id("...")` call, or a `&[...]` slice
/// of such. Returns `false` when anything is non-constant (the site
/// then does not participate in collision detection).
fn resolve_salt(toks: &[Token], range: Range<usize>, out: &mut Vec<SaltPart>) -> bool {
    let mut start = range.start;
    while toks.get(start).is_some_and(|t| t.is_punct('&')) {
        start += 1;
    }
    if start >= range.end {
        return false;
    }
    if toks[start].is_punct('[') {
        let Some(close) = matching_close(toks, start, range.end) else {
            return false;
        };
        // Split the slice elements at top-level commas.
        let mut depth = 0i32;
        let mut elem_start = start + 1;
        for i in start + 1..close {
            let t = &toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                if !resolve_salt(toks, elem_start..i, out) {
                    return false;
                }
                elem_start = i + 1;
            }
        }
        return elem_start >= close || resolve_salt(toks, elem_start..close, out);
    }
    if toks[start].is_ident("stable_id") && toks.get(start + 1).is_some_and(|t| t.is_punct('(')) {
        let inner: Vec<&Token> = toks[start + 2..range.end]
            .iter()
            .take_while(|t| !t.is_punct(')'))
            .collect();
        if let [lit] = inner[..] {
            if lit.kind == TokKind::Str {
                out.push(SaltPart::Id(lit.text.trim_matches('"').to_string()));
                return true;
            }
        }
        return false;
    }
    match crate::rules::const_eval(&toks[start..range.end]) {
        Some(v) => {
            out.push(SaltPart::Int(v));
            true
        }
        None => false,
    }
}

/// Flags two derive call sites whose (base expression, salt tuple) pairs
/// are identical: the derived streams collide.
fn s1_salt_collisions(ws: &Workspace, findings: &mut Vec<Finding>) {
    type Key = (String, String, Vec<SaltPart>);
    let mut groups: BTreeMap<Key, Vec<(usize, u32, u32)>> = BTreeMap::new();
    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        if f.in_test || !in_seed_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        for call in &ws.calls[id] {
            let name = call.callee.name();
            if !matches!(name, "derive" | "derive_seed" | "derive_seed_chain") {
                continue;
            }
            if file.in_tests(call.line) {
                continue;
            }
            let Some((args, _)) = crate::rules::split_args(toks, call.tok + 1) else {
                continue;
            };
            // The base-seed expression: the receiver for method calls,
            // the first argument for `SimRng::derive_seed*` forms.
            let (base, salt_args) = match &call.callee {
                Callee::Method(_) => {
                    let recv = call
                        .tok
                        .checked_sub(1)
                        .and_then(|dot| operand_before(toks, dot))
                        .map(|r| tok_text(toks, r))
                        .unwrap_or_default();
                    (recv, &args[..])
                }
                _ => {
                    let Some(first) = args.first() else { continue };
                    (tok_text(toks, first.clone()), &args[1..])
                }
            };
            let mut salts = Vec::new();
            if salt_args.is_empty()
                || !salt_args
                    .iter()
                    .all(|a| resolve_salt(toks, a.clone(), &mut salts))
            {
                continue;
            }
            groups
                .entry((name.to_string(), base, salts))
                .or_default()
                .push((f.file, call.line, call.col));
        }
    }
    for ((name, base, salts), mut sites) in groups {
        sites.sort_unstable();
        sites.dedup();
        if sites.len() < 2 {
            continue;
        }
        let (first_file, first_line, _) = sites[0];
        let salt_desc: Vec<String> = salts.iter().map(SaltPart::describe).collect();
        for &(fidx, line, col) in &sites[1..] {
            let file = &ws.files[fidx];
            if file.allows.allows(Rule::S1, line) {
                continue;
            }
            findings.push(finding(
                ws,
                Rule::S1,
                fidx,
                line,
                col,
                format!(
                    "`{name}` from base `{base}` with salt [{}] duplicates the derive at {}:{}; the two derived streams collide — pick a distinct salt",
                    salt_desc.join(", "),
                    ws.files[first_file].path,
                    first_line
                ),
            ));
        }
    }
}

/// The source text of a token range, single-space separated.
fn tok_text(toks: &[Token], range: Range<usize>) -> String {
    toks[range]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

// --- L2: lock discipline --------------------------------------------------

/// Macros whose expansion aborts the process (mirrors the model's list;
/// used for the direct panic-under-lock scan).
const L2_PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One `.lock()` acquisition site inside a function body.
struct LockSite {
    /// Token index of the `lock` identifier.
    tok: usize,
    line: u32,
    col: u32,
    /// Lock identity: the identifier the receiver chain ends in
    /// (`tasks.lock()` → `tasks`, `self.slots[i].lock()` → `slots`).
    name: String,
    /// `let <guard> = ...lock()...` binds the guard to a named variable,
    /// extending the hold to the end of the enclosing block.
    named_guard: bool,
}

/// Collects `.lock()` acquisition sites in `body`.
fn lock_sites(toks: &[Token], body: Range<usize>) -> Vec<LockSite> {
    let mut out = Vec::new();
    for i in body.clone() {
        let t = &toks[i];
        if !t.is_ident("lock")
            || i == 0
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        // Identity: the ident right before the final `.`, hopping back
        // over one `[...]`/`(...)` group if present.
        let mut k = i - 1; // the `.`
        let name = loop {
            if k == 0 {
                break "<lock>".to_string();
            }
            k -= 1;
            let p = &toks[k];
            if p.is_punct(']') || p.is_punct(')') {
                let mut depth = 0i32;
                while k > 0 {
                    let q = &toks[k];
                    if q.is_punct(']') || q.is_punct(')') {
                        depth += 1;
                    } else if q.is_punct('[') || q.is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                continue;
            }
            if p.kind == TokKind::Ident {
                break p.text.clone();
            }
            break "<lock>".to_string();
        };
        // Named guard: `let [mut] <name> = <receiver>.lock()`.
        let recv_start = operand_before(toks, i - 1).map_or(i - 1, |r| r.start);
        let named_guard = recv_start >= 3
            && toks[recv_start - 1].is_punct('=')
            && toks[recv_start - 2].kind == TokKind::Ident
            && !toks[recv_start - 2].is_ident("_")
            && (toks[recv_start - 3].is_ident("let")
                || (toks[recv_start - 3].is_ident("mut")
                    && recv_start >= 4
                    && toks[recv_start - 4].is_ident("let")));
        out.push(LockSite {
            tok: i,
            line: t.line,
            col: t.col,
            name,
            named_guard,
        });
    }
    out
}

/// The token index where the guard acquired at `site` is released: the
/// end of the enclosing block for named guards (RAII drop), the end of
/// the statement for temporaries, truncated at an explicit `drop(..)` of
/// any guard.
fn guard_extent(toks: &[Token], site: &LockSite, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = site.tok;
    while i < body_end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i; // enclosing block closes: named guard drops
            }
        } else if depth == 0 && t.is_punct(';') && !site.named_guard {
            return i; // temporary guard: dropped at statement end
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            return i; // explicit early release (approximate: any drop)
        }
        i += 1;
    }
    body_end
}

fn l2(ws: &Workspace, cfg: &AnalysisConfig, findings: &mut Vec<Finding>) {
    let live = live_panic_flags(ws, cfg);
    let reaches = reaches_panic_flags(ws, &live);
    // The workspace lock-order graph: (held, acquired) → first site.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32)> = BTreeMap::new();
    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        let file = &ws.files[f.file];
        if f.in_test || !in_panic_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        let body = f.item.body.clone();
        let sites = lock_sites(toks, body.clone());
        if sites.is_empty() {
            continue;
        }
        for site in &sites {
            if file.in_tests(site.line) {
                continue;
            }
            let end = guard_extent(toks, site, body.end);
            // Nested acquisitions while this guard is held.
            for inner in &sites {
                if inner.tok <= site.tok || inner.tok >= end {
                    continue;
                }
                if inner.name == site.name {
                    if !file.allows.allows(Rule::L2, inner.line) {
                        findings.push(finding(
                            ws,
                            Rule::L2,
                            f.file,
                            inner.line,
                            inner.col,
                            format!(
                                "lock `{}` acquired again while already held (acquired at line {}); this self-deadlocks on every path reaching it",
                                inner.name, site.line
                            ),
                        ));
                    }
                } else {
                    edges
                        .entry((site.name.clone(), inner.name.clone()))
                        .or_insert((f.file, inner.line, inner.col));
                }
            }
            // Panic-capable calls while the guard is held poison the
            // mutex for every other worker.
            for call in &ws.calls[id] {
                if call.tok <= site.tok || call.tok >= end {
                    continue;
                }
                if file.allows.allows(Rule::L2, call.line) {
                    continue;
                }
                if call.targets.iter().any(|&t| reaches[t]) {
                    findings.push(finding(
                        ws,
                        Rule::L2,
                        f.file,
                        call.line,
                        call.col,
                        format!(
                            "call to `{}` can panic while lock `{}` is held (acquired at line {}); a panic here poisons the mutex for every other worker — narrow the guard or make the callee panic-free",
                            call.callee.name(),
                            site.name,
                            site.line
                        ),
                    ));
                }
            }
            // Direct panic macros under the guard.
            for i in site.tok + 1..end {
                let t = &toks[i];
                if t.kind == TokKind::Ident
                    && L2_PANIC_MACROS.iter().any(|m| t.is_ident(m))
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && !file.allows.allows(Rule::L2, t.line)
                {
                    findings.push(finding(
                        ws,
                        Rule::L2,
                        f.file,
                        t.line,
                        t.col,
                        format!(
                            "`{}!` while lock `{}` is held (acquired at line {}); a panic here poisons the mutex for every other worker",
                            t.text, site.name, site.line
                        ),
                    ));
                }
            }
        }
    }
    // Deadlock freedom: the acquisition-order graph must be acyclic.
    for cycle in lock_cycles(&edges) {
        let mut hops = Vec::new();
        for w in cycle.windows(2) {
            let (fidx, line, _) = edges[&(w[0].clone(), w[1].clone())];
            hops.push(format!(
                "`{}` while holding `{}` at {}:{}",
                w[1], w[0], ws.files[fidx].path, line
            ));
        }
        let (fidx, line, col) = edges[&(cycle[0].clone(), cycle[1].clone())];
        if ws.files[fidx].allows.allows(Rule::L2, line) {
            continue;
        }
        findings.push(finding(
            ws,
            Rule::L2,
            fidx,
            line,
            col,
            format!(
                "lock-order cycle {}: two workers taking the locks in opposite order deadlock ({})",
                cycle.join(" -> "),
                hops.join("; ")
            ),
        ));
    }
}

/// Enumerates cycles in the lock-order graph, canonicalized (rotated to
/// start at the smallest name, closing edge included: `a -> b -> a`).
fn lock_cycles(edges: &BTreeMap<(String, String), (usize, u32, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held).or_default().push(acquired);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; path-based cycle detection is fine at this
    // scale (a handful of locks).
    for &start in adj.keys() {
        let mut stack: Vec<(&String, usize)> = vec![(start, 0)];
        let mut path: Vec<&String> = vec![start];
        while let Some((node, next_idx)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if let Some(&succ) = succs.get(*next_idx) {
                *next_idx += 1;
                if let Some(pos) = path.iter().position(|&p| p == succ) {
                    // Found a cycle: canonicalize the rotation.
                    let cyc: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
                    let min = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| *s)
                        .map(|(i, _)| i);
                    if let Some(min) = min {
                        let mut rot: Vec<String> =
                            cyc[min..].iter().chain(&cyc[..min]).cloned().collect();
                        rot.push(rot[0].clone());
                        cycles.insert(rot);
                    }
                } else if path.len() < 16 {
                    path.push(succ);
                    stack.push((succ, 0));
                }
            } else {
                stack.pop();
                path.pop();
            }
        }
    }
    cycles.into_iter().collect()
}

// --- O1: counter arithmetic -----------------------------------------------

/// Integer types O1 treats as overflow-prone counters.
const O1_COUNTER_TYPES: &[&str] = &["u64", "u32"];

/// Field names of every `*Stats` struct in the workspace whose type is a
/// `u64`/`u32` counter. Field-name based: `self.accesses` on any struct
/// matches once some stats struct declares `accesses: u64`.
fn counter_fields(ws: &Workspace) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("struct")
                || !toks
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Ident && t.text.ends_with("Stats"))
            {
                continue;
            }
            // Find the field block's `{` (stopping at `;` for tuple/unit
            // structs).
            let mut j = i + 2;
            let open = loop {
                match toks.get(j) {
                    Some(t) if t.is_punct('{') => break Some(j),
                    Some(t) if t.is_punct(';') || t.is_punct('(') => break None,
                    Some(_) => j += 1,
                    None => break None,
                }
            };
            let Some(open) = open else { continue };
            let close = crate::parser::brace_end(toks, open);
            let mut depth = 1i32;
            let mut k = open + 1;
            while k + 1 < close {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && t.kind == TokKind::Ident
                    && toks[k + 1].is_punct(':')
                    && !toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    // `name : Type` — a counter when Type starts u64/u32.
                    if toks
                        .get(k + 2)
                        .is_some_and(|ty| O1_COUNTER_TYPES.iter().any(|c| ty.is_ident(c)))
                    {
                        out.insert(t.text.clone());
                    }
                }
                k += 1;
            }
        }
    }
    out
}

/// The unchecked operator at token `i`, if any: `+`, `+=`, `*`, `*=`,
/// `<<`, `<<=`. Returns the operator text and its token width.
fn o1_op(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let t = toks.get(i)?;
    let next_eq = |at: usize| toks.get(at).is_some_and(|n| n.is_punct('='));
    if t.is_punct('+') {
        return Some(if next_eq(i + 1) { ("+=", 2) } else { ("+", 1) });
    }
    if t.is_punct('*') {
        return Some(if next_eq(i + 1) { ("*=", 2) } else { ("*", 1) });
    }
    if t.is_punct('<') && toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
        return Some(if next_eq(i + 2) {
            ("<<=", 3)
        } else {
            ("<<", 2)
        });
    }
    None
}

/// `impl LineGeometry { .. }` token ranges in one file.
fn line_geometry_impls(toks: &[Token]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("impl")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("LineGeometry"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            out.push(i + 3..crate::parser::brace_end(toks, i + 2));
        }
    }
    out
}

fn o1(ws: &Workspace, findings: &mut Vec<Finding>) {
    let counters = counter_fields(ws);
    for (idx, file) in ws.files.iter().enumerate() {
        if !in_unit_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        let geom = line_geometry_impls(toks);
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            // Counter-field arithmetic: `.field +`, `.field +=`, ...
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && counters.contains(&n.text))
            {
                if let Some((op, width)) = o1_op(toks, i + 2) {
                    let field = &toks[i + 1];
                    let op_tok = &toks[i + 2];
                    if !file.in_tests(op_tok.line) && !file.allows.allows(Rule::O1, op_tok.line) {
                        let fix = if op.ends_with('=') {
                            "use a saturating bump (`Counter::bump`/`bump_by`)"
                        } else {
                            "use `saturating_add`/`checked_mul`/an explicit wrapping op"
                        };
                        findings.push(finding(
                            ws,
                            Rule::O1,
                            idx,
                            op_tok.line,
                            op_tok.col,
                            format!(
                                "unchecked `{op}` on stats counter `{}`; a saturated counter is a wrong report, a wrapped one is a silently wrong report — {fix}",
                                field.text
                            ),
                        ));
                    }
                    i += 2 + width;
                    continue;
                }
            }
            // LineGeometry address math: any binary `+`/`*`/`<<`.
            if geom.iter().any(|r| r.contains(&i)) {
                if let Some((op, width)) = o1_op(toks, i) {
                    let binary = i > 0
                        && (toks[i - 1].kind == TokKind::Ident
                            || toks[i - 1].kind == TokKind::Int
                            || toks[i - 1].is_punct(')')
                            || toks[i - 1].is_punct(']'));
                    if binary && !file.in_tests(t.line) && !file.allows.allows(Rule::O1, t.line) {
                        findings.push(finding(
                            ws,
                            Rule::O1,
                            idx,
                            t.line,
                            t.col,
                            format!(
                                "unchecked `{op}` in `LineGeometry` address math; use `checked_`/`saturating_` ops or waive with the construction-time bound"
                            ),
                        ));
                    }
                    i += width;
                    continue;
                }
            }
            i += 1;
        }
    }
}

// --- B1/R1/T1: value-range & known-bits proofs ---------------------------

/// One obligation site found by the token scan.
struct AbsSite {
    /// The anchor token: the first `<`/`>` of a shift pair, the
    /// `wrapping_add` identifier, or the `as` keyword.
    tok: usize,
    kind: AbsSiteKind,
}

enum AbsSiteKind {
    /// B1: a `<<`/`>>`/`<<=`/`>>=` pair.
    Shift { assign: bool },
    /// R1: a flattened-index chain `..wrapping_mul(..).wrapping_add(..)`
    /// (directly or through one `let`-bound base).
    WrapIndex {
        rcv_start: usize,
        close: usize,
        /// `Some(name)` when the whole statement is `let name = <chain>;`.
        let_name: Option<String>,
    },
    /// T1: an `as u8`/`as u16`/`as u32` cast.
    Cast { target: absint::IntTy },
}

/// Scans one function body for B1/R1/T1 sites, skipping `skip` token
/// ranges (nested `fn` items, which are analyzed as their own bodies).
fn collect_absint_sites(toks: &[Token], body: Range<usize>, skip: &[Range<usize>]) -> Vec<AbsSite> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if let Some(r) = skip.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        // A glued `<<`/`>>` pair with a gap before it is a shift; a pair
        // glued to the previous token is a generics closer (`Vec<Vec<u8>>`)
        // — `cargo fmt` (CI-enforced) guarantees the spacing.
        if (absint::double_punct(toks, i, '<') || absint::double_punct(toks, i, '>'))
            && (i == 0 || !absint::glued(&toks[i - 1], &toks[i]))
        {
            let assign = toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('=') && absint::glued(&toks[i + 1], n));
            out.push(AbsSite {
                tok: i,
                kind: AbsSiteKind::Shift { assign },
            });
            i += if assign { 3 } else { 2 };
            continue;
        }
        if t.is_ident("wrapping_add")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(site) = wrap_index_site(toks, &body, i) {
                out.push(site);
            }
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            let target = toks.get(i + 1).and_then(|n| match n.text.as_str() {
                "u8" => Some(absint::IntTy::U8),
                "u16" => Some(absint::IntTy::U16),
                "u32" => Some(absint::IntTy::U32),
                _ => None,
            });
            if let Some(target) = target {
                out.push(AbsSite {
                    tok: i,
                    kind: AbsSiteKind::Cast { target },
                });
            }
        }
        i += 1;
    }
    out
}

/// Classifies a `.wrapping_add(` at `i` as an R1 flattened-index site:
/// the receiver chain must contain `wrapping_mul` directly, or be a
/// single identifier `let`-bound from an expression containing it.
fn wrap_index_site(toks: &[Token], body: &Range<usize>, i: usize) -> Option<AbsSite> {
    let rcv_start = absint::operand_start_before(toks, i - 1)?;
    let rcv = rcv_start..i - 1;
    let has_mul = toks[rcv.clone()].iter().any(|t| t.is_ident("wrapping_mul"));
    let from_mul_let = !has_mul
        && rcv.len() == 1
        && toks[rcv.start].kind == TokKind::Ident
        && let_binds_mul(toks, body.start..rcv.start, &toks[rcv.start].text);
    if !has_mul && !from_mul_let {
        return None;
    }
    // `close` is one past the chain's closing paren (`close_of` is
    // past-the-end), so the statement's `;` sits exactly at `close`.
    let close = absint::close_of(toks, i + 1, body.end);
    // `let name = <chain>;` — the binding's uses carry the obligation.
    let let_name = (toks.get(close).is_some_and(|n| n.is_punct(';'))
        && rcv_start >= 3
        && toks[rcv_start - 1].is_punct('='))
    .then(|| {
        let name_at = rcv_start - 2;
        let kw = rcv_start - 3;
        let is_let = toks[kw].is_ident("let")
            || (toks[kw].is_ident("mut") && kw >= 1 && toks[kw - 1].is_ident("let"));
        (toks[name_at].kind == TokKind::Ident && is_let).then(|| toks[name_at].text.clone())
    })
    .flatten();
    Some(AbsSite {
        tok: i,
        kind: AbsSiteKind::WrapIndex {
            rcv_start,
            close,
            let_name,
        },
    })
}

/// Is there a lexically-earlier `let [mut] name = ... wrapping_mul ...;`?
fn let_binds_mul(toks: &[Token], range: Range<usize>, name: &str) -> bool {
    for k in range.clone() {
        if !toks[k].is_ident("let") {
            continue;
        }
        let mut j = k + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if !toks
            .get(j)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
            || !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
        {
            continue;
        }
        let mut m = j + 2;
        while m < range.end && !toks[m].is_punct(';') {
            if toks[m].is_ident("wrapping_mul") {
                return true;
            }
            m += 1;
        }
    }
    false
}

/// Is token `k` inside the parentheses of a checked accessor call
/// (`.get(..)` / `.get_mut(..)`)? Out-of-range indices through those
/// come back as `None` instead of corrupting state.
fn checked_get_encloses(toks: &[Token], start: usize, k: usize) -> bool {
    let mut depth = 0i32;
    let mut j = k;
    while j > start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                return t.is_punct('(')
                    && j > 0
                    && (toks[j - 1].is_ident("get") || toks[j - 1].is_ident("get_mut"));
            }
            depth -= 1;
        }
    }
    false
}

/// Are all uses of `name` after `from` inside checked accessors? (No
/// uses at all also passes — a dead binding indexes nothing.)
fn uses_all_checked(toks: &[Token], body: &Range<usize>, from: usize, name: &str) -> bool {
    for k in from..body.end {
        let t = &toks[k];
        if t.kind != TokKind::Ident || t.text != name {
            continue;
        }
        if k > 0 && toks[k - 1].is_punct('.') {
            continue; // a field of the same name, not the binding
        }
        if !checked_get_encloses(toks, body.start, k) {
            return false;
        }
    }
    true
}

/// The abstract-interpretation rules: B1 (shift safety), R1
/// (packed-index provenance), T1 (lossless truncation) and the stale-T1
/// waiver-hygiene pass. Proofs run over [`crate::absint`]'s interval +
/// known-bits domain, seeded from the workspace (consts, parameter
/// types, one-level call hulls, constructor field facts).
fn absint_rules(ws: &Workspace, findings: &mut Vec<Finding>) {
    let aws = absint::AbsintWorkspace::build(ws);
    // Lines (per file) holding a T1 site the domain could NOT prove:
    // these are the lines where a T1 waiver is load-bearing.
    let mut t1_unproven: BTreeMap<usize, BTreeSet<u32>> = BTreeMap::new();
    for (f, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        if !in_unit_scope(&file.path) || info.in_test {
            continue;
        }
        let toks = &file.tokens;
        let body = info.item.body.clone();
        let nested: Vec<Range<usize>> = ws
            .fns
            .iter()
            .filter(|o| {
                o.file == info.file
                    && o.item.span.start > info.item.span.start
                    && o.item.span.end <= info.item.span.end
            })
            .map(|o| o.item.span.clone())
            .collect();
        let sites = collect_absint_sites(toks, body.clone(), &nested);
        if sites.is_empty() {
            continue;
        }
        let fa = aws.solve(ws, f);
        let ctx = aws.ctx_for(ws, f);
        for site in sites {
            let at = &toks[site.tok];
            let (line, col) = (at.line, at.col);
            // Unreachable node: the site is dead code, vacuously safe.
            let Some(env) = fa.env_at(&ctx, site.tok) else {
                continue;
            };
            match site.kind {
                AbsSiteKind::Shift { assign } => {
                    let lhs_ty = absint::operand_start_before(toks, site.tok)
                        .and_then(|st| absint::eval(&ctx, &env, st..site.tok))
                        .and_then(|v| v.ty);
                    // Unknown shifted type (e.g. an unsuffixed literal):
                    // no width to check against — documented hole.
                    let Some(ty) = lhs_ty else { continue };
                    let width = i128::from(ty.bits());
                    let amt_start = site.tok + 2 + usize::from(assign);
                    let amt_end = absint::shift_amount_end(toks, amt_start, body.end);
                    let amt = absint::eval(&ctx, &env, amt_start..amt_end);
                    let proven = amt.as_ref().is_some_and(|a| a.min >= 0 && a.max < width);
                    if !proven && !file.in_tests(line) && !file.allows.allows(Rule::B1, line) {
                        let got = amt
                            .map(|a| absint::fmt_val(&a))
                            .unwrap_or_else(|| "unknown".to_string());
                        findings.push(finding(
                            ws,
                            Rule::B1,
                            info.file,
                            line,
                            col,
                            format!(
                                "shift amount not provably < {} (the width of `{}`); inferred {got} — an oversized shift panics in debug and wraps the amount in release, so the kernel silently computes the wrong mask",
                                ty.bits(),
                                ty.name(),
                            ),
                        ));
                    }
                }
                AbsSiteKind::WrapIndex {
                    rcv_start,
                    close,
                    let_name,
                } => {
                    let full = absint::eval(&ctx, &env, rcv_start..close);
                    // Proven: the un-wrapped value stays strictly below
                    // the type max, so the wrapping ops never wrapped
                    // (the eval returns the full type range on any
                    // possible wrap).
                    let proven = full
                        .as_ref()
                        .is_some_and(|v| v.ty.is_some_and(|t| v.max < t.max_val()));
                    let inert = match &let_name {
                        Some(name) => uses_all_checked(toks, &body, close + 1, name),
                        None => checked_get_encloses(toks, body.start, rcv_start),
                    };
                    if !proven
                        && !inert
                        && !file.in_tests(line)
                        && !file.allows.allows(Rule::R1, line)
                    {
                        findings.push(finding(
                            ws,
                            Rule::R1,
                            info.file,
                            line,
                            col,
                            "flattened arena index not provably in range and not confined to checked accessors; a wrapped index reads the wrong slot as an \"inert\" wrong result — prove the bound, route every use through `.get(..)`, or waive with the construction-time invariant".to_string(),
                        ));
                    }
                }
                AbsSiteKind::Cast { target } => {
                    let val = absint::operand_start_before(toks, site.tok)
                        .and_then(|st| absint::eval(&ctx, &env, st..site.tok));
                    // An unsigned source no wider than the target cannot
                    // truncate: not an obligation at all.
                    if let Some(v) = &val {
                        if let Some(src) = v.ty {
                            if !src.signed() && src.bits() <= target.bits() {
                                continue;
                            }
                        }
                    }
                    let proven = val
                        .as_ref()
                        .is_some_and(|v| v.min >= 0 && v.max <= target.max_val());
                    if !proven && !file.in_tests(line) {
                        t1_unproven.entry(info.file).or_default().insert(line);
                        if !file.allows.allows(Rule::T1, line) {
                            let got = val
                                .map(|v| absint::fmt_val(&v))
                                .unwrap_or_else(|| "unknown".to_string());
                            findings.push(finding(
                                ws,
                                Rule::T1,
                                info.file,
                                line,
                                col,
                                format!(
                                    "narrowing `as {}` not provably value-preserving; inferred {got} — a truncated store corrupts packed metadata without a crash",
                                    target.name(),
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    // Stale-T1 waiver hygiene: a justified T1 waiver that covers no
    // unproven cast waives nothing — it is dead weight that will
    // silently swallow the next real finding on that line.
    for (idx, file) in ws.files.iter().enumerate() {
        if !in_unit_scope(&file.path) {
            continue;
        }
        let unproven = t1_unproven.get(&idx);
        for line in file.allows.justified_lines(Rule::T1) {
            if file.in_tests(line) {
                continue;
            }
            let used = unproven.is_some_and(|s| s.contains(&line) || s.contains(&(line + 1)));
            if !used {
                findings.push(finding(
                    ws,
                    Rule::W1,
                    idx,
                    line,
                    1,
                    "stale `T1` waiver: no unproven narrowing cast on this or the next line — remove it".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect();
        scan_model(&owned, &AnalysisConfig::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn p2_reports_the_shortest_transitive_path() {
        let found = scan(&[(
            "crates/sfp/src/lib.rs",
            "fn deep(v: Option<u8>) -> u8 { v.unwrap() }\n\
             fn mid(v: Option<u8>) -> u8 { deep(v) }\n\
             pub fn entry(v: Option<u8>) -> u8 { mid(v) }\n",
        )]);
        let p2: Vec<&Finding> = found.iter().filter(|f| f.rule == "P2").collect();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].line, 3);
        assert!(p2[0].message.contains("entry (crates/sfp/src/lib.rs:3)"));
        assert!(p2[0].message.contains("mid (crates/sfp/src/lib.rs:2)"));
        assert!(p2[0].message.contains("deep (crates/sfp/src/lib.rs:1)"));
        assert!(p2[0]
            .message
            .contains("`.unwrap()` at crates/sfp/src/lib.rs:1"));
    }

    #[test]
    fn p2_respects_waivers_and_test_code() {
        let clean = scan(&[(
            "crates/sfp/src/lib.rs",
            "fn deep(v: Option<u8>) -> u8 { v.unwrap() } // ldis: allow(P1, \"guarded by caller\")\n\
             pub fn entry(v: Option<u8>) -> u8 { deep(v) }\n\
             #[cfg(test)]\n\
             mod tests { pub fn t(v: Option<u8>) -> u8 { v.unwrap() } }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "P2"), "{clean:?}");
    }

    #[test]
    fn p2_ignores_panics_outside_sim_core_entry_crates() {
        // A panic in the experiments crate is in panic scope, but only
        // sim-core pub fns are entry points; a pub fn in workloads (not a
        // P2 crate) reaching it is not reported.
        let found = scan(&[(
            "crates/workloads/src/lib.rs",
            "pub fn entry(v: Option<u8>) -> u8 { v.unwrap() }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "P2"));
    }

    #[test]
    fn u1_flags_cross_unit_arithmetic_and_indexing() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(addr: u64, line_addr: u64, words: &[u64]) -> u64 {\n\
             let x = addr + line_addr;\n\
             let w = words[addr as usize];\n\
             x + w\n\
             }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 2, "{u1:?}");
        assert!(u1[0].message.contains("cross-unit `+`"));
        assert!(u1[1].message.contains("indexing with a byte-address"));
    }

    #[test]
    fn u1_tracks_geometry_chains_and_newtype_misuse() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(geom: &LineGeometry, addr: Addr, store: &[u64]) -> u64 {\n\
             let byte = addr.raw();\n\
             let _bad = LineAddr::new(byte);\n\
             store[addr.raw() as usize]\n\
             }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 2, "{u1:?}");
        assert!(u1[0]
            .message
            .contains("`LineAddr::new` called with a byte-address"));
        assert!(u1[1].message.contains("indexing with a byte-address"));
    }

    #[test]
    fn u1_accepts_proper_conversions() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "pub fn f(geom: &LineGeometry, addr: Addr, store: &[u64]) -> u64 {\n\
             let w = geom.word_index(addr).as_usize();\n\
             let line = geom.line_addr(addr);\n\
             let _back = geom.line_base(line);\n\
             store[w]\n\
             }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "U1"), "{found:?}");
    }

    #[test]
    fn u1_checks_call_argument_units() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "fn lookup(word_idx: usize) -> u64 { word_idx as u64 }\n\
             pub fn f(addr: u64) -> u64 { lookup(addr as usize) }\n",
        )]);
        let u1: Vec<&Finding> = found.iter().filter(|f| f.rule == "U1").collect();
        assert_eq!(u1.len(), 1, "{u1:?}");
        assert!(u1[0].message.contains("expects a word-index"));
    }

    #[test]
    fn d3_flags_shared_float_accumulators_and_closure_sums() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(cells: &[u64]) -> f64 {\n\
             let total = Mutex::new(0.0f64);\n\
             sweep(cells, |c| { let mpki = *c as f64; *total.lock().unwrap() += mpki; });\n\
             let t = *total.lock().unwrap(); t\n\
             }\n",
        )]);
        let d3: Vec<&Finding> = found.iter().filter(|f| f.rule == "D3").collect();
        assert_eq!(d3.len(), 2, "{d3:?}");
        assert!(d3[0].message.contains("shared `Mutex`"));
        assert!(d3[1].message.contains("float `+=`"));
    }

    #[test]
    fn d3_is_silent_on_canonical_order_reduction() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(cells: &[u64]) -> f64 {\n\
             let per_cell: Vec<f64> = sweep(cells, |c| *c as f64);\n\
             let mut total = 0.0;\n\
             for v in &per_cell { total += v; }\n\
             total\n\
             }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "D3"), "{found:?}");
    }

    #[test]
    fn name_unit_matches_whole_parts_only() {
        assert_eq!(name_unit("addr"), Some(Unit::Byte));
        assert_eq!(name_unit("byte_addr"), Some(Unit::Byte));
        assert_eq!(name_unit("line_addr"), Some(Unit::Line));
        assert_eq!(name_unit("word_idx"), Some(Unit::Word));
        assert_eq!(name_unit("set_index"), Some(Unit::Set));
        assert_eq!(name_unit("offset"), None, "`offset` must not match `set`");
        assert_eq!(name_unit("deadline"), None);
        assert_eq!(name_unit("words"), None);
    }

    #[test]
    fn s1_flags_literal_seed_and_accepts_derived() {
        let found = scan(&[(
            "crates/core/src/fixture.rs",
            "pub fn bad() -> SimRng { SimRng::new(0x1234) }\n\
             pub fn good(seed: u64) -> SimRng {\n\
             SimRng::new(SimRng::derive_seed_chain(seed, &[1]))\n\
             }\n\
             pub fn pass_through(cell_seed: u64) -> SimRng { SimRng::new(cell_seed) }\n",
        )]);
        let s1: Vec<&Finding> = found.iter().filter(|f| f.rule == "S1").collect();
        assert_eq!(s1.len(), 1, "{s1:?}");
        assert_eq!(s1[0].line, 1);
        assert!(s1[0].message.contains("non-derived"));
    }

    #[test]
    fn s1_taint_is_branch_sensitive() {
        // `s` is rebound to a literal on ONE branch: the must-join at the
        // merge point kills the taint, so the construction is flagged.
        let found = scan(&[(
            "crates/core/src/fixture.rs",
            "pub fn f(seed: u64, flip: bool) -> SimRng {\n\
             let mut s = SimRng::derive_seed(seed, 1, 2);\n\
             if flip { s = 99; }\n\
             SimRng::new(s)\n\
             }\n",
        )]);
        let s1: Vec<&Finding> = found.iter().filter(|f| f.rule == "S1").collect();
        assert_eq!(s1.len(), 1, "{s1:?}");
        assert_eq!(s1[0].line, 4);

        // Rebinding to another derived value on that branch keeps it clean.
        let clean = scan(&[(
            "crates/core/src/fixture.rs",
            "pub fn f(seed: u64, flip: bool) -> SimRng {\n\
             let mut s = SimRng::derive_seed(seed, 1, 2);\n\
             if flip { s = SimRng::derive_seed(seed, 3, 4); }\n\
             SimRng::new(s)\n\
             }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "S1"), "{clean:?}");
    }

    #[test]
    fn s1_flags_rng_reuse_after_parallel_capture() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(seed: u64, cells: &[u64]) -> u64 {\n\
             let mut rng = SimRng::new(seed);\n\
             let out = sweep(cells, |c| c + rng.next_u64());\n\
             rng.next_u64() + out[0]\n\
             }\n",
        )]);
        let s1: Vec<&Finding> = found.iter().filter(|f| f.rule == "S1").collect();
        assert_eq!(s1.len(), 1, "{s1:?}");
        assert_eq!(s1[0].line, 4);
        assert!(s1[0].message.contains("after a parallel region"));

        // Forking a throwaway stream for the region keeps the parent usable.
        let clean = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(seed: u64, cells: &[u64]) -> u64 {\n\
             let mut rng = SimRng::new(seed);\n\
             let mut worker = rng.fork();\n\
             let out = sweep(cells, |c| c + worker.next_u64());\n\
             rng.next_u64() + out[0]\n\
             }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "S1"), "{clean:?}");
    }

    #[test]
    fn s1_flags_salt_collisions_across_files() {
        let found = scan(&[
            (
                "crates/core/src/a.rs",
                "pub fn a(seed: u64) -> u64 { SimRng::derive_seed_chain(seed, &[3, 0x10 + 1]) }\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub fn b(seed: u64) -> u64 { SimRng::derive_seed_chain(seed, &[3, 17]) }\n",
            ),
            (
                "crates/core/src/c.rs",
                "pub fn c(seed: u64) -> u64 { SimRng::derive_seed_chain(seed, &[3, 18]) }\n",
            ),
        ]);
        let s1: Vec<&Finding> = found.iter().filter(|f| f.rule == "S1").collect();
        assert_eq!(s1.len(), 1, "{s1:?}");
        assert_eq!(s1[0].path, "crates/core/src/b.rs");
        assert!(s1[0].message.contains("crates/core/src/a.rs:1"), "{s1:?}");
    }

    #[test]
    fn s1_salt_collision_resolves_stable_id_and_skips_dynamic_salts() {
        // Identical stable_id salts collide; a runtime-variable salt makes
        // the site unresolvable and exempt rather than a false positive.
        let found = scan(&[(
            "crates/core/src/fixture.rs",
            "pub fn f(seed: u64, i: u64) -> (u64, u64, u64) {\n\
             let a = SimRng::derive_seed_chain(seed, &[stable_id(\"woc\")]);\n\
             let b = SimRng::derive_seed_chain(seed, &[stable_id(\"woc\")]);\n\
             let c = SimRng::derive_seed_chain(seed, &[i]);\n\
             (a, b, c)\n\
             }\n",
        )]);
        let s1: Vec<&Finding> = found.iter().filter(|f| f.rule == "S1").collect();
        assert_eq!(s1.len(), 1, "{s1:?}");
        assert_eq!(s1[0].line, 3);
        assert!(s1[0].message.contains("stable_id(\"woc\")"));
    }

    #[test]
    fn l2_flags_double_acquire_and_lock_order_cycles() {
        let double = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn f(tasks: &Mutex<u64>) -> u64 {\n\
             let a = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             let b = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             *a + *b\n\
             }\n",
        )]);
        let l2: Vec<&Finding> = double.iter().filter(|f| f.rule == "L2").collect();
        assert!(
            l2.iter()
                .any(|f| f.line == 3 && f.message.contains("acquired again")),
            "{l2:?}"
        );

        let cycle = scan(&[(
            "crates/experiments/src/fixture.rs",
            "pub fn ab(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {\n\
             let a = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             let b = slots.lock().unwrap_or_else(|e| e.into_inner());\n\
             *a + *b\n\
             }\n\
             pub fn ba(tasks: &Mutex<u64>, slots: &Mutex<u64>) -> u64 {\n\
             let b = slots.lock().unwrap_or_else(|e| e.into_inner());\n\
             let a = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             *a + *b\n\
             }\n",
        )]);
        let l2: Vec<&Finding> = cycle.iter().filter(|f| f.rule == "L2").collect();
        assert!(
            l2.iter().any(|f| f.message.contains("lock-order cycle")),
            "{l2:?}"
        );
    }

    #[test]
    fn l2_flags_panic_capable_call_under_lock_but_not_after_drop() {
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "fn helper(v: Option<u8>) -> u8 { v.unwrap() }\n\
             pub fn f(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {\n\
             let g = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             helper(v)\n\
             }\n",
        )]);
        let l2: Vec<&Finding> = found.iter().filter(|f| f.rule == "L2").collect();
        assert!(
            l2.iter()
                .any(|f| f.line == 4 && f.message.contains("can panic while lock `tasks`")),
            "{l2:?}"
        );

        let clean = scan(&[(
            "crates/experiments/src/fixture.rs",
            "fn helper(v: Option<u8>) -> u8 { v.unwrap() }\n\
             pub fn f(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {\n\
             let g = tasks.lock().unwrap_or_else(|e| e.into_inner());\n\
             drop(g);\n\
             helper(v)\n\
             }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "L2"), "{clean:?}");
    }

    #[test]
    fn l2_temporary_guard_releases_at_statement_end() {
        // No named guard: the temporary drops at the `;`, so the later
        // panic-capable call runs lock-free.
        let found = scan(&[(
            "crates/experiments/src/fixture.rs",
            "fn helper(v: Option<u8>) -> u8 { v.unwrap() }\n\
             pub fn f(tasks: &Mutex<u64>, v: Option<u8>) -> u8 {\n\
             *tasks.lock().unwrap_or_else(|e| e.into_inner()) = 7;\n\
             helper(v)\n\
             }\n",
        )]);
        assert!(rules_of(&found).iter().all(|r| *r != "L2"), "{found:?}");
    }

    #[test]
    fn o1_flags_counter_ops_and_respects_waivers() {
        let found = scan(&[(
            "crates/cache/src/fixture.rs",
            "pub struct FixStats { pub hits: u64, pub label: String }\n\
             pub fn f(s: &mut FixStats, n: u64) -> u64 {\n\
             s.hits += n;\n\
             // ldis: allow(O1, \"bounded by the access budget\")\n\
             s.hits += 1;\n\
             s.hits + 3\n\
             }\n",
        )]);
        let o1: Vec<&Finding> = found.iter().filter(|f| f.rule == "O1").collect();
        assert_eq!(o1.len(), 2, "{o1:?}");
        assert_eq!((o1[0].line, o1[1].line), (3, 6));
        assert!(o1[0].message.contains("`+=` on stats counter `hits`"));

        // Saturating bumps and non-counter fields stay silent.
        let clean = scan(&[(
            "crates/cache/src/fixture.rs",
            "pub struct FixStats { pub hits: u64 }\n\
             pub fn f(s: &mut FixStats, widths: &[u64]) -> u64 {\n\
             s.hits.bump();\n\
             s.hits.saturating_add(widths[0])\n\
             }\n",
        )]);
        assert!(rules_of(&clean).iter().all(|r| *r != "O1"), "{clean:?}");
    }

    #[test]
    fn o1_flags_line_geometry_shift_math() {
        let found = scan(&[(
            "crates/mem/src/fixture.rs",
            "impl LineGeometry {\n\
             pub fn base(&self, line_addr: u64) -> u64 { line_addr << self.line_shift }\n\
             }\n",
        )]);
        let o1: Vec<&Finding> = found.iter().filter(|f| f.rule == "O1").collect();
        assert_eq!(o1.len(), 1, "{o1:?}");
        assert!(o1[0].message.contains("LineGeometry"));
    }
}
