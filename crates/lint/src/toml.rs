//! A minimal TOML-subset reader for `lint.toml`.
//!
//! The offline toolchain has no `toml` crate, and the baseline file only
//! needs a sliver of the format: comments, `[table]` headers, `[[array]]`
//! headers, and `key = "string" | integer | true | false` pairs. Anything
//! outside that subset is a hard error so a malformed baseline can never
//! silently allow new debt.

use std::collections::BTreeMap;

/// A scalar value in the supported TOML subset.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A double-quoted string (supports `\"`, `\\`, `\n`, `\t`).
    Str(String),
    /// A decimal integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// One `[[name]]` entry (or the implicit root/`[name]` table): ordered
/// key → value pairs.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: the root table, named `[table]`s and `[[array]]`s.
#[derive(Debug, Default)]
pub struct Document {
    /// Keys defined before any header.
    pub root: Table,
    /// `[name]` tables.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays-of-tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

/// Parses the supported subset; returns a message with a line number on
/// any construct outside it.
pub fn parse(src: &str) -> Result<Document, String> {
    let mut doc = Document::default();
    // Where new keys currently go.
    enum Target {
        Root,
        Table(String),
        Array(String),
    }
    let mut target = Target::Root;

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::Array(name);
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = line[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {lineno}: bad key `{key}`"));
        }
        let value =
            parse_value(line[eq + 1..].trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = match &target {
            Target::Root => &mut doc.root,
            Target::Table(name) => doc
                .tables
                .get_mut(name)
                .ok_or_else(|| format!("line {lineno}: unknown table"))?,
            Target::Array(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .ok_or_else(|| format!("line {lineno}: unknown array table"))?,
        };
        table.insert(key.to_string(), value);
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err("unterminated string".into());
        };
        let mut s = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                s.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                other => return Err(format!("unsupported escape `\\{:?}`", other)),
            }
        }
        return Ok(Value::Str(s));
    }
    text.replace('_', "")
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{text}`"))
}

/// Escapes a string for emission inside double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arrays_of_tables() {
        let doc = parse(
            "# header comment\n\
             version = 1\n\n\
             [[allow]]\n\
             rule = \"P1\"\n\
             path = \"crates/cache/src/set.rs\"\n\
             count = 2\n\
             justification = \"documented # panic\"\n\n\
             [[allow]]\n\
             rule = \"P1\"\n\
             count = 1\n",
        )
        .expect("parses");
        assert_eq!(doc.root["version"], Value::Int(1));
        let allows = &doc.arrays["allow"];
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0]["rule"].as_str(), Some("P1"));
        assert_eq!(allows[0]["count"].as_int(), Some(2));
        assert_eq!(
            allows[0]["justification"].as_str(),
            Some("documented # panic")
        );
        assert_eq!(allows[1]["count"].as_int(), Some(1));
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("key = [1, 2]").is_err());
        assert!(parse("just a line").is_err());
        assert!(parse("key = \"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "say \"hi\"\\path\nnext";
        let doc = parse(&format!("k = \"{}\"", escape(original))).expect("parses");
        assert_eq!(doc.root["k"].as_str(), Some(original));
    }
}
