//! A minimal JSON reader for validating golden snapshots.
//!
//! The golden files under `tests/golden/` are emitted by the workspace's
//! own canonical-JSON writer (`ldis-experiments::report`), so this reader
//! only needs to parse well-formed JSON; it exists because the offline
//! toolchain has no serde. Numbers are kept as their source text so the
//! C1 rule can distinguish integers from floats without precision games.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its literal source text.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The literal number text, if this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while matches!(chars.get(*pos), Some(' ' | '\t' | '\n' | '\r')) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_obj(chars, pos),
        Some('[') => parse_arr(chars, pos),
        Some('"') => parse_str(chars, pos).map(Json::Str),
        Some('t') => parse_lit(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_num(chars, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}", pos = *pos)),
    }
}

fn parse_lit(chars: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    for c in lit.chars() {
        expect(chars, pos, c)?;
    }
    Ok(value)
}

fn parse_num(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if chars.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while matches!(chars.get(*pos), Some(c) if c.is_ascii_digit() || "+-.eE".contains(*c)) {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at offset {start}"));
    }
    Ok(Json::Num(chars[start..*pos].iter().collect()))
}

fn parse_str(chars: &[char], pos: &mut usize) -> Result<String, String> {
    expect(chars, pos, '"')?;
    let mut s = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *pos += 1;
                return Ok(s);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars.iter().skip(*pos + 1).take(4).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(c) => {
                s.push(*c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_obj(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '{')?;
    let mut pairs = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_str(chars, pos)?;
        skip_ws(chars, pos);
        expect(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        pairs.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => {
                *pos += 1;
            }
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(
            r#"{"experiment": "motivation", "seed": 42, "rows": [{"mpki": 1.5, "ok": true}], "none": null}"#,
        )
        .expect("parses");
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("motivation")
        );
        assert_eq!(doc.get("seed").and_then(Json::as_num), Some("42"));
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("mpki").and_then(Json::as_num), Some("1.5"));
        assert_eq!(rows[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("none"), Some(&Json::Null));
    }

    #[test]
    fn decodes_escapes() {
        let doc = parse(r#"{"s": "a\"b\\c\ndA"}"#).expect("parses");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"k" 1}"#).is_err());
    }
}
