//! Abstract interpretation over the per-function CFGs: an interval
//! domain (min/max per integer local) paired with a known-bits domain
//! (mask of bits provably zero), solved to fixpoint with the
//! [`crate::dataflow`] worklist engine.
//!
//! The B1 (shift safety), R1 (packed-index provenance) and T1 (lossless
//! truncation) rules in [`crate::analyze`] read per-site environments out
//! of this module and *prove sites safe to suppress findings*. That
//! polarity is what makes over-approximation sound here: any value this
//! module cannot bound evaluates to ⊤ ("could be anything"), which makes
//! the site unprovable and produces a finding (or requires a justified
//! waiver) — never a silent pass.
//!
//! Facts come from four seeding layers, weakest-first:
//!
//! 1. declared parameter types (`x: u8` ⇒ `x ∈ [0, 255]`);
//! 2. file-level `const` items, evaluated with the same engine;
//! 3. one level of call-graph propagation: a non-`pub` function's
//!    parameter is seeded with the hull of the constant arguments at
//!    every resolved call site (any non-constant site poisons the seed
//!    back to the declared-type range);
//! 4. constructor field facts: a field that is never written outside its
//!    type's constructors carries the join of its constructor values
//!    into every `self.field` read.
//!
//! On top of the seeds, branch refinement narrows ranges along CFG
//! edges (`if x < 16 { ... }`), at `assert!`/`debug_assert!` statements,
//! inside match arms with literal or `lo..=hi` patterns, and inside
//! block expressions embedded in a single statement node
//! (`let m = if w >= 16 { u16::MAX } else { (1 << w) - 1 };`).
//!
//! Documented unsoundnesses (all fail toward findings, not silent
//! passes, except where noted): variables are tracked by flat name, so
//! shadowing in an inner scope merges with the outer binding; arithmetic
//! on unsuffixed literals whose inferred type is unknown is assumed
//! non-wrapping; a non-`pub` function reachable only through a function
//! pointer still gets call-site seeds from its named call sites; and a
//! mutating method reached through auto-ref (`x.clone_from(..)`) is only
//! caught for the common container-method names listed in
//! [`MUTATING_METHODS`].
//!
//! Termination: the interval lattice is infinite-height, so after
//! [`WIDEN_AFTER`] visits to a node its bounds are snapped outward to a
//! fixed [`ANCHORS`] ladder; the known-bits mask only loses bits under
//! join. Should the safety valve in the solver still trip,
//! [`FnAbsint::env_at`] degrades every environment to ⊤ — all sites in
//! the function become unprovable, which is noisy but sound.

use crate::cfg::{Cfg, NodeId, NodeKind};
use crate::dataflow::{self, Analysis, Solution};
use crate::lexer::{TokKind, Token};
use crate::model::{FnId, Workspace};
use crate::rules;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Interval floor standing in for "unbounded below". A quarter of the
/// `i128` range keeps every transfer function's intermediate arithmetic
/// overflow-free without checked ops on every line.
pub const MIN_B: i128 = i128::MIN / 4;
/// Interval ceiling standing in for "unbounded above".
pub const MAX_B: i128 = i128::MAX / 4;

/// Number of solver visits to a node before its bounds are widened to
/// the [`ANCHORS`] ladder.
const WIDEN_AFTER: u32 = 4;

/// The widening ladder: bounds that have not stabilised after
/// [`WIDEN_AFTER`] visits snap outward to the nearest anchor. The
/// anchors are the bit-width landmarks the B1/T1 proofs care about, so
/// widening rarely costs a provable site.
const ANCHORS: &[i128] = &[
    MIN_B,
    -(1i128 << 63),
    -(1i128 << 31),
    -(1i128 << 15),
    -(1i128 << 7),
    -1,
    0,
    1,
    3,
    7,
    8,
    15,
    16,
    31,
    32,
    63,
    64,
    127,
    128,
    255,
    256,
    1023,
    4095,
    65535,
    1i128 << 24,
    (1i128 << 31) - 1,
    (1i128 << 32) - 1,
    (1i128 << 63) - 1,
    u64::MAX as i128,
    MAX_B,
];

/// Container methods that mutate their receiver through auto-ref; an
/// environment key followed by one of these is killed conservatively.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "rotate_left",
    "rotate_right",
    "fill",
    "extend",
    "truncate",
    "resize",
    "swap",
    "copy_from_slice",
    "clone_from",
    "retain",
    "drain",
    "take",
    "replace",
];

/// A primitive integer type, as named in source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntTy {
    U8,
    U16,
    U32,
    U64,
    U128,
    Usize,
    I8,
    I16,
    I32,
    I64,
    I128,
    Isize,
}

impl IntTy {
    /// Parses a type name; `None` for non-integer types.
    pub fn from_name(name: &str) -> Option<IntTy> {
        Some(match name {
            "u8" => IntTy::U8,
            "u16" => IntTy::U16,
            "u32" => IntTy::U32,
            "u64" => IntTy::U64,
            "u128" => IntTy::U128,
            "usize" => IntTy::Usize,
            "i8" => IntTy::I8,
            "i16" => IntTy::I16,
            "i32" => IntTy::I32,
            "i64" => IntTy::I64,
            "i128" => IntTy::I128,
            "isize" => IntTy::Isize,
            _ => return None,
        })
    }

    /// The type's bit width. `usize`/`isize` are modelled as 64-bit —
    /// the workspace only targets 64-bit hosts and a narrower model
    /// would be unsound there.
    pub fn bits(self) -> u32 {
        match self {
            IntTy::U8 | IntTy::I8 => 8,
            IntTy::U16 | IntTy::I16 => 16,
            IntTy::U32 | IntTy::I32 => 32,
            IntTy::U64 | IntTy::I64 | IntTy::Usize | IntTy::Isize => 64,
            IntTy::U128 | IntTy::I128 => 128,
        }
    }

    /// Is the type signed?
    pub fn signed(self) -> bool {
        matches!(
            self,
            IntTy::I8 | IntTy::I16 | IntTy::I32 | IntTy::I64 | IntTy::I128 | IntTy::Isize
        )
    }

    /// Smallest representable value (clamped to [`MIN_B`] for `i128`).
    pub fn min_val(self) -> i128 {
        if !self.signed() {
            return 0;
        }
        match self.bits() {
            128 => MIN_B,
            b => -(1i128 << (b - 1)),
        }
    }

    /// Largest representable value (clamped to [`MAX_B`] for 128-bit).
    pub fn max_val(self) -> i128 {
        match (self.signed(), self.bits()) {
            (_, 128) => MAX_B,
            (true, b) => (1i128 << (b - 1)) - 1,
            (false, b) => (1i128 << b) - 1,
        }
    }

    /// The type name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            IntTy::U8 => "u8",
            IntTy::U16 => "u16",
            IntTy::U32 => "u32",
            IntTy::U64 => "u64",
            IntTy::U128 => "u128",
            IntTy::Usize => "usize",
            IntTy::I8 => "i8",
            IntTy::I16 => "i16",
            IntTy::I32 => "i32",
            IntTy::I64 => "i64",
            IntTy::I128 => "i128",
            IntTy::Isize => "isize",
        }
    }
}

/// A `u128` with the low `n` bits set.
fn low_ones(n: u32) -> u128 {
    if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// Bit length of a non-negative value: the position one past its
/// highest set bit.
fn bit_len(v: i128) -> u32 {
    debug_assert!(v >= 0);
    128 - (v as u128).leading_zeros()
}

/// One abstract value: an interval `[min, max]`, a mask of bits
/// provably zero, and the static type when known.
///
/// The `zeros` mask is only meaningful for provably non-negative
/// values; [`AbsVal::canon`] clears it the moment the interval admits a
/// negative (two's-complement sign bits would make "provably zero"
/// claims wrong).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsVal {
    /// Static type, when derivable from a suffix, annotation or cast.
    pub ty: Option<IntTy>,
    /// Inclusive lower bound ([`MIN_B`] = unbounded).
    pub min: i128,
    /// Inclusive upper bound ([`MAX_B`] = unbounded).
    pub max: i128,
    /// Bits provably zero (0 = no knowledge).
    pub zeros: u128,
}

impl AbsVal {
    /// The unknown value: any type, any bounds.
    pub fn top() -> AbsVal {
        AbsVal {
            ty: None,
            min: MIN_B,
            max: MAX_B,
            zeros: 0,
        }
    }

    /// The unknown value of a known type: bounds are the type's range.
    pub fn ty_top(ty: IntTy) -> AbsVal {
        AbsVal {
            ty: Some(ty),
            min: ty.min_val(),
            max: ty.max_val(),
            zeros: 0,
        }
        .canon()
    }

    /// A single known value of optional type.
    pub fn exact(v: i128, ty: Option<IntTy>) -> AbsVal {
        AbsVal {
            ty,
            min: v,
            max: v,
            zeros: 0,
        }
        .canon()
    }

    /// An interval with no type knowledge.
    pub fn range(min: i128, max: i128) -> AbsVal {
        AbsVal {
            ty: None,
            min,
            max,
            zeros: 0,
        }
        .canon()
    }

    /// Restores the representation invariants: bounds clamped to the
    /// type and the global sentinels, `zeros` cleared when negatives
    /// are possible and otherwise extended with the high bits implied
    /// by `max` (and `max` tightened back through the value mask).
    pub fn canon(mut self) -> AbsVal {
        if let Some(ty) = self.ty {
            self.min = self.min.max(ty.min_val());
            self.max = self.max.min(ty.max_val());
        }
        self.min = self.min.clamp(MIN_B, MAX_B);
        self.max = self.max.clamp(MIN_B, MAX_B);
        if self.min > self.max {
            // Contradictory refinement: the program point is
            // unreachable. Collapse to a single point — any
            // over-approximation of the empty set is sound for proofs.
            self.max = self.min;
        }
        if self.min < 0 {
            self.zeros = 0;
        } else {
            self.zeros |= !low_ones(bit_len(self.max));
            let value_mask = !self.zeros;
            if value_mask < MAX_B as u128 {
                self.max = self.max.min(value_mask as i128);
            }
            if self.min > self.max {
                self.max = self.min;
            }
        }
        self
    }

    /// Lattice join (least upper bound): interval hull, intersection of
    /// known-zero bits, type kept only on agreement.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            ty: if self.ty == other.ty { self.ty } else { None },
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            zeros: self.zeros & other.zeros,
        }
        .canon()
    }

    /// Widening: snap `min` down and `max` up to the [`ANCHORS`]
    /// ladder, guaranteeing the ascending chain is finite. The
    /// known-bits mask is dropped rather than kept: a loop-carried
    /// value can shed one zero bit per iteration (e.g. an increment's
    /// carry), so an unstable mask would descend 128 rungs and blow
    /// the solver's visit cap; `canon` re-derives the high zero bits
    /// the widened `max` still implies.
    pub fn widen(&self) -> AbsVal {
        let min = ANCHORS
            .iter()
            .rev()
            .copied()
            .find(|&a| a <= self.min)
            .unwrap_or(MIN_B);
        let max = ANCHORS
            .iter()
            .copied()
            .find(|&a| a >= self.max)
            .unwrap_or(MAX_B);
        AbsVal {
            ty: self.ty,
            min,
            max,
            zeros: 0,
        }
        .canon()
    }

    /// Constrains this value with a declared type: the annotation is a
    /// typing guarantee, so intersecting is sound.
    pub fn with_ty(mut self, ty: IntTy) -> AbsVal {
        self.ty = Some(ty);
        self.canon()
    }

    /// Is every value in the interval non-negative?
    fn nonneg(&self) -> bool {
        self.min >= 0
    }

    /// Wrap check: if the ideal result interval exceeds the result
    /// type's range the operation may have wrapped, so all value
    /// knowledge is lost (the type range remains).
    fn wrap_check(self, ty: Option<IntTy>) -> AbsVal {
        match ty {
            Some(t) if self.min < t.min_val() || self.max > t.max_val() => AbsVal::ty_top(t),
            _ => AbsVal {
                ty: self.ty.or(ty),
                ..self
            }
            .canon(),
        }
    }

    /// `self + other` with wrap-to-⊤ on overflow of the common type.
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        AbsVal {
            ty,
            min: self.min.saturating_add(other.min),
            max: self.max.saturating_add(other.max),
            zeros: 0,
        }
        .wrap_check(ty)
    }

    /// `self - other` with wrap-to-⊤ on overflow of the common type.
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        AbsVal {
            ty,
            min: self.min.saturating_sub(other.max),
            max: self.max.saturating_sub(other.min),
            zeros: 0,
        }
        .wrap_check(ty)
    }

    /// `self * other` with wrap-to-⊤ on overflow of the common type.
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        let corners = [
            self.min.saturating_mul(other.min),
            self.min.saturating_mul(other.max),
            self.max.saturating_mul(other.min),
            self.max.saturating_mul(other.max),
        ];
        AbsVal {
            ty,
            min: corners.iter().copied().min().unwrap_or(MIN_B),
            max: corners.iter().copied().max().unwrap_or(MAX_B),
            zeros: 0,
        }
        .wrap_check(ty)
    }

    /// `self / other`; only the all-positive divisor, non-negative
    /// dividend case is modelled (everything the kernels use).
    pub fn div(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        if other.min >= 1 && self.nonneg() {
            AbsVal {
                ty,
                min: self.min / other.max.max(1),
                max: self.max / other.min,
                zeros: 0,
            }
            .canon()
        } else {
            top_of(ty)
        }
    }

    /// `self % other`: bounded by the divisor when the divisor is
    /// provably non-zero (Rust `%` keeps the dividend's sign).
    pub fn rem(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        if other.min >= 1 {
            AbsVal {
                ty,
                min: self.min.max(-(other.max - 1)).clamp(MIN_B, 0),
                max: self.max.min(other.max - 1).max(0),
                zeros: 0,
            }
            .canon()
        } else {
            top_of(ty)
        }
    }

    /// `self & other`. Zero bits of either side are zero in the result
    /// (sound regardless of sign); the interval is only bounded when at
    /// least one side is provably non-negative.
    pub fn bitand(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        let zeros = self.zeros | other.zeros;
        let mut nonneg_max = MAX_B;
        let mut any_nonneg = false;
        for side in [self, other] {
            if side.nonneg() {
                any_nonneg = true;
                nonneg_max = nonneg_max.min(side.max);
            }
        }
        if any_nonneg {
            AbsVal {
                ty,
                min: 0,
                max: nonneg_max,
                zeros,
            }
            .canon()
        } else {
            AbsVal {
                zeros,
                ..top_of(ty)
            }
            .canon()
        }
    }

    /// `self | other`: needs both sides non-negative for interval
    /// bounds; the result fits in the combined bit length.
    pub fn bitor(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        if self.nonneg() && other.nonneg() {
            AbsVal {
                ty,
                min: self.min.max(other.min),
                max: low_ones(bit_len(self.max).max(bit_len(other.max))).min(MAX_B as u128) as i128,
                zeros: self.zeros & other.zeros,
            }
            .canon()
        } else {
            top_of(ty)
        }
    }

    /// `self ^ other`: like `|` but the lower bound drops to zero.
    pub fn bitxor(&self, other: &AbsVal) -> AbsVal {
        let ty = common_ty(self.ty, other.ty);
        if self.nonneg() && other.nonneg() {
            AbsVal {
                ty,
                min: 0,
                max: low_ones(bit_len(self.max).max(bit_len(other.max))).min(MAX_B as u128) as i128,
                zeros: self.zeros & other.zeros,
            }
            .canon()
        } else {
            top_of(ty)
        }
    }

    /// `self << other`. The amount must be provably in range for the
    /// result type or all knowledge drops to the type range. Known-zero
    /// low bits are introduced by the shift itself.
    pub fn shl(&self, other: &AbsVal) -> AbsVal {
        let ty = self.ty;
        if !self.nonneg() || other.min < 0 || other.max >= 127 {
            return top_of(ty);
        }
        let (amt_min, amt_max) = (other.min as u32, other.max as u32);
        let min = self.min.checked_shl(amt_min).unwrap_or(MAX_B);
        let max = self.max.checked_shl(amt_max).unwrap_or(MAX_B);
        let zeros = if amt_min == amt_max {
            (self.zeros << amt_min) | low_ones(amt_min)
        } else {
            low_ones(amt_min)
        };
        AbsVal {
            ty,
            min,
            max,
            zeros,
        }
        .wrap_check(ty)
    }

    /// `self >> other` for non-negative values and amounts.
    pub fn shr(&self, other: &AbsVal) -> AbsVal {
        let ty = self.ty;
        if !self.nonneg() || other.min < 0 {
            return top_of(ty);
        }
        let amt_max = other.max.clamp(0, 127) as u32;
        let amt_min = other.min.clamp(0, 127) as u32;
        AbsVal {
            ty,
            min: self.min >> amt_max,
            max: self.max >> amt_min,
            zeros: 0,
        }
        .canon()
    }

    /// `-self`.
    pub fn neg(&self) -> AbsVal {
        AbsVal {
            ty: self.ty,
            min: -self.max,
            max: -self.min,
            zeros: 0,
        }
        .canon()
    }

    /// `self as ty`: lossless when the interval fits, otherwise the
    /// cast truncates/wraps and only the target type range remains.
    pub fn cast(&self, ty: IntTy) -> AbsVal {
        if self.min >= ty.min_val() && self.max <= ty.max_val() {
            AbsVal {
                ty: Some(ty),
                min: self.min,
                max: self.max,
                zeros: self.zeros,
            }
            .canon()
        } else {
            AbsVal::ty_top(ty)
        }
    }
}

/// The result type of a homogeneous binary op: kept on agreement or
/// when only one side knows it (Rust's typing makes both sides equal).
fn common_ty(a: Option<IntTy>, b: Option<IntTy>) -> Option<IntTy> {
    match (a, b) {
        (Some(x), Some(y)) if x == y => Some(x),
        (Some(x), Some(_)) => Some(x),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// ⊤ of an optional type.
fn top_of(ty: Option<IntTy>) -> AbsVal {
    match ty {
        Some(t) => AbsVal::ty_top(t),
        None => AbsVal::top(),
    }
}

/// The per-program-point fact: abstract values keyed by variable name
/// or field chain (`x`, `self.ways`, `pair.0`). A missing key is ⊤.
pub type Env = BTreeMap<String, AbsVal>;

/// Environment join: keys kept only when present (and joined) on both
/// sides — a key missing on either side is ⊤ and stays absent.
pub fn env_join(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb));
        }
    }
    out
}

/// Shared inputs of evaluation: the file's tokens and its `const` map.
pub struct EvalCtx<'a> {
    /// The file's full token stream (ranges index into it).
    pub toks: &'a [Token],
    /// File-level constants by bare name (`Self::X` resolves to `X`).
    pub consts: &'a BTreeMap<String, AbsVal>,
}

// ---------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------

/// Are two consecutive tokens glued in source (same line, adjacent
/// columns)? Distinguishes `<<` (one operator) from `< <` and, with
/// rustfmt-enforced spacing, generics from shifts.
pub(crate) fn glued(a: &Token, b: &Token) -> bool {
    a.line == b.line && a.col + a.text.len() as u32 == b.col
}

/// Is the token at `i` the first `Punct` of the two-character operator
/// `c c` (e.g. `<<`, `&&`)?
pub(crate) fn double_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks[i].is_punct(c)
        && toks.get(i + 1).is_some_and(|n| n.is_punct(c))
        && glued(&toks[i], &toks[i + 1])
}

/// Is the `Punct` at `i` part of a two-character operator with a
/// neighbour (so it must not be read as a standalone comparison)?
fn part_of_double(toks: &[Token], i: usize) -> bool {
    let c = match toks[i].text.chars().next() {
        Some(c) => c,
        None => return false,
    };
    (i > 0 && toks[i - 1].is_punct(c) && glued(&toks[i - 1], &toks[i]))
        || toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct(c) && glued(&toks[i], &toks[i + 1]))
}

/// Walks backwards from `end` (exclusive) over one member-chain
/// operand: `ident`, `self.field`, `pair.0.x` — identifiers joined by
/// `.` with identifier or tuple-index links. Returns the start index,
/// or `None` when the tokens before `end` are not a plain chain.
///
/// This deliberately replaces `analyze::operand_before` for absint
/// uses: that helper stops at `. 0` tuple links, which would make
/// `self.0.count_ones()` evaluate the literal `0` — unsound here.
fn chain_start(toks: &[Token], end: usize) -> Option<usize> {
    let mut i = end;
    loop {
        let t = toks.get(i.checked_sub(1)?)?;
        let is_link = t.kind == TokKind::Ident && !is_keyword(&t.text)
            || t.kind == TokKind::Int && i >= 2 && toks[i - 2].is_punct('.');
        if !is_link {
            return None;
        }
        i -= 1;
        if i >= 1 && toks[i - 1].is_punct('.') && i >= 2 {
            let prev = &toks[i - 2];
            if prev.kind == TokKind::Ident && !is_keyword(&prev.text) {
                i -= 1;
                continue;
            }
        }
        return Some(i);
    }
}

/// The environment key of a chain token range (`self . ways` →
/// `self.ways`), or `None` when the range is not a plain chain.
fn chain_key(toks: &[Token], range: Range<usize>) -> Option<String> {
    if range.is_empty() {
        return None;
    }
    let mut key = String::new();
    let mut want_ident = true;
    for t in &toks[range] {
        if want_ident {
            // An `Int` is only a tuple-index link (`pair.0`), never the
            // chain head — a literal is not a variable.
            let ok = t.kind == TokKind::Ident && !is_keyword(&t.text)
                || t.kind == TokKind::Int && !key.is_empty();
            if !ok {
                return None;
            }
            key.push_str(&t.text);
        } else if t.is_punct('.') {
            key.push('.');
        } else {
            return None;
        }
        want_ident = !want_ident;
    }
    (!want_ident).then_some(key)
}

/// Keywords that end a chain walk (`return x`, `as`, `if`, ...).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "as" | "if"
            | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "let"
            | "mut"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "fn"
            | "move"
            | "ref"
            | "const"
            | "static"
            | "unsafe"
            | "where"
            | "impl"
            | "dyn"
    )
}

/// Index just past the bracket matching the opener at `open`, clamped
/// to `limit`. All three bracket kinds count toward depth.
pub(crate) fn close_of(toks: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < limit {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    limit
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

/// Evaluates the expression in `range` to an abstract value. Returns
/// `None` when the tokens are not a parseable value expression (the
/// caller treats that as ⊤); a parseable expression over unknown
/// values returns ⊤ directly.
pub fn eval(ctx: &EvalCtx, env: &Env, range: Range<usize>) -> Option<AbsVal> {
    let range = strip_parens(ctx.toks, range);
    if range.is_empty() {
        return None;
    }
    // A top-level `if c { a } else { b }` expression joins both arms,
    // each refined by the condition's polarity.
    if ctx.toks[range.start].is_ident("if") {
        return eval_if(ctx, env, range);
    }
    let mut pos = range.start;
    let v = eval_bin(ctx, env, &mut pos, range.end, 0)?;
    (pos == range.end).then_some(v)
}

/// `if cond { a } else { b }` at value position.
fn eval_if(ctx: &EvalCtx, env: &Env, range: Range<usize>) -> Option<AbsVal> {
    let toks = ctx.toks;
    let open = body_open(toks, range.start + 1..range.end)?;
    let cond = range.start + 1..open;
    let then_end = close_of(toks, open, range.end);
    let then_range = open + 1..then_end.saturating_sub(1);
    if !toks.get(then_end).is_some_and(|t| t.is_ident("else")) {
        return None; // no else: not a value expression
    }
    let else_open = then_end + 1;
    if !toks.get(else_open).is_some_and(|t| t.is_punct('{')) {
        // `else if ...`: evaluate the chain as a nested if-expression.
        let mut then_env = env.clone();
        refine_cond(ctx, &mut then_env, cond.clone(), true);
        let mut else_env = env.clone();
        refine_cond(ctx, &mut else_env, cond, false);
        let a = eval_block(ctx, &then_env, then_range)?;
        let b = eval(ctx, &else_env, else_open..range.end)?;
        return Some(a.join(&b));
    }
    let else_end = close_of(toks, else_open, range.end);
    if else_end != range.end {
        return None;
    }
    let else_range = else_open + 1..else_end.saturating_sub(1);
    let mut then_env = env.clone();
    refine_cond(ctx, &mut then_env, cond.clone(), true);
    let mut else_env = env.clone();
    refine_cond(ctx, &mut else_env, cond, false);
    let a = eval_block(ctx, &then_env, then_range)?;
    let b = eval_block(ctx, &else_env, else_range)?;
    Some(a.join(&b))
}

/// A block at value position: only single-expression blocks (no `;` at
/// depth 0) are modelled.
fn eval_block(ctx: &EvalCtx, env: &Env, range: Range<usize>) -> Option<AbsVal> {
    let mut depth = 0i32;
    for i in range.clone() {
        let t = &ctx.toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return None;
        }
    }
    eval(ctx, env, range)
}

/// Removes one or more balanced outer parenthesis pairs.
fn strip_parens(toks: &[Token], mut range: Range<usize>) -> Range<usize> {
    while range.len() >= 2
        && toks[range.start].is_punct('(')
        && close_of(toks, range.start, range.end) == range.end
        && toks[range.end - 1].is_punct(')')
    {
        range = range.start + 1..range.end - 1;
    }
    range
}

/// First `{` at bracket depth 0 in `range`.
fn body_open(toks: &[Token], range: Range<usize>) -> Option<usize> {
    let mut depth = 0i32;
    for i in range {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(i);
        }
    }
    None
}

/// Binary operator levels from loosest to tightest (comparison and
/// lazy-boolean operators are not value operators here — hitting one
/// ends the expression, and the top-level caller rejects the leftover).
const LEVELS: &[&[&str]] = &[
    &["|"],
    &["^"],
    &["&"],
    &["<<", ">>"],
    &["+", "-"],
    &["*", "/", "%"],
];

fn eval_bin(ctx: &EvalCtx, env: &Env, pos: &mut usize, end: usize, level: usize) -> Option<AbsVal> {
    if level == LEVELS.len() {
        return eval_atom(ctx, env, pos, end);
    }
    let mut lhs = eval_bin(ctx, env, pos, end, level + 1)?;
    loop {
        let Some(op) = match_bin_op(ctx.toks, *pos, end, LEVELS[level]) else {
            return Some(lhs);
        };
        *pos += op.len(); // operators lex one Punct per character
        let rhs = eval_bin(ctx, env, pos, end, level + 1)?;
        lhs = match op {
            "|" => lhs.bitor(&rhs),
            "^" => lhs.bitxor(&rhs),
            "&" => lhs.bitand(&rhs),
            "<<" => lhs.shl(&rhs),
            ">>" => lhs.shr(&rhs),
            "+" => lhs.add(&rhs),
            "-" => lhs.sub(&rhs),
            "*" => lhs.mul(&rhs),
            "/" => lhs.div(&rhs),
            "%" => lhs.rem(&rhs),
            _ => return None,
        };
    }
}

/// Matches one of `ops` at `pos`, refusing single `<`/`>`/`&`/`|` that
/// are really part of a two-character operator (`<<`, `&&`, `<=`, ...).
fn match_bin_op<'a>(toks: &[Token], pos: usize, end: usize, ops: &[&'a str]) -> Option<&'a str> {
    ops.iter().copied().find(|op| {
        let n = op.len();
        if pos + n > end {
            return false;
        }
        let all = op.chars().enumerate().all(|(k, c)| {
            toks[pos + k].is_punct(c) && (k == 0 || glued(&toks[pos + k - 1], &toks[pos + k]))
        });
        if !all {
            return false;
        }
        // Reject when the operator continues into a longer one
        // (`<` of `<<` or `<=`, `&` of `&&`, `|` of `||`).
        if let Some(next) = toks.get(pos + n) {
            if glued(&toks[pos + n - 1], next) {
                let last = op.chars().last().unwrap_or(' ');
                if next.is_punct(last) || next.is_punct('=') {
                    return false;
                }
            }
        }
        if n == 1 {
            // A lone `<`/`>` would be a comparison; never a value op.
            let c = op.chars().next().unwrap_or(' ');
            if c == '<' || c == '>' {
                return false;
            }
        }
        true
    })
}

/// One atom with its postfix chain: literal, path, unary op, call,
/// method chain, field projection, `as` cast, `?`.
fn eval_atom(ctx: &EvalCtx, env: &Env, pos: &mut usize, end: usize) -> Option<AbsVal> {
    let toks = ctx.toks;
    let t = toks.get(*pos).filter(|_| *pos < end)?;
    let mut val: AbsVal;
    if t.is_punct('(') {
        let close = close_of(toks, *pos, end);
        val = eval(ctx, env, *pos + 1..close.saturating_sub(1))?;
        *pos = close;
    } else if t.is_punct('-') {
        *pos += 1;
        let v = eval_atom(ctx, env, pos, end)?;
        return Some(v.neg());
    } else if t.is_punct('!') {
        *pos += 1;
        let v = eval_atom(ctx, env, pos, end)?;
        return Some(top_of(v.ty));
    } else if t.is_punct('&') {
        // A shared borrow reads through transparently; `&mut` places
        // are handled by the kill scan, so give up value knowledge.
        *pos += 1;
        if toks.get(*pos).is_some_and(|m| m.is_ident("mut")) {
            *pos += 1;
            let _ = eval_atom(ctx, env, pos, end)?;
            return Some(AbsVal::top());
        }
        return eval_atom(ctx, env, pos, end);
    } else if t.is_punct('*') {
        // Deref: value unknown.
        *pos += 1;
        let _ = eval_atom(ctx, env, pos, end)?;
        return Some(AbsVal::top());
    } else if t.kind == TokKind::Int {
        let v = rules::parse_int(&t.text)?;
        let ty = int_suffix(&t.text);
        val = AbsVal::exact(v, ty);
        *pos += 1;
    } else if t.kind == TokKind::Ident && !is_keyword(&t.text) {
        val = eval_path(ctx, env, pos, end)?;
    } else {
        return None;
    }
    // Postfix chain.
    loop {
        let Some(t) = toks.get(*pos).filter(|_| *pos < end) else {
            return Some(val);
        };
        if t.is_punct('?') {
            *pos += 1;
        } else if t.is_ident("as") {
            let ty_tok = toks.get(*pos + 1).filter(|_| *pos + 1 < end)?;
            match IntTy::from_name(&ty_tok.text) {
                Some(ty) => val = val.cast(ty),
                None => val = AbsVal::top(),
            }
            *pos += 2;
        } else if t.is_punct('.') {
            let next = toks.get(*pos + 1).filter(|_| *pos + 1 < end)?;
            if next.kind == TokKind::Int {
                // Tuple projection: unknown component.
                val = AbsVal::top();
                *pos += 2;
            } else if next.kind == TokKind::Ident {
                let name = next.text.clone();
                let after = *pos + 2;
                if toks
                    .get(after)
                    .filter(|_| after < end)
                    .is_some_and(|p| p.is_punct('('))
                {
                    let close = close_of(toks, after, end);
                    let (args, _) = rules::split_args(toks, after)?;
                    val = eval_method(ctx, env, &val, &name, &args)?;
                    *pos = close;
                } else {
                    // Field projection on a non-chain receiver: unknown.
                    val = AbsVal::top();
                    *pos += 2;
                }
            } else {
                return None;
            }
        } else if t.is_punct('[') {
            let close = close_of(toks, *pos, end);
            val = AbsVal::top();
            *pos = close;
        } else {
            return Some(val);
        }
    }
}

/// The integer-literal type suffix, if any.
fn int_suffix(text: &str) -> Option<IntTy> {
    [
        IntTy::U128,
        IntTy::Usize,
        IntTy::U16,
        IntTy::U32,
        IntTy::U64,
        IntTy::U8,
        IntTy::I128,
        IntTy::Isize,
        IntTy::I16,
        IntTy::I32,
        IntTy::I64,
        IntTy::I8,
    ]
    .into_iter()
    .find(|ty| text.ends_with(ty.name()))
}

/// An identifier-headed atom: env/const lookup, `Type::MAX`-style
/// associated constants, chains with field projections, and calls.
fn eval_path(ctx: &EvalCtx, env: &Env, pos: &mut usize, end: usize) -> Option<AbsVal> {
    let toks = ctx.toks;
    let start = *pos;
    // `Seg :: Seg :: name` path head.
    let mut i = start;
    while i + 2 < end
        && toks[i].kind == TokKind::Ident
        && toks[i + 1].is_punct(':')
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        i += 3;
    }
    if i > start {
        // Path: `Ty::MAX` / `Ty::BITS`, `Self::CONST`, `Type::new(..)`.
        let head = &toks[i - 3].text;
        let name_tok = toks.get(i).filter(|_| i < end)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        *pos = i + 1;
        if let Some(ty) = IntTy::from_name(head) {
            return Some(match name.as_str() {
                "MAX" => AbsVal::exact(ty.max_val(), Some(ty)),
                "MIN" => AbsVal::exact(ty.min_val(), Some(ty)),
                "BITS" => AbsVal::exact(ty.bits() as i128, Some(IntTy::U32)),
                _ => {
                    if toks
                        .get(*pos)
                        .filter(|_| *pos < end)
                        .is_some_and(|p| p.is_punct('('))
                    {
                        *pos = close_of(toks, *pos, end);
                    }
                    AbsVal::top()
                }
            });
        }
        let is_call = toks
            .get(*pos)
            .filter(|_| *pos < end)
            .is_some_and(|p| p.is_punct('('));
        if is_call {
            let open = *pos;
            let close = close_of(toks, open, end);
            *pos = close;
            if head == "WordIndex" && name == "new" {
                // `WordIndex::new` has no assert of its own; the
                // [0, 15] contract is a caller obligation used only as
                // a parameter seed, so a constructed value is just the
                // wrapped expression.
                let (args, _) = rules::split_args(toks, open)?;
                if args.len() == 1 {
                    return eval(ctx, env, args[0].clone());
                }
            }
            // `bitops::low_mask(..)`-style qualified calls share the
            // known-return table with free calls.
            return Some(known_fn_return(ctx, env, &name, open));
        }
        // `Self::CONST` / `Type::CONST`: the const map keys bare names.
        return Some(ctx.consts.get(&name).copied().unwrap_or_else(AbsVal::top));
    }
    // Plain identifier chain: extend greedily through `.field` links
    // while the extended chain resolves in the environment; stop at a
    // call or at the longest resolvable chain.
    let first = &toks[start];
    if first.kind != TokKind::Ident || is_keyword(&first.text) {
        return None;
    }
    let mut key = first.text.clone();
    let mut cursor = start + 1;
    loop {
        let is_field = cursor + 1 < end
            && toks[cursor].is_punct('.')
            && toks[cursor + 1].kind == TokKind::Ident
            && !is_keyword(&toks[cursor + 1].text)
            && !toks
                .get(cursor + 2)
                .filter(|_| cursor + 2 < end)
                .is_some_and(|p| p.is_punct('('));
        let is_tuple =
            cursor + 1 < end && toks[cursor].is_punct('.') && toks[cursor + 1].kind == TokKind::Int;
        if is_field || is_tuple {
            key.push('.');
            key.push_str(&toks[cursor + 1].text);
            cursor += 2;
            continue;
        }
        break;
    }
    *pos = cursor;
    if toks
        .get(*pos)
        .filter(|_| *pos < end)
        .is_some_and(|p| p.is_punct('('))
    {
        // Free-function call: known bit-kernel returns, else ⊤.
        let open = *pos;
        let close = close_of(toks, open, end);
        *pos = close;
        return Some(known_fn_return(ctx, env, &key, open));
    }
    if let Some(v) = env.get(&key) {
        return Some(*v);
    }
    if !key.contains('.') {
        if let Some(v) = ctx.consts.get(&key) {
            return Some(*v);
        }
    }
    Some(AbsVal::top())
}

/// Return ranges for the audited `bitops` kernels (total functions with
/// documented output ranges) — called by name, so a same-named local
/// helper elsewhere would also match; their contracts are generic
/// enough (`u64`-typed ⊤, etc.) that this stays sound in practice.
fn known_fn_return(ctx: &EvalCtx, env: &Env, name: &str, open: usize) -> AbsVal {
    let bare = name.rsplit('.').next().unwrap_or(name);
    match bare {
        "low_mask" | "aligned_stride" | "free_aligned_windows" | "eligible_aligned_slots" => {
            AbsVal::ty_top(IntTy::U64)
        }
        "span_mask16" => AbsVal::ty_top(IntTy::U16),
        "select_nth_one" => AbsVal {
            ty: Some(IntTy::U32),
            min: 0,
            max: 64,
            zeros: 0,
        }
        .canon(),
        "min" => {
            // `a.min(b)` parses as a method; this is `cmp::min(a, b)`.
            match rules::split_args(ctx.toks, open) {
                Some((args, _)) if args.len() == 2 => {
                    let a = eval(ctx, env, args[0].clone()).unwrap_or_else(AbsVal::top);
                    let b = eval(ctx, env, args[1].clone()).unwrap_or_else(AbsVal::top);
                    AbsVal {
                        ty: common_ty(a.ty, b.ty),
                        min: a.min.min(b.min),
                        max: a.max.min(b.max),
                        zeros: 0,
                    }
                    .canon()
                }
                _ => AbsVal::top(),
            }
        }
        _ => AbsVal::top(),
    }
}

/// Method-call transfer functions over a receiver value.
fn eval_method(
    ctx: &EvalCtx,
    env: &Env,
    recv: &AbsVal,
    name: &str,
    args: &[Range<usize>],
) -> Option<AbsVal> {
    let arg = |k: usize| -> AbsVal {
        args.get(k)
            .and_then(|r| eval(ctx, env, r.clone()))
            .unwrap_or_else(AbsVal::top)
    };
    let bits = recv.ty.map_or(128, IntTy::bits);
    Some(match name {
        "count_ones" | "count_zeros" => {
            let mut max = bits as i128;
            if name == "count_ones" && recv.nonneg() {
                // Only bits not provably zero can be set.
                max = max.min((!recv.zeros).count_ones() as i128);
            }
            AbsVal {
                ty: Some(IntTy::U32),
                min: 0,
                max,
                zeros: 0,
            }
            .canon()
        }
        "trailing_zeros" | "leading_zeros" | "trailing_ones" | "leading_ones" => {
            let mut max = bits as i128;
            if recv.min >= 1 && (name == "trailing_zeros" || name == "leading_zeros") {
                // A non-zero value has at least one set bit.
                max -= 1;
            }
            AbsVal {
                ty: Some(IntTy::U32),
                min: 0,
                max,
                zeros: 0,
            }
            .canon()
        }
        "min" => {
            let b = arg(0);
            AbsVal {
                ty: common_ty(recv.ty, b.ty),
                min: recv.min.min(b.min),
                max: recv.max.min(b.max),
                zeros: 0,
            }
            .canon()
        }
        "max" => {
            let b = arg(0);
            AbsVal {
                ty: common_ty(recv.ty, b.ty),
                min: recv.min.max(b.min),
                max: recv.max.max(b.max),
                zeros: 0,
            }
            .canon()
        }
        "clamp" => {
            let lo = arg(0);
            let hi = arg(1);
            AbsVal {
                ty: recv.ty,
                min: lo.min,
                max: hi.max,
                zeros: 0,
            }
            .canon()
        }
        "wrapping_add" => recv.add(&arg(0)),
        "wrapping_sub" => recv.sub(&arg(0)),
        "wrapping_mul" => recv.mul(&arg(0)),
        "saturating_add" | "checked_add" => recv.add(&arg(0)).clamp_to(recv.ty),
        "saturating_sub" | "checked_sub" => recv.sub(&arg(0)).clamp_to(recv.ty),
        "saturating_mul" | "checked_mul" => recv.mul(&arg(0)).clamp_to(recv.ty),
        "unwrap_or" => recv.join(&arg(0)),
        "abs" => AbsVal {
            ty: recv.ty,
            min: 0,
            max: recv.max.abs().max(recv.min.saturating_neg()),
            zeros: 0,
        }
        .canon(),
        "next_power_of_two" => {
            if recv.nonneg() {
                AbsVal {
                    ty: recv.ty,
                    min: recv.min.max(1),
                    max: low_ones(bit_len(recv.max)).min(MAX_B as u128) as i128 + 1,
                    zeros: 0,
                }
                .wrap_check(recv.ty)
            } else {
                top_of(recv.ty)
            }
        }
        "pow" => top_of(recv.ty),
        // Projection table for the workspace's newtype accessors: D2
        // bans hash containers, so a zero-argument `.get()` here is
        // `WordIndex::get` — bounded to the 16-bit footprint contract
        // checked by `WordIndex::new`'s debug_assert; `raw`/`bits`/
        // `as_usize`/`num_sets` follow the same audited accessor set
        // (`num_sets` is `CacheConfig::num_sets`, a positive power of
        // two by the constructor assert).
        "get" if args.is_empty() => AbsVal {
            ty: Some(IntTy::U8),
            min: 0,
            max: 15,
            zeros: !0xf,
        },
        "raw" if args.is_empty() => AbsVal::ty_top(IntTy::U64),
        "bits" if args.is_empty() => AbsVal::ty_top(IntTy::U16),
        "as_usize" if args.is_empty() => recv.cast(IntTy::Usize),
        "num_sets" if args.is_empty() => AbsVal {
            ty: Some(IntTy::U64),
            min: 1,
            max: IntTy::U64.max_val(),
            zeros: 0,
        },
        // `words_per_line` is `LineGeometry::words_per_line` (constructor
        // asserts 2..=16 words) or the same-named accessors that copy it
        // (`Woc`, `MedianTracker` sizes its bins as words_per_line + 1 and
        // caps at 16); every implementation stays within 1..=16.
        "words_per_line" if args.is_empty() => AbsVal {
            ty: Some(IntTy::U8),
            min: 1,
            max: 16,
            zeros: !0x1f,
        },
        // `Footprint::used_words` is a popcount of a 16-bit mask.
        "used_words" if args.is_empty() => AbsVal {
            ty: Some(IntTy::U8),
            min: 0,
            max: 16,
            zeros: !0x1f,
        },
        // `SimRng::range(bound)` draws uniformly from `0..bound`
        // (Lemire rejection; `range_is_in_bounds_and_covers` pins it).
        "range" if args.len() == 1 => {
            let b = arg(0);
            AbsVal {
                ty: Some(IntTy::U64),
                min: 0,
                max: (b.max - 1).max(0),
                zeros: 0,
            }
            .canon()
        }
        // `Woc::pick(len)` selects a victim index below `len` (both the
        // random and round-robin arms reduce modulo `len`).
        "pick" if args.len() == 1 => {
            let b = arg(0);
            AbsVal {
                ty: Some(IntTy::Usize),
                min: 0,
                max: (b.max - 1).max(0),
                zeros: 0,
            }
            .canon()
        }
        "len" if args.is_empty() => AbsVal {
            ty: Some(IntTy::Usize),
            min: 0,
            max: MAX_B,
            zeros: 0,
        },
        "rem_euclid" => recv.rem(&arg(0)),
        "isqrt" | "ilog2" | "ilog10" => top_of(Some(IntTy::U32)),
        _ => AbsVal::top(),
    })
}

impl AbsVal {
    /// Clamps the interval into a type's range without dropping to ⊤
    /// (used for `saturating_*`, whose result provably fits).
    fn clamp_to(mut self, ty: Option<IntTy>) -> AbsVal {
        if let Some(t) = ty {
            self.min = self.min.clamp(t.min_val(), t.max_val());
            self.max = self.max.clamp(t.min_val(), t.max_val());
            self.ty = Some(t);
        }
        self.canon()
    }
}

// ---------------------------------------------------------------------
// Branch refinement
// ---------------------------------------------------------------------

/// Narrows `env` under the assumption that the condition in `range`
/// evaluated to `polarity`. Unrecognised conditions refine nothing —
/// refinement only ever *adds* constraints the program text proves.
pub fn refine_cond(ctx: &EvalCtx, env: &mut Env, range: Range<usize>, polarity: bool) {
    let toks = ctx.toks;
    let mut range = strip_parens(toks, range);
    let mut polarity = polarity;
    while !range.is_empty() && toks[range.start].is_punct('!') && !part_of_double(toks, range.start)
    {
        polarity = !polarity;
        range = strip_parens(toks, range.start + 1..range.end);
    }
    if range.is_empty() {
        return;
    }
    // `a && b` true refines both; `a || b` false refines both negated.
    let mut depth = 0i32;
    let mut parts: Vec<Range<usize>> = Vec::new();
    let mut part_op: Option<char> = None;
    let mut start = range.start;
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && (double_punct(toks, i, '&') || double_punct(toks, i, '|')) {
            let op = if t.is_punct('&') { '&' } else { '|' };
            if part_op.is_some_and(|p| p != op) {
                return; // mixed && / || without parens: give up
            }
            part_op = Some(op);
            parts.push(start..i);
            start = i + 2;
            i += 2;
            continue;
        }
        i += 1;
    }
    if let Some(op) = part_op {
        parts.push(start..range.end);
        let refinable = (op == '&' && polarity) || (op == '|' && !polarity);
        if refinable {
            for p in parts {
                refine_cond(ctx, env, p, polarity);
            }
        }
        return;
    }
    // Single condition: comparison, or a recognised predicate method.
    if let Some((at, op)) = find_comparison(toks, range.clone()) {
        let lhs = range.start..at;
        let rhs = at + op.len()..range.end;
        let op = if polarity { op } else { negate_cmp(op) };
        refine_cmp(ctx, env, lhs, op, rhs);
        return;
    }
    if polarity {
        refine_predicate(ctx, env, range);
    }
}

/// Finds the depth-0 comparison operator in `range`, skipping shift
/// pairs and compound tokens.
fn find_comparison(toks: &[Token], range: Range<usize>) -> Option<(usize, &'static str)> {
    let mut depth = 0i32;
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            let next_glued = |c: char| {
                toks.get(i + 1)
                    .is_some_and(|n| n.is_punct(c) && glued(t, n))
            };
            if t.is_punct('<') || t.is_punct('>') {
                let c = if t.is_punct('<') { '<' } else { '>' };
                if next_glued(c) || (i > 0 && toks[i - 1].is_punct(c) && glued(&toks[i - 1], t)) {
                    i += 1; // shift operator, not a comparison
                } else if next_glued('=') {
                    return Some((i, if c == '<' { "<=" } else { ">=" }));
                } else {
                    return Some((i, if c == '<' { "<" } else { ">" }));
                }
            } else if t.is_punct('=') && next_glued('=') {
                let second_of_pair = i > 0
                    && glued(&toks[i - 1], t)
                    && ['<', '>', '!', '=']
                        .iter()
                        .any(|&c| toks[i - 1].is_punct(c));
                if !second_of_pair {
                    return Some((i, "=="));
                }
            } else if t.is_punct('!') && next_glued('=') {
                return Some((i, "!="));
            }
        }
        i += 1;
    }
    None
}

/// The comparison holding when `op` is false.
fn negate_cmp(op: &'static str) -> &'static str {
    match op {
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        "==" => "!=",
        "!=" => "==",
        _ => op,
    }
}

/// Applies `lhs op rhs` to the environment: each side that is a plain
/// variable chain is narrowed against the other side's value.
fn refine_cmp(
    ctx: &EvalCtx,
    env: &mut Env,
    lhs: Range<usize>,
    op: &'static str,
    rhs: Range<usize>,
) {
    let toks = ctx.toks;
    let lhs = strip_parens(toks, lhs);
    let rhs = strip_parens(toks, rhs);
    let lv = eval(ctx, env, lhs.clone()).unwrap_or_else(AbsVal::top);
    let rv = eval(ctx, env, rhs.clone()).unwrap_or_else(AbsVal::top);
    if let Some(key) = chain_key(toks, lhs) {
        narrow(env, &key, lv, op, &rv);
    }
    if let Some(key) = chain_key(toks, rhs) {
        narrow(env, &key, rv, flip_cmp(op), &lv);
    }
}

/// `a op b` seen from `b`'s side (`x < y` tells `y` that `y > x`).
fn flip_cmp(op: &'static str) -> &'static str {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        _ => op, // == and != are symmetric
    }
}

/// Narrows the tracked value of `key` (current value `cur`) knowing
/// `key op other` holds.
fn narrow(env: &mut Env, key: &str, cur: AbsVal, op: &'static str, other: &AbsVal) {
    let mut v = cur;
    match op {
        "<" => v.max = v.max.min(other.max.saturating_sub(1)),
        "<=" => v.max = v.max.min(other.max),
        ">" => v.min = v.min.max(other.min.saturating_add(1)),
        ">=" => v.min = v.min.max(other.min),
        "==" => {
            v.min = v.min.max(other.min);
            v.max = v.max.min(other.max);
            v.zeros |= other.zeros;
        }
        "!=" => {
            if other.min == other.max {
                if v.min == other.min {
                    v.min += 1;
                }
                if v.max == other.max {
                    v.max -= 1;
                }
            }
        }
        _ => return,
    }
    env.insert(key.to_string(), v.canon());
}

/// Predicate conditions that carry range facts when true:
/// `x.is_power_of_two()` and `(lo..=hi).contains(&x)`.
fn refine_predicate(ctx: &EvalCtx, env: &mut Env, range: Range<usize>) {
    let toks = ctx.toks;
    // Find the final `.name(` call at depth 0.
    let mut depth = 0i32;
    let mut call: Option<(usize, usize)> = None; // (name index, open index)
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0
                && t.is_punct('(')
                && i >= 2
                && toks[i - 1].kind == TokKind::Ident
                && toks[i - 2].is_punct('.')
            {
                call = Some((i - 1, i));
            }
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        }
        i += 1;
    }
    let Some((name_at, open)) = call else { return };
    let name = toks[name_at].text.as_str();
    let recv = range.start..name_at - 1;
    if name == "is_power_of_two" {
        if let Some(key) = chain_key(toks, strip_parens(toks, recv)) {
            let cur = env.get(&key).copied().unwrap_or_else(AbsVal::top);
            narrow(env, &key, cur, ">=", &AbsVal::exact(1, None));
        }
        return;
    }
    if name == "contains" {
        // `(lo .. [=] hi).contains(&x)`.
        let recv = strip_parens(toks, recv);
        let Some((dots, inclusive)) = find_range_op(toks, recv.clone()) else {
            return;
        };
        let lo = eval(ctx, env, recv.start..dots).unwrap_or_else(AbsVal::top);
        let hi_end = if inclusive { dots + 3 } else { dots + 2 };
        let hi = eval(ctx, env, hi_end..recv.end).unwrap_or_else(AbsVal::top);
        let Some((args, _)) = rules::split_args(toks, open) else {
            return;
        };
        if args.len() != 1 {
            return;
        }
        let mut arg = args[0].clone();
        if toks[arg.start].is_punct('&') {
            arg = arg.start + 1..arg.end;
        }
        if let Some(key) = chain_key(toks, arg) {
            let cur = env.get(&key).copied().unwrap_or_else(AbsVal::top);
            let hi_bound = if inclusive {
                hi.max
            } else {
                hi.max.saturating_sub(1)
            };
            let mut v = cur;
            v.min = v.min.max(lo.min);
            v.max = v.max.min(hi_bound);
            env.insert(key, v.canon());
        }
    }
}

/// The depth-0 `..` / `..=` in `range`: (index of first dot, inclusive).
fn find_range_op(toks: &[Token], range: Range<usize>) -> Option<(usize, bool)> {
    let mut depth = 0i32;
    let mut i = range.start;
    while i + 1 < range.end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && double_punct(toks, i, '.') {
            let inclusive = toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct('=') && glued(&toks[i + 1], n));
            return Some((i, inclusive));
        }
        i += 1;
    }
    None
}

/// Edge refinement: when `node` is reached along exactly one edge out
/// of a branching predecessor, the branch condition (or loop bound, or
/// match pattern) constrains the environment at `node` entry.
pub fn refine_entry(ctx: &EvalCtx, cfg: &Cfg, node: NodeId, env: &mut Env) {
    let preds = &cfg.nodes[node].preds;
    if preds.len() != 1 {
        return;
    }
    let p = preds[0];
    let pred = &cfg.nodes[p];
    let position: Vec<usize> = pred
        .succs
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == node)
        .map(|(k, _)| k)
        .collect();
    if position.len() != 1 {
        return;
    }
    let on_true = position[0] == 0;
    let toks = ctx.toks;
    match pred.kind {
        NodeKind::Cond => {
            let span = pred.span.clone();
            if span.is_empty() || !toks[span.start].is_ident("if") {
                return;
            }
            if toks.get(span.start + 1).is_some_and(|t| t.is_ident("let")) {
                return; // `if let`: no interval fact
            }
            refine_cond(ctx, env, span.start + 1..span.end, on_true);
        }
        NodeKind::Loop => {
            let span = pred.span.clone();
            if span.is_empty() {
                return;
            }
            if toks[span.start].is_ident("while") {
                if toks.get(span.start + 1).is_some_and(|t| t.is_ident("let")) {
                    return;
                }
                refine_cond(ctx, env, span.start + 1..span.end, on_true);
            } else if toks[span.start].is_ident("for") && on_true {
                refine_for_binding(ctx, env, span);
            }
        }
        NodeKind::Match => {
            refine_match_arm(ctx, cfg, p, node, env);
        }
        _ => {}
    }
}

/// `for x in lo..hi { body }`: inside the body, `x ∈ [lo, hi-1]`
/// (`..=` keeps `hi`).
fn refine_for_binding(ctx: &EvalCtx, env: &mut Env, span: Range<usize>) {
    let toks = ctx.toks;
    // `for` IDENT `in` RANGE
    let name_at = span.start + 1;
    if toks.get(name_at).map(|t| t.kind) != Some(TokKind::Ident) {
        return;
    }
    if !toks.get(name_at + 1).is_some_and(|t| t.is_ident("in")) {
        return;
    }
    let name = toks[name_at].text.clone();
    let iter = strip_parens(toks, name_at + 2..span.end);
    let Some((dots, inclusive)) = find_range_op(toks, iter.clone()) else {
        // Not a literal range: the binding is unknown this iteration.
        env.remove(&name);
        return;
    };
    let lo = eval(ctx, env, iter.start..dots).unwrap_or_else(AbsVal::top);
    let hi_start = if inclusive { dots + 3 } else { dots + 2 };
    let hi = eval(ctx, env, hi_start..iter.end).unwrap_or_else(AbsVal::top);
    let hi_bound = if inclusive {
        hi.max
    } else {
        hi.max.saturating_sub(1)
    };
    env.insert(
        name,
        AbsVal {
            ty: common_ty(lo.ty, hi.ty),
            min: lo.min,
            max: hi_bound,
            zeros: 0,
        }
        .canon(),
    );
}

/// Match-arm refinement: the arm body head node sits just past its
/// pattern's `=>`; a literal or `lo..=hi` pattern over a plain-chain
/// scrutinee narrows the scrutinee.
fn refine_match_arm(ctx: &EvalCtx, cfg: &Cfg, match_node: NodeId, body: NodeId, env: &mut Env) {
    let toks = ctx.toks;
    let head_span = cfg.nodes[match_node].span.clone();
    let body_span = cfg.nodes[body].span.clone();
    if head_span.is_empty() || body_span.is_empty() {
        return;
    }
    if !toks[head_span.start].is_ident("match") {
        return;
    }
    let scrut = strip_parens(toks, head_span.start + 1..head_span.end);
    let Some(key) = chain_key(toks, scrut) else {
        return;
    };
    // Walk back from the body head over any `{` to the `=>` arrow.
    let mut i = body_span.start;
    while i > 0 && toks[i - 1].is_punct('{') {
        i -= 1;
    }
    if i < 2 || !toks[i - 1].is_punct('>') || !toks[i - 2].is_punct('=') {
        return;
    }
    let arrow = i - 2;
    // Pattern start: back to the depth-0 `,` or the match-body `{`.
    let mut depth = 0i32;
    let mut j = arrow;
    let mut pat_start = None;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth -= 1;
        } else if t.is_punct('{') {
            if depth == 0 {
                pat_start = Some(j);
                break;
            }
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            pat_start = Some(j);
            break;
        }
        j -= 1;
    }
    let Some(pat_start) = pat_start else { return };
    let _ = refine_pattern(ctx, env, &key, pat_start..arrow);
}

/// Narrows `key` by a match pattern: an integer literal, a `lo..=hi`
/// range, or `|`-alternatives of those. Guards, bindings and `_`
/// refine nothing.
fn refine_pattern(ctx: &EvalCtx, env: &mut Env, key: &str, pat: Range<usize>) -> Option<()> {
    let toks = ctx.toks;
    if toks[pat.clone()].iter().any(|t| t.is_ident("if")) {
        return None; // guarded arm: the pattern alone is not the whole truth
    }
    // Split depth-0 `|` alternatives.
    let mut alts: Vec<Range<usize>> = Vec::new();
    let mut depth = 0i32;
    let mut start = pat.start;
    for i in pat.clone() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('|') && depth == 0 && !part_of_double(toks, i) {
            alts.push(start..i);
            start = i + 1;
        }
    }
    alts.push(start..pat.end);
    let mut joined: Option<AbsVal> = None;
    for alt in alts {
        let alt = strip_parens(toks, alt);
        let v = if let Some((dots, inclusive)) = find_range_op(toks, alt.clone()) {
            let lo = eval(ctx, env, alt.start..dots)?;
            let hi_start = if inclusive { dots + 3 } else { dots + 2 };
            let hi = eval(ctx, env, hi_start..alt.end)?;
            AbsVal {
                ty: common_ty(lo.ty, hi.ty),
                min: lo.min,
                max: if inclusive {
                    hi.max
                } else {
                    hi.max.saturating_sub(1)
                },
                zeros: 0,
            }
            .canon()
        } else if alt.len() == 1 && toks[alt.start].kind == TokKind::Int {
            AbsVal::exact(
                rules::parse_int(&toks[alt.start].text)?,
                int_suffix(&toks[alt.start].text),
            )
        } else {
            return None; // binding / `_` / structured pattern
        };
        joined = Some(match joined {
            None => v,
            Some(prev) => prev.join(&v),
        });
    }
    if let Some(v) = joined {
        let cur = env.get(key).copied().unwrap_or_else(AbsVal::top);
        let mut out = cur;
        out.min = out.min.max(v.min);
        out.max = out.max.min(v.max);
        env.insert(key.to_string(), out.canon());
    }
    Some(())
}

/// Refinement for a site *inside* a statement node: block expressions
/// embedded in one statement (`let m = if c { a } else { b };`,
/// `let v = match k { ... };`) never become CFG edges, so the branch
/// context is reconstructed syntactically between the statement start
/// and the site token.
pub fn refine_within(ctx: &EvalCtx, env: &mut Env, span: Range<usize>, site: usize) {
    let toks = ctx.toks;
    let mut i = span.start;
    let mut end = span.end;
    while i < site.min(end) {
        let t = &toks[i];
        if t.is_ident("if") && !toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            let Some(open) = body_open(toks, i + 1..end) else {
                i += 1;
                continue;
            };
            let cond = i + 1..open;
            let then_end = close_of(toks, open, end);
            if site > open && site < then_end {
                refine_cond(ctx, env, cond, true);
                i = open + 1;
                end = then_end.saturating_sub(1);
                continue;
            }
            if toks.get(then_end).is_some_and(|e| e.is_ident("else")) {
                let else_at = then_end + 1;
                if toks.get(else_at).is_some_and(|b| b.is_punct('{')) {
                    let else_end = close_of(toks, else_at, end);
                    if site > else_at && site < else_end {
                        refine_cond(ctx, env, cond, false);
                        i = else_at + 1;
                        end = else_end.saturating_sub(1);
                        continue;
                    }
                    i = else_end;
                    continue;
                }
                if toks.get(else_at).is_some_and(|n| n.is_ident("if")) && site >= else_at {
                    refine_cond(ctx, env, cond, false);
                    i = else_at;
                    continue;
                }
            }
            i = then_end;
            continue;
        }
        if t.is_ident("match") {
            let Some(open) = body_open(toks, i + 1..end) else {
                i += 1;
                continue;
            };
            let body_end = close_of(toks, open, end);
            if site > open && site < body_end {
                refine_embedded_match(ctx, env, i + 1..open, open, body_end, site);
                return; // refine_embedded_match recurses into the arm
            }
            i = body_end;
            continue;
        }
        i += 1;
    }
}

/// Locates the arm of an embedded `match` containing `site`, applies
/// its pattern to the scrutinee, and recurses into the arm body.
fn refine_embedded_match(
    ctx: &EvalCtx,
    env: &mut Env,
    scrut: Range<usize>,
    open: usize,
    body_end: usize,
    site: usize,
) {
    let toks = ctx.toks;
    let key = chain_key(toks, strip_parens(toks, scrut));
    let inner = open + 1..body_end.saturating_sub(1);
    let mut i = inner.start;
    while i < inner.end {
        // Arm pattern up to the depth-0 `=>`.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < inner.end {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
            {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { return };
        let body_start = arrow + 2;
        let (arm_range, next) = if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
            let arm_end = close_of(toks, body_start, inner.end);
            (body_start + 1..arm_end.saturating_sub(1), arm_end)
        } else {
            let mut depth = 0i32;
            let mut k = body_start;
            while k < inner.end {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                k += 1;
            }
            (body_start..k, k)
        };
        if site >= arm_range.start && site < arm_range.end {
            if let Some(key) = &key {
                let _ = refine_pattern(ctx, env, key, i..arrow);
            }
            refine_within(ctx, env, arm_range, site);
            return;
        }
        i = next;
        while i < inner.end && toks[i].is_punct(',') {
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Statement transfer
// ---------------------------------------------------------------------

/// Applies one statement node's effect to the environment: `&mut`
/// borrows and mutating container methods kill their targets, `let`
/// bindings and (compound) assignments write evaluated values,
/// `assert!`/`debug_assert!` refine.
pub fn apply_stmt(ctx: &EvalCtx, env: &mut Env, span: Range<usize>) {
    let toks = ctx.toks;
    if span.is_empty() {
        return;
    }
    apply_kills(ctx, env, span.clone());
    let head = &toks[span.start];
    if head.is_ident("assert") || head.is_ident("debug_assert") {
        // `assert!(cond, "msg", ...)`: refine by the first macro arg.
        if toks.get(span.start + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(span.start + 2).is_some_and(|t| t.is_punct('('))
        {
            let open = span.start + 2;
            if let Some((args, _)) = rules::split_args(toks, open) {
                if let Some(cond) = args.first() {
                    refine_cond(ctx, env, cond.clone(), true);
                }
            }
        }
        return;
    }
    if head.is_ident("let") {
        apply_let(ctx, env, span);
        return;
    }
    apply_assign(ctx, env, span);
}

/// Kills for one statement: `&mut chain` borrows, mutating container
/// methods on a chain, and `*self = ..` whole-struct writes.
fn apply_kills(ctx: &EvalCtx, env: &mut Env, span: Range<usize>) {
    let toks = ctx.toks;
    let mut i = span.start;
    while i < span.end {
        let t = &toks[i];
        if t.is_punct('&')
            && !part_of_double(toks, i)
            && toks.get(i + 1).is_some_and(|n| n.is_ident("mut"))
        {
            let mut j = i + 2;
            // `&mut *self` and friends reborrow the whole receiver.
            while j < span.end && toks[j].is_punct('*') {
                j += 1;
            }
            if let Some(end) = chain_end(toks, j, span.end) {
                if let Some(key) = chain_key(toks, j..end) {
                    kill_key(env, &key);
                }
            }
        }
        if t.kind == TokKind::Ident
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && MUTATING_METHODS.contains(&t.text.as_str())
        {
            if let Some(start) = chain_start(toks, i - 1) {
                if let Some(key) = chain_key(toks, start..i - 1) {
                    kill_key(env, &key);
                }
            }
        }
        i += 1;
    }
}

/// Index just past the longest forward chain starting at `at`, or
/// `None` when `at` does not start a chain.
fn chain_end(toks: &[Token], at: usize, limit: usize) -> Option<usize> {
    let t = toks.get(at).filter(|_| at < limit)?;
    if t.kind != TokKind::Ident || is_keyword(&t.text) {
        return None;
    }
    let mut i = at + 1;
    while i + 1 < limit
        && toks[i].is_punct('.')
        && (toks[i + 1].kind == TokKind::Int
            || toks[i + 1].kind == TokKind::Ident && !is_keyword(&toks[i + 1].text))
    {
        i += 2;
    }
    Some(i)
}

/// Removes a written key and every tracked sub-field of it.
fn kill_key(env: &mut Env, key: &str) {
    env.remove(key);
    let prefix = format!("{key}.");
    env.retain(|k, _| !k.starts_with(&prefix));
}

/// `let [mut] name [: ty] = rhs ;`
fn apply_let(ctx: &EvalCtx, env: &mut Env, span: Range<usize>) {
    let toks = ctx.toks;
    let mut i = span.start + 1;
    if toks
        .get(i)
        .filter(|_| i < span.end)
        .is_some_and(|t| t.is_ident("mut"))
    {
        i += 1;
    }
    // Locate the depth-0 `=` (a `let` initialiser's `=` is never part
    // of a comparison at depth 0).
    let mut depth = 0i32;
    let mut eq = None;
    for k in i..span.end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && t.is_punct('=')
            && !toks
                .get(k + 1)
                .is_some_and(|n| n.is_punct('=') && glued(t, n))
            && !(k > 0
                && ['<', '>', '!', '=']
                    .iter()
                    .any(|&c| toks[k - 1].is_punct(c)))
        {
            eq = Some(k);
            break;
        }
    }
    let name_ok = toks.get(i).filter(|_| i < span.end).is_some_and(|t| {
        t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(':') || n.is_punct('='))
    });
    let Some(eq) = eq else {
        // `let x;` or an unmodelled form: drop any shadowed facts.
        for t in &toks[i..span.end] {
            if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                kill_key(env, &t.text);
            }
        }
        return;
    };
    if !name_ok {
        // Destructuring pattern: every bound identifier becomes ⊤.
        for t in &toks[i..eq] {
            if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                kill_key(env, &t.text);
            }
        }
        return;
    }
    let name = toks[i].text.clone();
    let annot_ty = if toks[i + 1].is_punct(':') && eq == i + 3 {
        IntTy::from_name(&toks[i + 2].text)
    } else {
        None
    };
    let mut val = eval(ctx, env, eq + 1..span.end).unwrap_or_else(AbsVal::top);
    if let Some(ty) = annot_ty {
        // The annotation is a typing guarantee: the value fits.
        val = val.with_ty(ty);
    }
    kill_key(env, &name);
    env.insert(name, val.canon());
}

/// `chain = rhs` / `chain op= rhs`.
fn apply_assign(ctx: &EvalCtx, env: &mut Env, span: Range<usize>) {
    let toks = ctx.toks;
    let Some(chain_close) = chain_end(toks, span.start, span.end) else {
        return;
    };
    let Some(key) = chain_key(toks, span.start..chain_close) else {
        return;
    };
    let Some(t) = toks.get(chain_close).filter(|_| chain_close < span.end) else {
        return;
    };
    let next_is = |k: usize, c: char| {
        toks.get(k)
            .filter(|_| k < span.end)
            .is_some_and(|n| n.is_punct(c) && glued(&toks[k - 1], n))
    };
    let (op, rhs_start) = if t.is_punct('=') && !next_is(chain_close + 1, '=') {
        ("=", chain_close + 1)
    } else if "+-*/%&|^".contains(t.text.as_str()) && next_is(chain_close + 1, '=') {
        (t.text.as_str(), chain_close + 2)
    } else if (double_punct(toks, chain_close, '<') || double_punct(toks, chain_close, '>'))
        && next_is(chain_close + 2, '=')
    {
        (if t.is_punct('<') { "<<" } else { ">>" }, chain_close + 3)
    } else {
        return;
    };
    let rhs = eval(ctx, env, rhs_start..span.end).unwrap_or_else(AbsVal::top);
    let out = if op == "=" {
        rhs
    } else {
        let cur = env.get(&key).copied().unwrap_or_else(AbsVal::top);
        match op {
            "+" => cur.add(&rhs),
            "-" => cur.sub(&rhs),
            "*" => cur.mul(&rhs),
            "/" => cur.div(&rhs),
            "%" => cur.rem(&rhs),
            "&" => cur.bitand(&rhs),
            "|" => cur.bitor(&rhs),
            "^" => cur.bitxor(&rhs),
            "<<" => cur.shl(&rhs),
            ">>" => cur.shr(&rhs),
            _ => AbsVal::top(),
        }
    };
    kill_key(env, &key);
    env.insert(key, out.canon());
}

// ---------------------------------------------------------------------
// Operand extraction for the rule checkers
// ---------------------------------------------------------------------

/// Start index of the postfix expression ending just before `end`: a
/// literal, a member chain, a call/index with its receiver, a
/// parenthesised group, or any of those under a chain of `as` casts.
/// Unlike `analyze::operand_before` this walks over `.0` tuple links,
/// which matters for `self.0.count_ones() as u8`.
pub fn operand_start_before(toks: &[Token], end: usize) -> Option<usize> {
    let mut i = end;
    loop {
        let t = toks.get(i.checked_sub(1)?)?;
        let mut start = if t.is_punct(')') || t.is_punct(']') {
            // Walk back to the matching opener.
            let mut depth = 0i32;
            let mut j = i;
            loop {
                let u = toks.get(j.checked_sub(1)?)?;
                j -= 1;
                if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth += 1;
                } else if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            // A call's or index's receiver chain extends the operand.
            match j.checked_sub(1).map(|k| &toks[k]) {
                Some(p) if p.kind == TokKind::Ident && !is_keyword(&p.text) => {
                    chain_start(toks, j).unwrap_or(j)
                }
                _ => j,
            }
        } else if t.kind == TokKind::Int {
            i - 1
        } else if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            chain_start(toks, i)?
        } else {
            return None;
        };
        // `Seg::name` path heads (`u16::MAX`, `Self::BITS`).
        while start >= 3
            && toks[start - 1].is_punct(':')
            && toks[start - 2].is_punct(':')
            && toks[start - 3].kind == TokKind::Ident
        {
            start -= 3;
        }
        // A preceding `as` continues a cast chain (`x as u32 as u8`).
        if start >= 1 && toks[start - 1].is_ident("as") {
            i = start - 1;
            continue;
        }
        return Some(start);
    }
}

/// End (exclusive) of a shift-amount expression starting at `start`:
/// everything binding tighter than a shift (`+ - * / %`, casts, calls,
/// parens), stopping at depth-0 operators of shift-or-looser
/// precedence, separators and block openers.
pub fn shift_amount_end(toks: &[Token], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit {
        let t = &toks[i];
        if t.is_punct('{') && depth == 0 {
            return i;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if depth == 0 {
            if t.is_punct(';')
                || t.is_punct(',')
                || t.is_punct('=')
                || t.is_punct('<')
                || t.is_punct('>')
                || t.is_punct('&')
                || t.is_punct('|')
                || t.is_punct('^')
            {
                return i;
            }
            if double_punct(toks, i, '.') {
                return i;
            }
            if t.kind == TokKind::Ident && is_keyword(&t.text) && !t.is_ident("as") {
                return i;
            }
        }
        i += 1;
    }
    limit
}

// ---------------------------------------------------------------------
// The dataflow analysis and per-function solution
// ---------------------------------------------------------------------

/// The interval/known-bits analysis plugged into the worklist solver.
pub struct AbsintAnalysis<'a> {
    ctx: EvalCtx<'a>,
    cfg: &'a Cfg,
    boundary: Env,
    /// Per-node transfer counts, for widening: interior mutability
    /// because [`Analysis::transfer`] takes `&self`.
    visits: RefCell<Vec<u32>>,
}

impl Analysis for AbsintAnalysis<'_> {
    type Fact = Env;

    fn boundary(&self) -> Env {
        self.boundary.clone()
    }

    fn join(&self, a: &Env, b: &Env) -> Env {
        env_join(a, b)
    }

    fn transfer(&self, node: NodeId, input: &Env) -> Env {
        let mut env = input.clone();
        refine_entry(&self.ctx, self.cfg, node, &mut env);
        let n = &self.cfg.nodes[node];
        if n.kind == NodeKind::Stmt {
            apply_stmt(&self.ctx, &mut env, n.span.clone());
        }
        let mut visits = self.visits.borrow_mut();
        visits[node] += 1;
        if visits[node] > WIDEN_AFTER {
            for v in env.values_mut() {
                *v = v.widen();
            }
        }
        env
    }
}

/// The solved abstract state of one function body.
pub struct FnAbsint {
    /// The function's CFG (rebuilt here; spans index the file tokens).
    pub cfg: Cfg,
    /// Per-node environments from the worklist solver.
    pub sol: Solution<Env>,
}

/// Solves one function body with the given boundary environment.
pub fn solve_fn(ctx: &EvalCtx, body: Range<usize>, boundary: Env) -> FnAbsint {
    let cfg = Cfg::build(ctx.toks, body);
    let analysis = AbsintAnalysis {
        ctx: EvalCtx {
            toks: ctx.toks,
            consts: ctx.consts,
        },
        cfg: &cfg,
        boundary,
        visits: RefCell::new(vec![0; cfg.nodes.len()]),
    };
    let sol = dataflow::solve_forward(&cfg, &analysis);
    drop(analysis);
    FnAbsint { cfg, sol }
}

impl FnAbsint {
    /// The environment holding at token `tok`, with edge and
    /// embedded-block refinement re-applied (the solver's stored input
    /// is pre-refinement). Returns:
    ///
    /// * `None` — the token's node is unreachable: the site is dead
    ///   code and vacuously safe, skip it;
    /// * `Some(env)` — the facts at the site; an empty map when
    ///   nothing is known (including the not-converged fallback).
    pub fn env_at(&self, ctx: &EvalCtx, tok: usize) -> Option<Env> {
        if !self.sol.converged {
            return Some(Env::new());
        }
        let Some(node) = self.cfg.node_at(tok) else {
            return Some(Env::new());
        };
        let input = self.sol.input[node].as_ref()?;
        let mut env = input.clone();
        refine_entry(ctx, &self.cfg, node, &mut env);
        refine_within(ctx, &mut env, self.cfg.nodes[node].span.clone(), tok);
        Some(env)
    }

    /// Renders the per-node output environments as stable text for the
    /// committed domain snapshot: one line per node with kind, source
    /// line and the sorted variable states.
    pub fn render(&self, toks: &[Token]) -> String {
        use std::fmt::Write as _;
        let mut s = format!("converged: {}\n", self.sol.converged);
        for (id, n) in self.cfg.nodes.iter().enumerate() {
            let kind = match n.kind {
                NodeKind::Entry => "entry",
                NodeKind::Exit => "exit",
                NodeKind::Stmt => "stmt",
                NodeKind::Cond => "cond",
                NodeKind::Loop => "loop",
                NodeKind::Match => "match",
                NodeKind::Join => "join",
            };
            let preview = toks[n.span.clone()]
                .iter()
                .take(6)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let state = match &self.sol.output[id] {
                None => "unreachable".to_string(),
                Some(env) => {
                    let vars = env
                        .iter()
                        .map(|(k, v)| format!("{k}: {}", fmt_val(v)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("{{{vars}}}")
                }
            };
            let _ = writeln!(s, "  n{id} {kind} L{} {state} | {preview}", n.line);
        }
        s
    }
}

/// One abstract value as stable text: `ty [min, max] vm=0x..` with the
/// sentinels printed as infinities and the value mask (`!zeros`) only
/// when informative.
pub fn fmt_val(v: &AbsVal) -> String {
    let ty = v.ty.map_or("?", IntTy::name);
    let lo = if v.min <= MIN_B {
        "-inf".to_string()
    } else {
        v.min.to_string()
    };
    let hi = if v.max >= MAX_B {
        "+inf".to_string()
    } else {
        v.max.to_string()
    };
    if v.zeros != 0 && v.max < MAX_B {
        format!(
            "{ty} [{lo}, {hi}] vm=0x{:x}",
            !v.zeros & low_ones(bit_len(v.max.max(1)))
        )
    } else {
        format!("{ty} [{lo}, {hi}]")
    }
}

// ---------------------------------------------------------------------
// Workspace seeding
// ---------------------------------------------------------------------

/// Workspace-level seeds: per-file constant maps and per-function
/// boundary environments.
pub struct AbsintWorkspace {
    /// Per-file `const` values by bare name (parallel to `ws.files`).
    pub consts: Vec<BTreeMap<String, AbsVal>>,
    /// Per-function boundary environments (parallel to `ws.fns`).
    pub boundaries: Vec<Env>,
}

impl AbsintWorkspace {
    /// Builds the seeds: file consts, declared parameter types,
    /// one-level call-site hulls for non-`pub` functions, and
    /// constructor field facts for never-written fields.
    pub fn build(ws: &Workspace) -> AbsintWorkspace {
        let consts: Vec<BTreeMap<String, AbsVal>> =
            (0..ws.files.len()).map(|fi| file_consts(ws, fi)).collect();
        let mut boundaries: Vec<Env> = ws
            .fns
            .iter()
            .map(|info| {
                let mut env = Env::new();
                for p in &info.item.params {
                    if p.name == "_" {
                        continue;
                    }
                    if let Some(v) = param_seed(&p.ty) {
                        env.insert(p.name.clone(), v);
                    }
                }
                env
            })
            .collect();
        seed_call_hulls(ws, &consts, &mut boundaries);
        seed_constructor_fields(ws, &consts, &mut boundaries);
        AbsintWorkspace { consts, boundaries }
    }

    /// Solves one function with the workspace seeds.
    pub fn solve(&self, ws: &Workspace, f: FnId) -> FnAbsint {
        let info = &ws.fns[f];
        let ctx = EvalCtx {
            toks: &ws.files[info.file].tokens,
            consts: &self.consts[info.file],
        };
        solve_fn(&ctx, info.item.body.clone(), self.boundaries[f].clone())
    }

    /// The evaluation context for a function's file.
    pub fn ctx_for<'a>(&'a self, ws: &'a Workspace, f: FnId) -> EvalCtx<'a> {
        let info = &ws.fns[f];
        EvalCtx {
            toks: &ws.files[info.file].tokens,
            consts: &self.consts[info.file],
        }
    }
}

/// The declared-type seed of one parameter: the type's full range for
/// plain integers, the `[0, 15]` wrapper contract for `WordIndex`
/// (callers construct it only from in-range word offsets; the contract
/// is documented on `WordIndex::new` and is a deliberate assumption
/// here, not something this module proves).
fn param_seed(ty: &str) -> Option<AbsVal> {
    let words: Vec<&str> = ty
        .split_whitespace()
        .filter(|w| *w != "&" && *w != "mut")
        .collect();
    if words.len() != 1 {
        return None;
    }
    if let Some(t) = IntTy::from_name(words[0]) {
        return Some(AbsVal::ty_top(t));
    }
    if words[0] == "WordIndex" {
        return Some(
            AbsVal {
                ty: Some(IntTy::U8),
                min: 0,
                max: 15,
                zeros: 0,
            }
            .canon(),
        );
    }
    None
}

/// Scans one file's item-level `const NAME: ty = expr;` declarations
/// (everything outside `fn` bodies, including `impl`-level consts) and
/// evaluates them. Two rounds resolve intra-file references.
fn file_consts(ws: &Workspace, fi: usize) -> BTreeMap<String, AbsVal> {
    let file = &ws.files[fi];
    let toks = &file.tokens;
    let mut in_fn = vec![false; toks.len()];
    for info in ws.fns.iter().filter(|x| x.file == fi) {
        for k in info.item.span.clone() {
            if let Some(slot) = in_fn.get_mut(k) {
                *slot = true;
            }
        }
    }
    let mut map = BTreeMap::new();
    for _round in 0..2 {
        let snapshot = map.clone();
        let ctx = EvalCtx {
            toks,
            consts: &snapshot,
        };
        let empty = Env::new();
        let mut i = 0;
        while i + 3 < toks.len() {
            if in_fn[i]
                || !toks[i].is_ident("const")
                || toks[i + 1].kind != TokKind::Ident
                || toks[i + 1].is_ident("fn")
                || !toks[i + 2].is_punct(':')
            {
                i += 1;
                continue;
            }
            let name = toks[i + 1].text.clone();
            // Depth-0 `=` then `;`.
            let mut depth = 0i32;
            let mut eq = None;
            let mut semi = None;
            for (k, t) in toks.iter().enumerate().skip(i + 3) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('=') && eq.is_none() {
                    eq = Some(k);
                } else if depth == 0 && t.is_punct(';') {
                    semi = Some(k);
                    break;
                }
            }
            let (Some(eq), Some(semi)) = (eq, semi) else {
                i += 1;
                continue;
            };
            let annot = (eq == i + 4)
                .then(|| IntTy::from_name(&toks[i + 3].text))
                .flatten();
            if let Some(mut v) = eval(&ctx, &empty, eq + 1..semi) {
                if let Some(ty) = annot {
                    v = v.with_ty(ty);
                }
                map.insert(name, v);
            }
            i = semi + 1;
        }
    }
    map
}

/// One level of call-graph seeding: a non-`pub` function's parameter
/// narrows to the hull of its arguments over every resolved call site.
/// Any site that cannot be parsed or bounded poisons the seed back to
/// the declared type.
fn seed_call_hulls(ws: &Workspace, consts: &[BTreeMap<String, AbsVal>], boundaries: &mut [Env]) {
    let mut sites: BTreeMap<FnId, Vec<(usize, usize)>> = BTreeMap::new();
    for (g, calls) in ws.calls.iter().enumerate() {
        let gfile = ws.fns[g].file;
        for site in calls {
            for &t in &site.targets {
                if !ws.fns[t].item.is_pub {
                    sites.entry(t).or_default().push((gfile, site.tok));
                }
            }
        }
    }
    for (&f, fsites) in &sites {
        let params = &ws.fns[f].item.params;
        if params.is_empty() {
            continue;
        }
        let mut hulls: Vec<Option<AbsVal>> = vec![None; params.len()];
        let mut poisoned = vec![false; params.len()];
        let mut all_poisoned = false;
        for &(file, tok) in fsites {
            let toks = &ws.files[file].tokens;
            let open = tok + 1;
            let parsed = toks
                .get(open)
                .filter(|t| t.is_punct('('))
                .and_then(|_| rules::split_args(toks, open));
            let Some((args, _)) = parsed else {
                all_poisoned = true;
                break;
            };
            if args.len() != params.len() {
                all_poisoned = true;
                break;
            }
            let ctx = EvalCtx {
                toks,
                consts: &consts[file],
            };
            let empty = Env::new();
            for (k, a) in args.iter().enumerate() {
                match eval(&ctx, &empty, a.clone()) {
                    Some(v) if v != AbsVal::top() => {
                        hulls[k] = Some(match hulls[k] {
                            None => v,
                            Some(prev) => prev.join(&v),
                        });
                    }
                    _ => poisoned[k] = true,
                }
            }
        }
        if all_poisoned {
            continue;
        }
        for (k, p) in params.iter().enumerate() {
            if poisoned[k] || p.name == "_" {
                continue;
            }
            let Some(h) = hulls[k] else { continue };
            let refined = match param_seed(&p.ty) {
                Some(seed) => AbsVal {
                    ty: seed.ty.or(h.ty),
                    min: h.min.max(seed.min),
                    max: h.max.min(seed.max),
                    zeros: h.zeros | seed.zeros,
                }
                .canon(),
                None => h,
            };
            boundaries[f].insert(p.name.clone(), refined);
        }
    }
}

/// Constructor field facts: a field of type `T` that is never written
/// anywhere in the workspace (no `.f = ..`, no compound assignment, no
/// `&mut` borrow, no mutating container method) carries the join of
/// its values over every struct-literal site into each `self.f` read
/// in `T`'s methods. Literal sites inside `T`'s own impl are solved
/// with the full analysis; sites elsewhere are evaluated const-only.
fn seed_constructor_fields(
    ws: &Workspace,
    consts: &[BTreeMap<String, AbsVal>],
    boundaries: &mut [Env],
) {
    // Impl groups: type name -> its methods.
    let mut impls: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
    for (f, info) in ws.fns.iter().enumerate() {
        if info.item.is_method {
            if let Some((ty, _)) = info.item.qual.rsplit_once("::") {
                impls.entry(ty.to_string()).or_default().push(f);
            }
        }
    }
    // Workspace-wide field-write scan (flat names: a write to any
    // same-named field of any type counts — conservative).
    let mut written: BTreeSet<String> = BTreeSet::new();
    let mut rebinds: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            if is_write_after(toks, i + 1) {
                if i > 0 && toks[i - 1].is_punct('.') {
                    written.insert(t.text.clone());
                } else if t.is_ident("self") {
                    rebinds.push((fi, i)); // `self = ..` / `*self = ..`
                }
            }
            if i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && MUTATING_METHODS.contains(&t.text.as_str())
            {
                // `x.f.push(..)`: the receiver's last segment mutates.
                if let Some(start) = chain_start(toks, i - 1) {
                    if let Some(key) = chain_key(toks, start..i - 1) {
                        if let Some(last) = key.rsplit('.').next() {
                            written.insert(last.to_string());
                        }
                    }
                }
            }
            if t.is_ident("mut") && i > 0 && toks[i - 1].is_punct('&') {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|u| u.is_punct('*')) {
                    j += 1;
                }
                if let Some(end) = chain_end(toks, j, toks.len()) {
                    if let Some(key) = chain_key(toks, j..end) {
                        if key == "self" && j > i + 1 {
                            rebinds.push((fi, i)); // `&mut *self`
                        } else if let Some(last) = key.rsplit('.').next() {
                            if key.contains('.') {
                                written.insert(last.to_string());
                            }
                        }
                    }
                }
            }
        }
    }
    // Map each whole-`self` rebind to its impl type; facts for those
    // types are dropped (a rebind can overwrite every field at once).
    let mut rebound: BTreeSet<String> = BTreeSet::new();
    for (file, tok) in rebinds {
        let owner = ws
            .fns
            .iter()
            .find(|info| info.file == file && info.item.body.contains(&tok));
        match owner.and_then(|info| info.item.qual.rsplit_once("::")) {
            Some((ty, _)) => {
                rebound.insert(ty.to_string());
            }
            None => {
                // The whole model is macro-blind: `macro_rules!` bodies
                // produce no parsed fns, no impl groups, and no literal
                // sites, so a rebind inside one cannot touch a tracked
                // type. Any other unowned rebind gives up wholesale.
                if in_macro_rules(&ws.files[file].tokens, tok) {
                    continue;
                }
                return;
            }
        }
    }
    // Struct-literal sites per type.
    struct Site {
        f: FnId,
        open: usize,
    }
    let mut sites: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (f, info) in ws.fns.iter().enumerate() {
        let toks = &ws.files[info.file].tokens;
        for i in info.item.body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('{')) {
                continue;
            }
            let ty = if t.is_ident("Self") {
                info.item
                    .qual
                    .rsplit_once("::")
                    .map(|(ty, _)| ty.to_string())
            } else if impls.contains_key(&t.text) {
                Some(t.text.clone())
            } else {
                None
            };
            if let Some(ty) = ty {
                if impls.contains_key(&ty) {
                    sites.entry(ty).or_default().push(Site { f, open: i + 1 });
                }
            }
        }
    }
    // Per-type field joins. A field must be listed at every site (no
    // `..rest` coverage) to carry a fact.
    for (ty, ty_sites) in &sites {
        if rebound.contains(ty) {
            continue;
        }
        let methods = &impls[ty];
        let mut field_vals: BTreeMap<String, AbsVal> = BTreeMap::new();
        let mut listed: BTreeMap<String, usize> = BTreeMap::new();
        let mut solved: BTreeMap<FnId, FnAbsint> = BTreeMap::new();
        for site in ty_sites {
            let info = &ws.fns[site.f];
            let toks = &ws.files[info.file].tokens;
            let ctx = EvalCtx {
                toks,
                consts: &consts[info.file],
            };
            // Solve only sites inside the type's own impl; elsewhere
            // evaluate const-only (locals read as ⊤, which drops the
            // fact — conservative).
            let env = if methods.contains(&site.f) {
                let fa = solved.entry(site.f).or_insert_with(|| {
                    solve_fn(&ctx, info.item.body.clone(), boundaries[site.f].clone())
                });
                fa.env_at(&ctx, site.open).unwrap_or_default()
            } else {
                Env::new()
            };
            let close = close_of(toks, site.open, toks.len());
            let inner = site.open + 1..close.saturating_sub(1);
            let mut depth = 0i32;
            let mut start = inner.start;
            let mut entries: Vec<Range<usize>> = Vec::new();
            for k in inner.clone() {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    entries.push(start..k);
                    start = k + 1;
                }
            }
            entries.push(start..inner.end);
            for e in entries {
                if e.is_empty() {
                    continue;
                }
                let head = &toks[e.start];
                if head.is_punct('.') {
                    continue; // `..rest`: unlisted fields stay unknown
                }
                if head.kind != TokKind::Ident || is_keyword(&head.text) {
                    continue;
                }
                let name = head.text.clone();
                let val = if e.len() == 1 {
                    // Shorthand `field` — the binding's value.
                    env.get(&name).copied().unwrap_or_else(AbsVal::top)
                } else if toks.get(e.start + 1).is_some_and(|c| c.is_punct(':')) {
                    eval(&ctx, &env, e.start + 2..e.end).unwrap_or_else(AbsVal::top)
                } else {
                    continue;
                };
                *listed.entry(name.clone()).or_insert(0) += 1;
                field_vals
                    .entry(name)
                    .and_modify(|prev| *prev = prev.join(&val))
                    .or_insert(val);
            }
        }
        for (field, val) in field_vals {
            if written.contains(&field)
                || listed.get(&field) != Some(&ty_sites.len())
                || val == AbsVal::top()
            {
                continue;
            }
            for &m in methods {
                if ws.fns[m].item.has_self {
                    boundaries[m].insert(format!("self.{field}"), val);
                }
            }
        }
    }
}

/// Is token `tok` inside a `macro_rules!` definition body?
fn in_macro_rules(toks: &[Token], tok: usize) -> bool {
    let mut i = 0;
    while i < tok {
        if toks[i].is_ident("macro_rules")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let open = i + 3;
            if toks
                .get(open)
                .is_some_and(|t| t.is_punct('{') || t.is_punct('(') || t.is_punct('['))
            {
                let close = close_of(toks, open, toks.len());
                if (open..close).contains(&tok) {
                    return true;
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
    false
}

/// Does a field-write operator start at `at` (`= ..` but not `==` or
/// `=>`, a compound `op=`, or `<<=`/`>>=`)?
fn is_write_after(toks: &[Token], at: usize) -> bool {
    let Some(t) = toks.get(at) else { return false };
    let glued_next = |k: usize, c: char| {
        toks.get(k + 1)
            .is_some_and(|n| n.is_punct(c) && glued(&toks[k], n))
    };
    if t.is_punct('=') {
        return !glued_next(at, '=') && !glued_next(at, '>');
    }
    if t.kind == TokKind::Punct && "+-*/%&|^".contains(t.text.as_str()) {
        return glued_next(at, '=');
    }
    if (double_punct(toks, at, '<') || double_punct(toks, at, '>')) && glued_next(at + 1, '=') {
        return true;
    }
    false
}
