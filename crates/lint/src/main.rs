//! CLI for `ldis-lint`.
//!
//! ```text
//! cargo run -p ldis-lint [-- [lint] [OPTIONS]]
//! cargo run -p ldis-lint -- bench-lint [--out <path>] [--root <path>]
//! cargo xtask lint [OPTIONS]            # alias in .cargo/config.toml
//!
//! OPTIONS:
//!   --deny             CI mode: also fail on stale baseline entries
//!   --warn             report only; always exit 0
//!   --show-warnings    print warn-tier findings in full (default: count)
//!   --update-baseline  rewrite lint.toml from the live findings
//!   --baseline <path>  baseline file (default: <root>/lint.toml)
//!   --root <path>      workspace root (default: discovered from cwd)
//!   --format <fmt>     text (default), json (machine-readable document),
//!                      annotations (GitHub Actions workflow commands),
//!                      sarif (SARIF 2.1.0 for code-scanning upload)
//!
//! The `bench-lint` subcommand times the analysis phases (lex+parse,
//! call-graph, CFG+dataflow, rule evaluation) over the live workspace
//! and writes a BENCH_sweep.json-shaped report (default BENCH_lint.json).
//! ```
//!
//! Exit status: 0 clean, 1 findings (or stale baseline under `--deny`),
//! 2 usage or I/O error.

use ldis_lint::report::{render, render_annotation, render_json, render_sarif};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Annotations,
    Sarif,
}

struct Options {
    deny: bool,
    warn: bool,
    show_warnings: bool,
    update_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    format: Format,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        warn: false,
        show_warnings: false,
        update_baseline: false,
        baseline: None,
        root: None,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1).peekable();
    // Tolerate a leading `lint` so `cargo xtask lint` works.
    if args.peek().is_some_and(|a| a == "lint") {
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--warn" => opts.warn = true,
            "--show-warnings" => opts.show_warnings = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("annotations") => Format::Annotations,
                    Some("sarif") => Format::Sarif,
                    _ => return Err("--format needs one of: text, json, annotations, sarif".into()),
                };
            }
            arg if arg.starts_with("--format=") => {
                opts.format = match &arg["--format=".len()..] {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "annotations" => Format::Annotations,
                    "sarif" => Format::Sarif,
                    _ => return Err("--format needs one of: text, json, annotations, sarif".into()),
                };
            }
            "--help" | "-h" => {
                return Err("usage: ldis-lint [--deny|--warn] [--show-warnings] \
                            [--update-baseline] [--baseline <path>] [--root <path>] \
                            [--format text|json|annotations|sarif] | \
                            ldis-lint bench-lint [--out <path>] [--root <path>]"
                    .into());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.deny && opts.warn {
        return Err("--deny and --warn are mutually exclusive".into());
    }
    Ok(opts)
}

/// Parses `bench-lint [--out <path>] [--root <path>]` (after the
/// subcommand name has been consumed).
fn parse_bench_args(
    mut args: impl Iterator<Item = String>,
) -> Result<(Option<PathBuf>, Option<PathBuf>), String> {
    let mut out = None;
    let mut root = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?)),
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?)),
            other => return Err(format!("bench-lint: unknown argument `{other}`")),
        }
    }
    Ok((out, root))
}

/// Times the analysis phases over the live workspace and writes a
/// BENCH_sweep.json-shaped report. Phases are timed as independent
/// passes (each from raw sources) so the numbers are comparable across
/// commits even as the phases share more or less work internally.
fn bench_lint(root: &Path, out_path: &Path) -> Result<(), String> {
    let files: Vec<(String, String)> = ldis_lint::collect_files(root)
        .map_err(|e| format!("listing {}: {e}", root.display()))?
        .into_iter()
        .filter(|rel| rel.ends_with(".rs"))
        .map(|rel| {
            std::fs::read_to_string(root.join(&rel))
                .map(|src| (rel.clone(), src))
                .map_err(|e| format!("reading {rel}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let lines: usize = files.iter().map(|(_, s)| s.lines().count()).sum();

    let t = Instant::now();
    let mut parsed_files = Vec::new();
    for (_, src) in &files {
        let lexed = ldis_lint::lexer::lex(src);
        let bodies: Vec<_> = {
            let parsed = ldis_lint::parser::parse(&lexed.tokens);
            parsed.fns.iter().map(|f| f.body.clone()).collect()
        };
        parsed_files.push((lexed.tokens, bodies));
    }
    let parse_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let ws = ldis_lint::model::Workspace::build(&files);
    let call_graph_s = t.elapsed().as_secs_f64();
    let fns = ws.fns.len();

    let t = Instant::now();
    let mut nodes = 0usize;
    for (toks, body) in parsed_files
        .iter()
        .flat_map(|(toks, bodies)| bodies.iter().map(move |b| (toks, b)))
    {
        let cfg = ldis_lint::cfg::Cfg::build(toks, body.clone());
        let gk = ldis_lint::dataflow::GenKill {
            must: true,
            boundary: Default::default(),
            gen: vec![Default::default(); cfg.nodes.len()],
            kill: vec![Default::default(); cfg.nodes.len()],
        };
        let sol = ldis_lint::dataflow::solve_forward(&cfg, &gk);
        nodes += sol.input.len();
    }
    let cfg_dataflow_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let aws = ldis_lint::absint::AbsintWorkspace::build(&ws);
    let mut absint_nodes = 0usize;
    for f in 0..ws.fns.len() {
        let fa = aws.solve(&ws, f);
        absint_nodes += fa.cfg.nodes.len();
    }
    let absint_s = t.elapsed().as_secs_f64();
    // Keep the optimizer from discarding the solves.
    assert!(absint_nodes >= fns);

    let t = Instant::now();
    let mut findings = 0usize;
    for (rel, src) in &files {
        findings += ldis_lint::scan_file(rel, src).len();
    }
    findings +=
        ldis_lint::analyze::scan_model(&files, &ldis_lint::analyze::AnalysisConfig::default())
            .len();
    let rules_s = t.elapsed().as_secs_f64();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"lint\",");
    let _ = writeln!(json, "  \"workload\": {{");
    let _ = writeln!(json, "    \"files\": {},", files.len());
    let _ = writeln!(json, "    \"lines\": {lines},");
    let _ = writeln!(json, "    \"fns\": {fns},");
    let _ = writeln!(json, "    \"cfg_nodes\": {nodes},");
    let _ = writeln!(json, "    \"findings\": {findings}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"results\": [");
    let phases = [
        ("parse", parse_s),
        ("call_graph", call_graph_s),
        ("cfg_dataflow", cfg_dataflow_s),
        ("absint", absint_s),
        ("rules", rules_s),
    ];
    for (i, (phase, secs)) in phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{phase}\", \"wall_s\": {:.3}, \"lines_per_s\": {:.0}}}{}",
            secs,
            if *secs > 0.0 {
                lines as f64 / secs
            } else {
                0.0
            },
            if i + 1 < phases.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"regenerate\": \"cargo run --release --offline -p ldis-lint -- bench-lint --out BENCH_lint.json\""
    );
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).map_err(|e| format!("writing {}: {e}", out_path.display()))?;
    println!(
        "ldis-lint: benched {} files / {lines} lines: parse {:.3}s, call-graph {:.3}s, \
         cfg+dataflow {:.3}s, absint {:.3}s, rules {:.3}s -> {}",
        files.len(),
        parse_s,
        call_graph_s,
        cfg_dataflow_s,
        absint_s,
        rules_s,
        out_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    {
        let mut args = std::env::args().skip(1).peekable();
        if args.peek().is_some_and(|a| a == "bench-lint") {
            args.next();
            let parsed = parse_bench_args(args).and_then(|(out, root)| {
                let root = root.unwrap_or_else(|| {
                    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
                    ldis_lint::find_root(&cwd)
                });
                let out = out.unwrap_or_else(|| root.join("BENCH_lint.json"));
                bench_lint(&root, &out)
            });
            return match parsed {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("ldis-lint: {msg}");
                    ExitCode::from(2)
                }
            };
        }
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ldis-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.clone().unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        ldis_lint::find_root(&cwd)
    });
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let baseline = match ldis_lint::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("ldis-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match ldis_lint::scan_workspace(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ldis-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let entries = ldis_lint::regenerate_baseline(&outcome, &baseline);
        let text = ldis_lint::report::write_baseline(&entries, &baseline.tiers);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("ldis-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ldis-lint: wrote {} with {} entr{} — re-justify any TODOs",
            baseline_path.display(),
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
        );
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Json => print!("{}", render_json(&outcome)),
        Format::Sarif => print!("{}", render_sarif(&outcome)),
        Format::Annotations => {
            for f in &outcome.errors {
                print!("{}", render_annotation(f));
            }
            if opts.show_warnings {
                for f in &outcome.warnings {
                    print!("{}", render_annotation(f));
                }
            }
        }
        Format::Text => {
            for f in &outcome.errors {
                print!("{}", render(f));
            }
            if opts.show_warnings {
                for f in &outcome.warnings {
                    print!("{}", render(f));
                }
            }
            for s in &outcome.stale {
                println!(
                    "stale baseline: [[allow]] {} {} tolerates {} finding(s) but only {} remain — shrink the entry",
                    s.rule, s.path, s.allowed, s.live
                );
            }
            println!(
                "ldis-lint: {} error(s), {} warning(s){}, {} baselined, {} stale baseline entr{}",
                outcome.errors.len(),
                outcome.warnings.len(),
                if opts.show_warnings {
                    ""
                } else {
                    " (use --show-warnings for details)"
                },
                outcome.baselined.len(),
                outcome.stale.len(),
                if outcome.stale.len() == 1 { "y" } else { "ies" },
            );
        }
    }

    if opts.warn {
        return ExitCode::SUCCESS;
    }
    let failed = !outcome.errors.is_empty() || (opts.deny && !outcome.stale.is_empty());
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
