//! CLI for `ldis-lint`.
//!
//! ```text
//! cargo run -p ldis-lint [-- [lint] [OPTIONS]]
//! cargo xtask lint [OPTIONS]            # alias in .cargo/config.toml
//!
//! OPTIONS:
//!   --deny             CI mode: also fail on stale baseline entries
//!   --warn             report only; always exit 0
//!   --show-warnings    print warn-tier findings in full (default: count)
//!   --update-baseline  rewrite lint.toml from the live findings
//!   --baseline <path>  baseline file (default: <root>/lint.toml)
//!   --root <path>      workspace root (default: discovered from cwd)
//!   --format <fmt>     text (default), json (machine-readable document),
//!                      annotations (GitHub Actions workflow commands)
//! ```
//!
//! Exit status: 0 clean, 1 findings (or stale baseline under `--deny`),
//! 2 usage or I/O error.

use ldis_lint::report::{render, render_annotation, render_json};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Annotations,
}

struct Options {
    deny: bool,
    warn: bool,
    show_warnings: bool,
    update_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    format: Format,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        warn: false,
        show_warnings: false,
        update_baseline: false,
        baseline: None,
        root: None,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1).peekable();
    // Tolerate a leading `lint` so `cargo xtask lint` works.
    if args.peek().is_some_and(|a| a == "lint") {
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--warn" => opts.warn = true,
            "--show-warnings" => opts.show_warnings = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?));
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("annotations") => Format::Annotations,
                    _ => return Err("--format needs one of: text, json, annotations".into()),
                };
            }
            arg if arg.starts_with("--format=") => {
                opts.format = match &arg["--format=".len()..] {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "annotations" => Format::Annotations,
                    _ => return Err("--format needs one of: text, json, annotations".into()),
                };
            }
            "--help" | "-h" => {
                return Err("usage: ldis-lint [--deny|--warn] [--show-warnings] \
                            [--update-baseline] [--baseline <path>] [--root <path>] \
                            [--format text|json|annotations]"
                    .into());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.deny && opts.warn {
        return Err("--deny and --warn are mutually exclusive".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ldis-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.clone().unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        ldis_lint::find_root(&cwd)
    });
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let baseline = match ldis_lint::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("ldis-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match ldis_lint::scan_workspace(&root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ldis-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let entries = ldis_lint::regenerate_baseline(&outcome, &baseline);
        let text = ldis_lint::report::write_baseline(&entries, &baseline.tiers);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("ldis-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ldis-lint: wrote {} with {} entr{} — re-justify any TODOs",
            baseline_path.display(),
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
        );
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Json => print!("{}", render_json(&outcome)),
        Format::Annotations => {
            for f in &outcome.errors {
                print!("{}", render_annotation(f));
            }
            if opts.show_warnings {
                for f in &outcome.warnings {
                    print!("{}", render_annotation(f));
                }
            }
        }
        Format::Text => {
            for f in &outcome.errors {
                print!("{}", render(f));
            }
            if opts.show_warnings {
                for f in &outcome.warnings {
                    print!("{}", render(f));
                }
            }
            for s in &outcome.stale {
                println!(
                    "stale baseline: [[allow]] {} {} tolerates {} finding(s) but only {} remain — shrink the entry",
                    s.rule, s.path, s.allowed, s.live
                );
            }
            println!(
                "ldis-lint: {} error(s), {} warning(s){}, {} baselined, {} stale baseline entr{}",
                outcome.errors.len(),
                outcome.warnings.len(),
                if opts.show_warnings {
                    ""
                } else {
                    " (use --show-warnings for details)"
                },
                outcome.baselined.len(),
                outcome.stale.len(),
                if outcome.stale.len() == 1 { "y" } else { "ies" },
            );
        }
    }

    if opts.warn {
        return ExitCode::SUCCESS;
    }
    let failed = !outcome.errors.is_empty() || (opts.deny && !outcome.stale.is_empty());
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
