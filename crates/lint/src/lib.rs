//! `ldis-lint`: static analysis for the line-distillation workspace.
//!
//! The golden-snapshot harness catches a determinism break only *after*
//! it corrupts a snapshot. This crate machine-checks the invariants the
//! harness depends on, before they break:
//!
//! * **D1 — determinism**: no wall clocks, ambient RNGs or environment
//!   reads inside the simulator crates; all randomness flows through
//!   `SimRng`/`SimRng::derive`.
//! * **D2 — ordered iteration**: no `HashMap`/`HashSet` anywhere a
//!   report, snapshot or test expectation could observe iteration order;
//!   `BTreeMap`/`BTreeSet` or an explicit `// ldis: allow(D2, "why")`.
//! * **P1 — panic safety**: no `unwrap`/`expect`/`panic!`-family calls in
//!   simulator core code (test modules and the experiments binaries are
//!   exempt); failures route through `LdisError` or checked accessors.
//!   **P1X** (warn tier) additionally tracks raw `[...]` indexing.
//! * **C1 — config invariants**: literal cache configurations in
//!   examples/benches and the golden snapshots must describe possible
//!   geometries (power-of-two sets and word counts, a LOC/WOC split that
//!   partitions the associativity, PSEL thresholds on the paper's 64/192
//!   hysteresis rails).
//!
//! Existing debt lives in the committed `lint.toml` baseline with a
//! justification per entry; `--deny` (CI mode) fails on any new finding
//! *and* on stale baseline entries, so the debt ledger can only shrink.
//!
//! There is deliberately no dependency on `syn` or any other registry
//! crate: the build environment is fully offline, so the crate carries
//! its own Rust lexer, TOML-subset reader and JSON reader.

pub mod absint;
pub mod analyze;
pub mod cfg;
pub mod dataflow;
pub mod json;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod report;
pub mod rules;
pub mod toml;

use report::{Baseline, Finding, Outcome};
use rules::{FileContext, Rule};
use std::path::{Path, PathBuf};

/// Crates whose sources model the simulator itself: full determinism and
/// panic-safety rules apply.
pub const SIM_CRATES: &[&str] = &[
    "mem",
    "cache",
    "core",
    "compress",
    "sfp",
    "timing",
    "workloads",
    "mrc",
];

/// The rules that apply to one workspace-relative path, or `None` when
/// the file is out of scope.
///
/// Scope map:
///
/// | path | rules |
/// |---|---|
/// | `crates/<sim>/src/**` | D1 D2 P1 P1X |
/// | `crates/experiments/src/exec/**` | D1 D2 P1 P1X (crash-safe executor: wall-clock reads must be waived) |
/// | `crates/experiments/src/**` (not `bin/`) | D2 P1 P1X |
/// | `crates/experiments/src/bin/**` | D2 |
/// | `crates/lint/src/**` | D2 |
/// | `crates/*/tests/**`, `tests/*.rs` | D2 |
/// | `examples/*.rs` | D2 C1 |
/// | `crates/bench/**` (`.rs`) | C1 |
/// | `tests/golden/*.json` | C1 (snapshot checks) |
///
/// `crates/lint/tests/fixtures/**` holds deliberate violations and is
/// always skipped.
pub fn rules_for(rel: &str) -> Option<Vec<Rule>> {
    if rel.starts_with("crates/lint/tests/fixtures/") {
        return None;
    }
    if rel.ends_with(".json") {
        return rel.starts_with("tests/golden/").then(|| vec![Rule::C1]);
    }
    if !rel.ends_with(".rs") {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, sub) = rest.split_once('/')?;
        if SIM_CRATES.contains(&krate) && sub.starts_with("src/") {
            return Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X]);
        }
        if krate == "experiments" && sub.starts_with("src/") {
            return Some(if sub.starts_with("src/bin/") {
                vec![Rule::D2]
            } else if sub.starts_with("src/exec") {
                // The crash-safe executor sits between the harness and
                // the simulator: deterministic-clock discipline applies
                // (its watchdog wall-clock reads carry inline waivers).
                vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X]
            } else {
                vec![Rule::D2, Rule::P1, Rule::P1X]
            });
        }
        if krate == "lint" && sub.starts_with("src/") {
            return Some(vec![Rule::D2]);
        }
        if krate == "bench" {
            return Some(vec![Rule::C1]);
        }
        if sub.starts_with("tests/") {
            return Some(vec![Rule::D2]);
        }
        return None;
    }
    if rel.starts_with("examples/") {
        return Some(vec![Rule::D2, Rule::C1]);
    }
    if rel.starts_with("tests/") {
        return Some(vec![Rule::D2]);
    }
    None
}

/// Recursively collects lintable files under `root`, as sorted
/// workspace-relative paths.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                stack.push(path);
                continue;
            }
            if !(name.ends_with(".rs") || name.ends_with(".json")) {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rules_for(&rel).is_some() {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints one file's contents under the rules its path selects.
pub fn scan_file(rel: &str, src: &str) -> Vec<Finding> {
    let Some(rules) = rules_for(rel) else {
        return Vec::new();
    };
    if rel.ends_with(".json") {
        let stem = rel
            .rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".json"))
            .unwrap_or(rel);
        return rules::scan_golden(rel, stem, src);
    }
    let ctx = FileContext::new(rel, src);
    rules::scan_rust(&ctx, &rules)
}

/// Lints the whole workspace rooted at `root` and classifies the
/// findings against `baseline`. Runs the per-file token rules first,
/// then the interprocedural passes (P2/U1/D3) over the call graph of
/// every in-scope `.rs` file.
pub fn scan_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<Outcome> {
    let mut findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in collect_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_file(&rel, &src));
        if rel.ends_with(".rs") {
            sources.push((rel, src));
        }
    }
    let cfg = analyze::AnalysisConfig::from_baseline(baseline);
    findings.extend(analyze::scan_model(&sources, &cfg));
    Ok(report::classify(findings, baseline))
}

/// Loads `lint.toml` from `path`; a missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(src) => Baseline::parse(&src).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Computes a fresh baseline from an outcome: one entry per (rule, path)
/// pair of deny-tier findings, preserving justifications from `previous`
/// where a pair already had one.
pub fn regenerate_baseline(outcome: &Outcome, previous: &Baseline) -> Vec<report::AllowEntry> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in outcome.errors.iter().chain(&outcome.baselined) {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut old: BTreeMap<(String, String), String> = BTreeMap::new();
    for a in &previous.allows {
        old.insert((a.rule.clone(), a.path.clone()), a.justification.clone());
    }
    counts
        .into_iter()
        .map(|((rule, path), count)| {
            let justification = old
                .get(&(rule.clone(), path.clone()))
                .cloned()
                .unwrap_or_else(|| "TODO: justify this debt or fix it".to_string());
            report::AllowEntry {
                rule,
                path,
                count,
                justification,
            }
        })
        .collect()
}

/// Best-effort workspace root discovery for `cargo run -p ldis-lint`:
/// walks up from `start` to the first directory holding a `Cargo.toml`
/// with a `[workspace]` table.
pub fn find_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_matches_the_design() {
        assert_eq!(
            rules_for("crates/mem/src/rng.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/mrc/src/profiler.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        // The SHARDS sampler and the multi-tenant stream generator are
        // simulator sources: full determinism + panic-safety tier.
        assert_eq!(
            rules_for("crates/mrc/src/shards.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/workloads/src/tenants.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/experiments/src/advisor.rs"),
            Some(vec![Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/mrc/tests/shards_properties.rs"),
            Some(vec![Rule::D2])
        );
        assert_eq!(
            rules_for("tests/mrc_sampled_oracle.rs"),
            Some(vec![Rule::D2])
        );
        assert_eq!(
            rules_for("examples/sampled_mrc.rs"),
            Some(vec![Rule::D2, Rule::C1])
        );
        assert_eq!(rules_for("tests/golden/advisor.json"), Some(vec![Rule::C1]));
        assert_eq!(
            rules_for("crates/experiments/src/runner.rs"),
            Some(vec![Rule::D2, Rule::P1, Rule::P1X])
        );
        // Hot-path helper modules from the arena/bitops overhaul are
        // simulator sources under the full determinism + panic-safety tier;
        // their differential suite is a root integration test.
        assert_eq!(
            rules_for("crates/mem/src/bitops.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/cache/src/arena.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("tests/hotpath_equivalence.rs"),
            Some(vec![Rule::D2])
        );
        assert_eq!(
            rules_for("crates/experiments/src/exec/mod.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/experiments/src/exec/journal.rs"),
            Some(vec![Rule::D1, Rule::D2, Rule::P1, Rule::P1X])
        );
        assert_eq!(
            rules_for("crates/experiments/src/bin/main.rs"),
            Some(vec![Rule::D2])
        );
        assert_eq!(rules_for("crates/lint/src/rules.rs"), Some(vec![Rule::D2]));
        assert_eq!(rules_for("crates/cache/tests/lru.rs"), Some(vec![Rule::D2]));
        assert_eq!(rules_for("tests/end_to_end.rs"), Some(vec![Rule::D2]));
        assert_eq!(
            rules_for("examples/quickstart.rs"),
            Some(vec![Rule::D2, Rule::C1])
        );
        assert_eq!(
            rules_for("crates/bench/benches/figures.rs"),
            Some(vec![Rule::C1])
        );
        assert_eq!(
            rules_for("tests/golden/motivation.json"),
            Some(vec![Rule::C1])
        );
        assert_eq!(rules_for("crates/lint/tests/fixtures/fail/p1.rs"), None);
        assert_eq!(rules_for("README.md"), None);
        assert_eq!(rules_for("results.json"), None);
    }

    #[test]
    fn scan_file_dispatches_json_vs_rust() {
        let json = scan_file("tests/golden/x.json", r#"{"experiment": "y"}"#);
        assert_eq!(json.len(), 1, "experiment/stem mismatch");
        let rust = scan_file(
            "crates/mem/src/fake.rs",
            "fn f(v: Option<u8>) -> u8 { v.unwrap() }",
        );
        assert_eq!(rust.len(), 1);
        assert_eq!(rust[0].rule, "P1");
        assert!(scan_file("out_of_scope.rs", "fn f() { x.unwrap(); }").is_empty());
    }
}
