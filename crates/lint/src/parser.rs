//! A recursive-descent item parser over the token stream from
//! [`crate::lexer`].
//!
//! The token-level rules (D1/D2/P1/P1X/C1) never needed to know *where* a
//! token lives; the interprocedural rules (P2/U1/D3) do. This parser
//! recovers exactly the structure they need — no more: every `fn` item
//! with its name, qualified name (`Type::method` for inherent/trait
//! methods), visibility, typed parameter list and body token range, with
//! `impl`/`trait`/`mod` nesting resolved. Expressions stay as raw token
//! ranges; the analyses that care (unit provenance, call extraction) walk
//! them directly.
//!
//! The parser is loss-tolerant by design: anything it does not
//! understand is skipped token-by-token, so macro-heavy or exotic syntax
//! degrades to "no items found here" rather than a parse failure. That
//! is the right failure mode for a linter that must never block a build
//! on its own limitations.

use crate::lexer::Token;
use std::ops::Range;

/// One parameter of a function item (excluding any `self` receiver).
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// The binding name (`_` when the pattern is not a plain binding).
    pub name: String,
    /// The parameter's type as space-joined token text (e.g. `u64`,
    /// `& mut Vec < u8 >`).
    pub ty: String,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` for methods (inherent, trait decl or trait impl),
    /// `mod_path::name` for free functions in named modules, else `name`.
    pub qual: String,
    /// Declared with any `pub` form (`pub`, `pub(crate)`, ...).
    pub is_pub: bool,
    /// Declared inside an `impl` or `trait` block.
    pub is_method: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameters, excluding `self`.
    pub params: Vec<Param>,
    /// Token range of the body *between* the braces (empty for
    /// declarations like trait methods without a default body).
    pub body: Range<usize>,
    /// Token range covering the whole item body including braces; used to
    /// exclude nested items from the enclosing function's walk.
    pub span: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// The items parsed out of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items in source order, including nested ones.
    pub fns: Vec<FnItem>,
}

/// Keywords that can appear between `pub` and `fn`.
const FN_QUALIFIERS: &[&str] = &["const", "unsafe", "async", "extern", "default"];

struct Ctx<'a> {
    tokens: &'a [Token],
    /// Current `impl`/`trait` self-type name, if any.
    self_ty: Option<String>,
    /// Current module path segments (`mod` nesting).
    mods: Vec<String>,
}

/// Parses the item structure of one lexed file.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut ctx = Ctx {
        tokens,
        self_ty: None,
        mods: Vec::new(),
    };
    parse_items(&mut ctx, 0..tokens.len(), &mut out);
    out
}

/// Finds the index just past the `}` matching the `{` at `open`.
pub fn brace_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Skips a balanced `< ... >` generic list starting at `i` (which must be
/// `<`). Returns the index past the closing `>`. Tolerates `->` and shift
/// operators inside by counting raw angle tokens, which is good enough
/// for item signatures (expressions never appear in the positions this
/// is called from).
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            // Const generics can nest brackets; skip them wholesale.
            let close = match t.text.as_str() {
                "(" => ')',
                "[" => ']',
                _ => '}',
            };
            let mut d = 0i32;
            while j < tokens.len() {
                if tokens[j].text.len() == 1 {
                    let c = tokens[j].text.chars().next().unwrap_or(' ');
                    if c == t.text.chars().next().unwrap_or(' ') {
                        d += 1;
                    } else if c == close {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                }
                j += 1;
            }
        } else if t.is_punct(';') {
            return j; // runaway: bail before eating the item
        }
        j += 1;
    }
    j
}

fn parse_items(ctx: &mut Ctx<'_>, range: Range<usize>, out: &mut ParsedFile) {
    let tokens = ctx.tokens;
    let mut i = range.start;
    while i < range.end {
        let t = &tokens[i];
        if t.is_ident("fn") {
            // `fn` in type position (`fn(u32) -> u32`) has no name ident.
            if tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
            {
                i = parse_fn(ctx, i, range.end, out);
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            i = parse_impl_or_trait(ctx, i, range.end, out);
            continue;
        }
        if t.is_ident("mod") {
            // `mod name { ... }` recurses with the module pushed;
            // `mod name;` is just a declaration.
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == crate::lexer::TokKind::Ident
                    && tokens.get(i + 2).is_some_and(|b| b.is_punct('{'))
                {
                    let end = brace_end(tokens, i + 2);
                    ctx.mods.push(name_tok.text.clone());
                    parse_items(ctx, i + 3..end.saturating_sub(1), out);
                    ctx.mods.pop();
                    i = end;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("macro_rules") {
            // Skip `macro_rules! name { ... }` wholesale: its body is
            // pattern soup, not items.
            let mut j = i + 1;
            while j < range.end && !tokens[j].is_punct('{') {
                j += 1;
            }
            i = if j < range.end {
                brace_end(tokens, j)
            } else {
                range.end
            };
            continue;
        }
        i += 1;
    }
}

/// Parses an `impl`/`trait` block header and recurses into its body with
/// the self-type set.
///
/// For `trait Name[: Bounds]` the self-type is the first ident after the
/// keyword; for `impl [Trait for] Type` it is the last path ident before
/// the body (the ident after `for` when present), with generic argument
/// lists and the `where` clause skipped.
fn parse_impl_or_trait(ctx: &mut Ctx<'_>, at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let tokens = ctx.tokens;
    let is_trait = tokens[at].is_ident("trait");
    let mut i = at + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(tokens, i);
    }
    let mut self_ty: Option<String> = None;
    let mut settled = false;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('{') {
            let body_end = brace_end(tokens, i);
            let saved = ctx.self_ty.take();
            ctx.self_ty = self_ty;
            parse_items(ctx, i + 1..body_end.saturating_sub(1), out);
            ctx.self_ty = saved;
            return body_end;
        }
        if t.is_punct(';') {
            return i + 1;
        }
        if t.is_ident("for") && !is_trait {
            self_ty = None;
            settled = false;
            i += 1;
            continue;
        }
        if t.is_ident("where") || (is_trait && t.is_punct(':')) {
            // Bounds follow: the self-type is settled.
            settled = true;
            i += 1;
            continue;
        }
        if t.is_punct('<') {
            i = skip_generics(tokens, i);
            continue;
        }
        if !settled
            && t.kind == crate::lexer::TokKind::Ident
            && !t.is_ident("dyn")
            && !t.is_ident("mut")
            && !t.is_ident("const")
            && !t.is_ident("unsafe")
        {
            // A trait takes its first ident (the name); an impl keeps the
            // rightmost path segment (`a::b::Type` ends on `Type`).
            self_ty = Some(t.text.clone());
            if is_trait {
                settled = true;
            }
        }
        i += 1;
    }
    end
}

/// Parses one `fn` item starting at the `fn` keyword; returns the index
/// to resume scanning from.
fn parse_fn(ctx: &mut Ctx<'_>, at: usize, end: usize, out: &mut ParsedFile) -> usize {
    let tokens = ctx.tokens;
    let name = match tokens.get(at + 1) {
        Some(t) if t.kind == crate::lexer::TokKind::Ident => t.text.clone(),
        _ => return at + 1,
    };
    let is_pub = vis_before(tokens, at);
    let mut i = at + 2;
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(tokens, i);
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('(')) {
        return at + 1;
    }
    // Parameter list.
    let (arg_ranges, close) = match crate::rules::split_args(tokens, i) {
        Some(pair) => pair,
        None => return at + 1,
    };
    let mut has_self = false;
    let mut params = Vec::new();
    for r in &arg_ranges {
        let toks = &tokens[r.clone()];
        if toks.iter().any(|t| t.is_ident("self")) && !toks.iter().any(|t| t.is_punct(':')) {
            has_self = true;
            continue;
        }
        if let Some(p) = parse_param(toks) {
            params.push(p);
        }
    }
    // Skip return type / where clause to the body or `;`.
    let mut j = close + 1;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('{') {
            break;
        }
        if t.is_punct(';') {
            // Declaration without a body (trait method, extern).
            push_fn(
                ctx,
                out,
                name,
                is_pub,
                has_self,
                params,
                at,
                j + 1..j + 1,
                at..j + 1,
            );
            return j + 1;
        }
        if t.is_punct('<') {
            j = skip_generics(tokens, j);
            continue;
        }
        j += 1;
    }
    if j >= end {
        return at + 1;
    }
    let body_end = brace_end(tokens, j);
    push_fn(
        ctx,
        out,
        name,
        is_pub,
        has_self,
        params,
        at,
        j + 1..body_end.saturating_sub(1),
        at..body_end,
    );
    // Recurse into the body for nested items (inner fns, impls in fns).
    parse_items(ctx, j + 1..body_end.saturating_sub(1), out);
    body_end
}

#[allow(clippy::too_many_arguments)]
fn push_fn(
    ctx: &Ctx<'_>,
    out: &mut ParsedFile,
    name: String,
    is_pub: bool,
    has_self: bool,
    params: Vec<Param>,
    at: usize,
    body: Range<usize>,
    span: Range<usize>,
) {
    let qual = match &ctx.self_ty {
        Some(ty) => format!("{ty}::{name}"),
        None if ctx.mods.is_empty() => name.clone(),
        None => format!("{}::{}", ctx.mods.join("::"), name),
    };
    out.fns.push(FnItem {
        qual,
        is_pub,
        is_method: ctx.self_ty.is_some(),
        has_self,
        params,
        body,
        span,
        line: ctx.tokens[at].line,
        col: ctx.tokens[at].col,
        name,
    });
}

/// Parses one `pattern: Type` parameter. The name is the last ident
/// before the top-level `:` (covers `mut x: T` and plain `x: T`);
/// destructuring patterns yield `_`.
fn parse_param(toks: &[Token]) -> Option<Param> {
    let colon = toks.iter().position(|t| t.is_punct(':'))?;
    let pattern = &toks[..colon];
    let name = match pattern.last() {
        Some(t) if t.kind == crate::lexer::TokKind::Ident && !t.is_ident("mut") => {
            if pattern
                .iter()
                .any(|p| p.is_punct('(') || p.is_punct('{') || p.is_punct('['))
            {
                "_".to_string()
            } else {
                t.text.clone()
            }
        }
        _ => "_".to_string(),
    };
    let ty = toks[colon + 1..]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    Some(Param { name, ty })
}

/// Looks back from the `fn` keyword for a visibility marker, skipping
/// qualifier keywords (`const`, `unsafe`, `async`, `extern "C"`) and a
/// `pub(...)` restriction list.
fn vis_before(tokens: &[Token], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == crate::lexer::TokKind::Str {
            continue; // the ABI string of `extern "C"`
        }
        if FN_QUALIFIERS.iter().any(|q| t.is_ident(q)) {
            continue;
        }
        if t.is_punct(')') {
            // Possibly the tail of `pub(crate)`: walk back to its `(`.
            let mut depth = 0i32;
            loop {
                let t2 = &tokens[j];
                if t2.is_punct(')') {
                    depth += 1;
                } else if t2.is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn free_and_method_fns_are_qualified() {
        let p = parse_src(
            "pub fn free(a: u64) -> u64 { a }\n\
             struct S;\n\
             impl S { pub fn m(&self, x: u8) {} fn p(&mut self) {} }\n\
             impl Display for S { fn fmt(&self, f: &mut Formatter<'_>) -> Result { Ok(()) } }\n",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["free", "S::m", "S::p", "S::fmt"]);
        assert!(p.fns[0].is_pub && !p.fns[0].is_method);
        assert!(p.fns[1].is_pub && p.fns[1].is_method && p.fns[1].has_self);
        assert!(!p.fns[2].is_pub);
        assert_eq!(
            p.fns[1].params,
            vec![Param {
                name: "x".into(),
                ty: "u8".into()
            }]
        );
    }

    #[test]
    fn mod_nesting_and_nested_fns() {
        let p = parse_src("mod outer { pub mod inner { pub fn f() { fn g() {} g(); } } }\n");
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["outer::inner::f", "outer::inner::g"]);
    }

    #[test]
    fn trait_decls_and_default_bodies() {
        let p = parse_src("trait T { fn decl(&self, n: usize); fn dflt(&self) -> u32 { 7 } }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qual, "T::decl");
        assert!(p.fns[0].body.is_empty());
        assert_eq!(p.fns[1].qual, "T::dflt");
        assert!(!p.fns[1].body.is_empty());
    }

    #[test]
    fn pub_crate_and_qualifier_soup() {
        let p = parse_src(
            "pub(crate) const unsafe fn a() {}\n\
             pub extern \"C\" fn b() {}\n\
             const fn c() {}\n",
        );
        assert!(p.fns[0].is_pub);
        assert!(p.fns[1].is_pub);
        assert!(!p.fns[2].is_pub);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_body() {
        let p = parse_src(
            "pub fn g<T: Into<u64>>(v: Vec<T>) -> Option<u64> where T: Copy { v.len().try_into().ok() }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "g");
        assert_eq!(p.fns[0].params.len(), 1);
        assert_eq!(p.fns[0].params[0].ty, "Vec < T >");
        assert!(!p.fns[0].body.is_empty());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse_src("struct S { cb: fn(u32) -> u32 }\nfn real() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn destructured_params_become_underscore() {
        let p = parse_src("fn f((a, b): (u32, u32), mut c: u8) {}");
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[0].name, "_");
        assert_eq!(p.fns[0].params[1].name, "c");
    }
}
