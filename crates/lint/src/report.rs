//! Findings, the committed baseline, and rustc-style rendering.

use crate::toml;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Severity tier of a rule or finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Reported, never fails the run (tracked debt).
    Warn,
    /// Fails the run unless baselined in `lint.toml`.
    Deny,
}

/// One diagnostic produced by a rule.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (`D1`, `D2`, `P1`, `P1X`, `C1`).
    pub rule: &'static str,
    /// Severity tier.
    pub level: Level,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, for the caret display.
    pub snippet: String,
}

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule the entry baselines.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Number of findings tolerated in that file.
    pub count: usize,
    /// Why the debt is acceptable. Required: un-justified debt is debt
    /// nobody can ever retire.
    pub justification: String,
}

/// The committed debt baseline (`lint.toml`).
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// All `[[allow]]` entries in file order.
    pub allows: Vec<AllowEntry>,
    /// Per-rule tier overrides from the `[tier]` table. A rule listed
    /// here runs at the given tier instead of its built-in default —
    /// this is how P1X is promoted from warn to deny without a code
    /// change, and the distinction must survive `--update-baseline`.
    pub tiers: BTreeMap<String, Level>,
}

impl Baseline {
    /// Parses a baseline document.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = toml::parse(src)?;
        let mut tiers = BTreeMap::new();
        if let Some(table) = doc.tables.get("tier") {
            for (rule, value) in table {
                let level = match value.as_str() {
                    Some("deny") => Level::Deny,
                    Some("warn") => Level::Warn,
                    _ => return Err(format!("[tier]: `{rule}` must be \"deny\" or \"warn\"")),
                };
                tiers.insert(rule.clone(), level);
            }
        }
        let mut allows = Vec::new();
        for (idx, table) in doc.arrays.get("allow").into_iter().flatten().enumerate() {
            let field = |name: &str| -> Result<&toml::Value, String> {
                table
                    .get(name)
                    .ok_or_else(|| format!("[[allow]] #{}: missing `{name}`", idx + 1))
            };
            let rule = field("rule")?
                .as_str()
                .ok_or_else(|| format!("[[allow]] #{}: `rule` must be a string", idx + 1))?
                .to_string();
            let path = field("path")?
                .as_str()
                .ok_or_else(|| format!("[[allow]] #{}: `path` must be a string", idx + 1))?
                .to_string();
            let count = field("count")?.as_int().filter(|n| *n > 0).ok_or_else(|| {
                format!("[[allow]] #{}: `count` must be a positive integer", idx + 1)
            })? as usize;
            let justification = field("justification")?
                .as_str()
                .filter(|s| !s.trim().is_empty())
                .ok_or_else(|| {
                    format!(
                        "[[allow]] #{}: `justification` must be a non-empty string",
                        idx + 1
                    )
                })?
                .to_string();
            allows.push(AllowEntry {
                rule,
                path,
                count,
                justification,
            });
        }
        Ok(Baseline { allows, tiers })
    }

    /// The effective tier for a finding: the `[tier]` override when the
    /// rule has one, the rule's built-in default otherwise.
    pub fn tier_of(&self, rule: &str, default: Level) -> Level {
        self.tiers.get(rule).copied().unwrap_or(default)
    }

    /// Tolerated finding count per (rule, path).
    pub fn counts(&self) -> BTreeMap<(String, String), usize> {
        let mut map = BTreeMap::new();
        for a in &self.allows {
            *map.entry((a.rule.clone(), a.path.clone())).or_insert(0) += a.count;
        }
        map
    }
}

/// A baseline entry whose debt has (partially) been paid down: the live
/// finding count is below the allowed count, so the entry should shrink.
#[derive(Clone, Debug)]
pub struct StaleEntry {
    /// Rule of the stale entry.
    pub rule: String,
    /// File of the stale entry.
    pub path: String,
    /// Count recorded in `lint.toml`.
    pub allowed: usize,
    /// Findings actually present.
    pub live: usize,
}

/// The classified result of a lint run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Deny-tier findings not covered by the baseline. Non-empty ⇒ fail.
    pub errors: Vec<Finding>,
    /// Warn-tier findings (tracked, never failing).
    pub warnings: Vec<Finding>,
    /// Deny-tier findings covered by the baseline.
    pub baselined: Vec<Finding>,
    /// Baseline entries exceeding the live count (fail under `--deny`).
    pub stale: Vec<StaleEntry>,
}

/// Splits raw findings into errors / warnings / baselined debt and
/// detects stale baseline entries.
///
/// Baselining is per `(rule, path)` *count*, not per line: line numbers
/// churn with every edit, counts only change when debt is added or
/// retired. If a file exceeds its allowance, every finding in it is
/// reported so the offender is visible regardless of which edit pushed
/// the file over.
pub fn classify(findings: Vec<Finding>, baseline: &Baseline) -> Outcome {
    let mut out = Outcome::default();
    let allowed = baseline.counts();
    let mut by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for mut f in findings {
        f.level = baseline.tier_of(f.rule, f.level);
        match f.level {
            Level::Warn => out.warnings.push(f),
            Level::Deny => by_key
                .entry((f.rule.to_string(), f.path.clone()))
                .or_default()
                .push(f),
        }
    }
    for (key, group) in &by_key {
        let budget = allowed.get(key).copied().unwrap_or(0);
        if group.len() <= budget {
            out.baselined.extend(group.iter().cloned());
        } else {
            out.errors.extend(group.iter().cloned());
        }
    }
    for (key, budget) in &allowed {
        let live = by_key.get(key).map_or(0, Vec::len);
        if live < *budget {
            out.stale.push(StaleEntry {
                rule: key.0.clone(),
                path: key.1.clone(),
                allowed: *budget,
                live,
            });
        }
    }
    out.errors.sort_by(finding_order);
    out.warnings.sort_by(finding_order);
    out.baselined.sort_by(finding_order);
    out
}

fn finding_order(a: &Finding, b: &Finding) -> std::cmp::Ordering {
    (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
}

/// Renders one finding in rustc style.
pub fn render(f: &Finding) -> String {
    let label = match f.level {
        Level::Deny => "error",
        Level::Warn => "warning",
    };
    let mut s = String::new();
    let _ = writeln!(s, "{label}[{}]: {}", f.rule, f.message);
    let _ = writeln!(s, "  --> {}:{}:{}", f.path, f.line, f.col);
    let gutter = format!("{}", f.line).len().max(3);
    let _ = writeln!(s, "{:gutter$} |", "");
    let _ = writeln!(s, "{:>gutter$} | {}", f.line, f.snippet.trim_end());
    // The snippet is printed as-is, so the caret column is the finding
    // column as long as the line has no tabs; fall back gracefully.
    let caret_pad = f
        .snippet
        .chars()
        .take(f.col.saturating_sub(1) as usize)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect::<String>();
    let _ = writeln!(s, "{:gutter$} | {caret_pad}^", "");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"level\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        json_escape(f.rule),
        match f.level {
            Level::Deny => "deny",
            Level::Warn => "warn",
        },
        json_escape(&f.path),
        f.line,
        f.col,
        json_escape(&f.message),
    )
}

/// Renders a whole outcome as a machine-readable JSON document, for CI
/// consumers (the GitHub-annotation step) and external tooling. The
/// shape is stable: `errors`/`warnings` are arrays of finding objects,
/// `stale` is an array of baseline-entry objects, `baselined` is a
/// count.
pub fn render_json(outcome: &Outcome) -> String {
    let list = |fs: &[Finding]| fs.iter().map(finding_json).collect::<Vec<_>>().join(",");
    let stale = outcome
        .stale
        .iter()
        .map(|s| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"allowed\":{},\"live\":{}}}",
                json_escape(&s.rule),
                json_escape(&s.path),
                s.allowed,
                s.live
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"errors\":[{}],\"warnings\":[{}],\"baselined\":{},\"stale\":[{}]}}\n",
        list(&outcome.errors),
        list(&outcome.warnings),
        outcome.baselined.len(),
        stale
    )
}

/// Renders a whole outcome as a SARIF 2.1.0 log, the interchange format
/// GitHub code scanning ingests. One run, one result per error and
/// warning (baselined findings are omitted — they are accepted debt),
/// with the full rule registry listed once under the driver — every
/// rule with its one-line description, not just the rules that fired,
/// so a clean run still documents what was checked.
pub fn render_sarif(outcome: &Outcome) -> String {
    let rule_objs = crate::rules::Rule::ALL
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(r.id()),
                json_escape(r.describe())
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let result = |f: &Finding| {
        format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_escape(f.rule),
            match f.level {
                Level::Deny => "error",
                Level::Warn => "warning",
            },
            json_escape(&f.message),
            json_escape(&f.path),
            f.line,
            f.col,
        )
    };
    let results = outcome
        .errors
        .iter()
        .chain(&outcome.warnings)
        .map(result)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"ldis-lint\",\"rules\":[{rule_objs}]}}}},\
         \"results\":[{results}]}}]}}\n"
    )
}

/// Renders one finding as a GitHub Actions workflow command, so CI runs
/// surface findings as inline annotations on the PR diff.
pub fn render_annotation(f: &Finding) -> String {
    let kind = match f.level {
        Level::Deny => "error",
        Level::Warn => "warning",
    };
    // Workflow commands need %, CR and LF escaped in the message body.
    let msg = f
        .message
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    format!(
        "::{kind} file={},line={},col={},title=ldis-lint {}::{msg}\n",
        f.path, f.line, f.col, f.rule
    )
}

/// Serializes a baseline back to `lint.toml` form (used by
/// `--update-baseline`). Entries are sorted by rule then path, and the
/// `[tier]` table — which `--update-baseline` must never drop, or a
/// regeneration would silently demote P1X back to warn — is emitted
/// first.
pub fn write_baseline(entries: &[AllowEntry], tiers: &BTreeMap<String, Level>) -> String {
    let mut sorted: Vec<&AllowEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.rule, &a.path).cmp(&(&b.rule, &b.path)));
    let mut s = String::from(
        "# ldis-lint debt baseline.\n\
         #\n\
         # Each [[allow]] entry tolerates `count` findings of `rule` in `path`,\n\
         # with a justification for why the debt is acceptable. The count is\n\
         # exact: paying debt down without shrinking the entry fails `--deny`\n\
         # (stale baseline), and adding debt fails any mode. The [tier] table\n\
         # overrides a rule's built-in tier. Regenerate with\n\
         # `cargo run -p ldis-lint -- --update-baseline` and then re-justify\n\
         # any `TODO` entries it leaves behind.\n",
    );
    if !tiers.is_empty() {
        s.push_str("\n[tier]\n");
        for (rule, level) in tiers {
            let _ = writeln!(
                s,
                "{} = \"{}\"",
                toml::escape(rule),
                match level {
                    Level::Deny => "deny",
                    Level::Warn => "warn",
                }
            );
        }
    }
    for e in sorted {
        let _ = write!(
            s,
            "\n[[allow]]\nrule = \"{}\"\npath = \"{}\"\ncount = {}\njustification = \"{}\"\n",
            toml::escape(&e.rule),
            toml::escape(&e.path),
            e.count,
            toml::escape(&e.justification),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, level: Level) -> Finding {
        Finding {
            rule,
            level,
            path: path.into(),
            line,
            col: 1,
            message: format!("{rule} fired"),
            snippet: "x".into(),
        }
    }

    #[test]
    fn classify_baselines_exact_counts() {
        let baseline = Baseline::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\ncount = 2\njustification = \"j\"\n",
        )
        .expect("parses");
        let out = classify(
            vec![
                finding("P1", "a.rs", 1, Level::Deny),
                finding("P1", "a.rs", 2, Level::Deny),
                finding("P1", "b.rs", 3, Level::Deny),
                finding("P1X", "a.rs", 4, Level::Warn),
            ],
            &baseline,
        );
        assert_eq!(out.baselined.len(), 2);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].path, "b.rs");
        assert_eq!(out.warnings.len(), 1);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn exceeding_the_budget_reports_every_finding() {
        let baseline = Baseline::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\ncount = 1\njustification = \"j\"\n",
        )
        .expect("parses");
        let out = classify(
            vec![
                finding("P1", "a.rs", 1, Level::Deny),
                finding("P1", "a.rs", 2, Level::Deny),
            ],
            &baseline,
        );
        assert_eq!(out.errors.len(), 2, "whole group surfaces on overflow");
        assert!(out.baselined.is_empty());
    }

    #[test]
    fn paid_down_debt_is_stale() {
        let baseline = Baseline::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\ncount = 3\njustification = \"j\"\n",
        )
        .expect("parses");
        let out = classify(vec![finding("P1", "a.rs", 1, Level::Deny)], &baseline);
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].allowed, 3);
        assert_eq!(out.stale[0].live, 1);
    }

    #[test]
    fn baseline_requires_justifications() {
        let err = Baseline::parse("[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\ncount = 1\n");
        assert!(err.is_err());
        let err = Baseline::parse(
            "[[allow]]\nrule = \"P1\"\npath = \"a.rs\"\ncount = 1\njustification = \" \"\n",
        );
        assert!(err.is_err());
    }

    #[test]
    fn render_is_rustc_shaped() {
        let text = render(&finding("D1", "crates/mem/src/rng.rs", 7, Level::Deny));
        assert!(text.starts_with("error[D1]: D1 fired"));
        assert!(text.contains("--> crates/mem/src/rng.rs:7:1"));
        assert!(text.contains("^"));
    }

    #[test]
    fn json_output_is_machine_readable() {
        let out = classify(
            vec![
                finding("P1", "a \"b\".rs", 1, Level::Deny),
                finding("P1X", "c.rs", 2, Level::Warn),
            ],
            &Baseline::default(),
        );
        let text = render_json(&out);
        assert!(text.contains("\"errors\":[{\"rule\":\"P1\""));
        assert!(text.contains("\"path\":\"a \\\"b\\\".rs\""));
        assert!(text.contains("\"warnings\":[{\"rule\":\"P1X\""));
        assert!(text.contains("\"baselined\":0"));
        assert!(text.ends_with("]}\n"));
    }

    #[test]
    fn sarif_output_lists_rules_once_and_locates_results() {
        let out = classify(
            vec![
                finding("S1", "crates/core/src/a.rs", 9, Level::Deny),
                finding("S1", "crates/core/src/b.rs", 2, Level::Deny),
                finding("P1X", "c.rs", 1, Level::Warn),
            ],
            &Baseline::default(),
        );
        let text = render_sarif(&out);
        assert!(text.contains("\"version\":\"2.1.0\""));
        assert!(text.contains("\"name\":\"ldis-lint\""));
        // The driver lists the whole registry with descriptions, each
        // rule exactly once — including the absint rules even when the
        // run has no finding for them.
        for rule in crate::rules::Rule::ALL {
            assert_eq!(
                text.matches(&format!("{{\"id\":\"{}\"", rule.id())).count(),
                1,
                "{} missing from driver rules",
                rule.id()
            );
        }
        assert!(text.contains("\"shortDescription\""));
        assert!(text.contains(
            "\"artifactLocation\":{\"uri\":\"crates/core/src/a.rs\"},\
             \"region\":{\"startLine\":9,\"startColumn\":1}"
        ));
        assert!(text.contains("\"level\":\"warning\""));
    }

    #[test]
    fn annotations_escape_workflow_commands() {
        let mut f = finding("P2", "a.rs", 3, Level::Deny);
        f.message = "path: x -> y\n50% of calls".into();
        let text = render_annotation(&f);
        assert_eq!(
            text,
            "::error file=a.rs,line=3,col=1,title=ldis-lint P2::path: x -> y%0A50%25 of calls\n"
        );
    }

    #[test]
    fn write_baseline_round_trips() {
        let entries = vec![AllowEntry {
            rule: "P1".into(),
            path: "a.rs".into(),
            count: 2,
            justification: "says \"why\"".into(),
        }];
        let mut tiers = BTreeMap::new();
        tiers.insert("P1X".to_string(), Level::Deny);
        tiers.insert("D9".to_string(), Level::Warn);
        let text = write_baseline(&entries, &tiers);
        let back = Baseline::parse(&text).expect("round trip");
        assert_eq!(back.allows.len(), 1);
        assert_eq!(back.allows[0].justification, "says \"why\"");
        // Tier overrides — including the justifications on the entries —
        // must survive a full write/parse cycle, or --update-baseline
        // would silently demote promoted rules.
        assert_eq!(back.tiers, tiers);
        let again = write_baseline(&back.allows, &back.tiers);
        assert_eq!(again, text, "regeneration is a fixed point");
    }

    #[test]
    fn tier_overrides_promote_and_demote() {
        let baseline = Baseline::parse("[tier]\nP1X = \"deny\"\nD1 = \"warn\"\n").expect("parses");
        let out = classify(
            vec![
                finding("P1X", "a.rs", 1, Level::Warn),
                finding("D1", "a.rs", 2, Level::Deny),
                finding("P1", "a.rs", 3, Level::Deny),
            ],
            &baseline,
        );
        assert_eq!(out.errors.len(), 2, "{:?}", out.errors);
        assert_eq!(out.errors[0].rule, "P1X");
        assert_eq!(out.errors[0].level, Level::Deny);
        assert_eq!(out.warnings.len(), 1);
        assert_eq!(out.warnings[0].rule, "D1");
        assert!(Baseline::parse("[tier]\nP1X = \"loud\"\n").is_err());
    }
}
