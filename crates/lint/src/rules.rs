//! The rule set: determinism (D1), ordered iteration (D2), panic safety
//! (P1/P1X) and config invariants (C1).
//!
//! All rules work on the token stream from [`crate::lexer`]. Findings can
//! be waived inline with `// ldis: allow(RULE, "why")` on the offending
//! line or the line above; larger debts belong in the `lint.toml`
//! baseline instead so they stay counted.

use crate::lexer::{self, Comment, Token};
use crate::report::{Finding, Level};
use std::collections::BTreeMap;

/// A lintable rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// No ambient entropy or wall-clock state in simulator crates: all
    /// randomness must flow through `SimRng` / `SimRng::derive`.
    D1,
    /// No `HashMap`/`HashSet`: iteration order would depend on the hasher
    /// seed, which breaks byte-stable reports. Use `BTreeMap`/`BTreeSet`.
    D2,
    /// No `unwrap`/`expect`/`panic!`-family calls in simulator core code;
    /// failures route through `LdisError` or checked accessors.
    P1,
    /// Raw `[...]` indexing in simulator core code (warn tier: tracked,
    /// not failing — bounds are usually geometry-guaranteed).
    P1X,
    /// Config literals in examples/benches and golden snapshots must
    /// describe possible geometries and the paper's PSEL rails.
    C1,
    /// Interprocedural panic-reachability: public functions of the
    /// sim-core crates must be transitively panic-free modulo the
    /// justified `lint.toml` entries.
    P2,
    /// Unit safety: byte addresses, word indices, line addresses and set
    /// indices must not mix without an explicit conversion.
    U1,
    /// Float determinism: no floating-point accumulation that merges
    /// parallel-sweep cell results outside the canonical-order merge.
    D3,
    /// Waiver hygiene: every `// ldis: allow(RULE, "why")` must carry a
    /// non-empty justification string.
    W1,
    /// Seed provenance (flow-sensitive): `SimRng` streams must be
    /// constructed from seeds derived off the root seed
    /// (`derive`/`derive_seed_chain`/`stable_id`/`fork`), salt literals
    /// must not collide across derive call sites, and a derived RNG must
    /// not be reused after a parallel region captured it.
    S1,
    /// Lock discipline: the workspace lock-acquisition-order graph must
    /// be acyclic, no lock may be re-acquired while held, and no
    /// panic-capable call may run under a held lock.
    L2,
    /// Counter arithmetic: unchecked `+`/`*`/`<<` on `u64`/`u32` stats
    /// counters and `LineGeometry` address math must be
    /// `checked_`/`saturating_`/explicitly wrapping, or carry a
    /// justified waiver.
    O1,
    /// Shift safety (abstract interpretation): every `<<`/`>>` amount in
    /// the sim crates must be provably smaller than the bit width of the
    /// shifted type.
    B1,
    /// Packed-index provenance (abstract interpretation): arena-style
    /// flattened `set * assoc + way` indices must be proven in-range
    /// given the config bounds.
    R1,
    /// Lossless truncation (abstract interpretation): every narrowing
    /// `as u8`/`as u16`/`as u32` cast in the sim crates must be proven
    /// value-preserving, or carry a justified waiver.
    T1,
}

impl Rule {
    /// The rule's identifier as it appears in diagnostics and `lint.toml`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::P1 => "P1",
            Rule::P1X => "P1X",
            Rule::C1 => "C1",
            Rule::P2 => "P2",
            Rule::U1 => "U1",
            Rule::D3 => "D3",
            Rule::W1 => "W1",
            Rule::S1 => "S1",
            Rule::L2 => "L2",
            Rule::O1 => "O1",
            Rule::B1 => "B1",
            Rule::R1 => "R1",
            Rule::T1 => "T1",
        }
    }

    /// Every rule, in diagnostic order — drives the static SARIF rule
    /// metadata so tooling sees the full vocabulary even on clean runs.
    pub const ALL: &'static [Rule] = &[
        Rule::D1,
        Rule::D2,
        Rule::P1,
        Rule::P1X,
        Rule::C1,
        Rule::P2,
        Rule::U1,
        Rule::D3,
        Rule::W1,
        Rule::S1,
        Rule::L2,
        Rule::O1,
        Rule::B1,
        Rule::R1,
        Rule::T1,
    ];

    /// One-line description for SARIF rule metadata.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "no ambient entropy or wall clocks in simulator crates",
            Rule::D2 => "no hasher-ordered containers observable by reports",
            Rule::P1 => "no unwrap/expect/panic-family calls in sim core code",
            Rule::P1X => "raw [..] indexing in sim core code (tracked)",
            Rule::C1 => "config literals must describe possible geometries",
            Rule::P2 => "public sim-core functions transitively panic-free",
            Rule::U1 => "no unit mixing between address/index domains",
            Rule::D3 => "no order-sensitive float accumulation across sweep cells",
            Rule::W1 => "every waiver carries a non-empty justification",
            Rule::S1 => "RNG streams derive from the root seed without collisions",
            Rule::L2 => "lock order acyclic, no re-entry, no panic under lock",
            Rule::O1 => "counter arithmetic overflow-checked or justified",
            Rule::B1 => "shift amounts provably below the shifted type's width",
            Rule::R1 => "packed arena indices proven within bounds",
            Rule::T1 => "narrowing casts proven value-preserving or waived",
        }
    }

    /// Default severity tier; `lint.toml`'s `[tier]` table can override
    /// it per rule (that is how P1X is promoted to deny).
    pub fn level(self) -> Level {
        match self {
            Rule::P1X => Level::Warn,
            _ => Level::Deny,
        }
    }
}

/// Index of `// ldis: allow(RULE, "why")` comments by line.
///
/// The waiver grammar is uniform across every rule, and the
/// justification string is mandatory: a waiver whose `"why"` is missing
/// or blank does not waive anything and is itself reported (rule `W1`).
pub struct AllowIndex {
    by_line: BTreeMap<u32, Vec<String>>,
    /// Waivers missing a justification: (line, rule-as-written).
    malformed: Vec<(u32, String)>,
}

impl AllowIndex {
    /// Builds the index from a file's comments. A block comment indexes at
    /// its starting line.
    pub fn build(comments: &[Comment]) -> Self {
        let mut by_line: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut malformed = Vec::new();
        for c in comments {
            let mut rest = c.text.as_str();
            while let Some(at) = rest.find("ldis: allow(") {
                rest = &rest[at + "ldis: allow(".len()..];
                let rule: String = rest
                    .chars()
                    .take_while(|ch| ch.is_ascii_alphanumeric())
                    .collect();
                if rule.is_empty() {
                    continue;
                }
                // A justification is `, "non-blank"` after the rule.
                let tail = rest[rule.len()..].trim_start();
                let justified = tail
                    .strip_prefix(',')
                    .map(str::trim_start)
                    .and_then(|t| t.strip_prefix('"'))
                    .and_then(|t| t.split('"').next())
                    .is_some_and(|why| !why.trim().is_empty());
                if justified {
                    by_line.entry(c.line).or_default().push(rule);
                } else {
                    malformed.push((c.line, rule));
                }
            }
        }
        AllowIndex { by_line, malformed }
    }

    /// Does a *justified* allow comment on this line or the line above
    /// waive `rule`?
    pub fn allows(&self, rule: Rule, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.by_line
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule.id()))
        })
    }

    /// Waivers with a missing or blank justification: (line, rule).
    pub fn malformed(&self) -> &[(u32, String)] {
        &self.malformed
    }

    /// Lines carrying a justified waiver for `rule`, for staleness
    /// checks (a waiver covers its own line and the line below).
    pub fn justified_lines(&self, rule: Rule) -> Vec<u32> {
        self.by_line
            .iter()
            .filter(|(_, rules)| rules.iter().any(|r| r == rule.id()))
            .map(|(line, _)| *line)
            .collect()
    }
}

/// Everything a rule needs about one source file.
pub struct FileContext<'a> {
    /// Workspace-relative path (`/` separators).
    pub path: &'a str,
    /// Source lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Allow-comment index.
    pub allows: AllowIndex,
    /// `#[cfg(test)]` line ranges.
    pub test_regions: Vec<(u32, u32)>,
}

impl<'a> FileContext<'a> {
    /// Lexes `src` and prepares the indexes.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let lexed = lexer::lex(src);
        let allows = AllowIndex::build(&lexed.comments);
        let test_regions = lexer::test_regions(&lexed.tokens);
        FileContext {
            path,
            lines: src.lines().collect(),
            tokens: lexed.tokens,
            allows,
            test_regions,
        }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or_else(String::new, |l| (*l).to_string())
    }

    fn finding(&self, rule: Rule, tok: &Token, message: String) -> Finding {
        Finding {
            rule: rule.id(),
            level: rule.level(),
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
        }
    }

    fn in_tests(&self, line: u32) -> bool {
        lexer::in_regions(&self.test_regions, line)
    }
}

/// Runs `rules` over one Rust source file.
pub fn scan_rust(ctx: &FileContext<'_>, rules: &[Rule]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules {
        match rule {
            Rule::D1 => d1(ctx, &mut findings),
            Rule::D2 => d2(ctx, &mut findings),
            Rule::P1 => p1(ctx, &mut findings),
            Rule::P1X => p1x(ctx, &mut findings),
            Rule::C1 => c1(ctx, &mut findings),
            // Interprocedural and flow-sensitive rules run in the
            // workspace pass (`crate::analyze`), not per file.
            Rule::P2
            | Rule::U1
            | Rule::D3
            | Rule::W1
            | Rule::S1
            | Rule::L2
            | Rule::O1
            | Rule::B1
            | Rule::R1
            | Rule::T1 => {}
        }
    }
    // Waiver hygiene applies to every linted file regardless of which
    // rules its path selects: an unjustified waiver is dead weight that
    // silently stops waiving the day justifications become load-bearing.
    for (line, rule) in ctx.allows.malformed() {
        findings.push(Finding {
            rule: Rule::W1.id(),
            level: Rule::W1.level(),
            path: ctx.path.to_string(),
            line: *line,
            col: 1,
            message: format!(
                "waiver `ldis: allow({rule}, ...)` has no justification string; write `// ldis: allow({rule}, \"why\")`"
            ),
            snippet: ctx.snippet(*line),
        });
    }
    findings
}

// --- D1: determinism -----------------------------------------------------

const D1_IDENTS: &[(&str, &str)] = &[
    (
        "Instant",
        "`std::time::Instant` reads the wall clock; simulator state must derive from simulated cycles",
    ),
    (
        "SystemTime",
        "`std::time::SystemTime` reads the wall clock; simulator state must derive from simulated cycles",
    ),
    (
        "UNIX_EPOCH",
        "wall-clock timestamps are nondeterministic; simulator state must derive from simulated cycles",
    ),
    (
        "thread_rng",
        "ambient RNGs are seeded from OS entropy; all randomness must flow through `SimRng`/`SimRng::derive`",
    ),
    (
        "OsRng",
        "OS entropy is nondeterministic; all randomness must flow through `SimRng`/`SimRng::derive`",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG construction is nondeterministic; derive seeds with `SimRng::derive`",
    ),
    (
        "getrandom",
        "OS entropy is nondeterministic; all randomness must flow through `SimRng`/`SimRng::derive`",
    ),
];

fn d1(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != lexer::TokKind::Ident {
            continue;
        }
        if let Some((_, why)) = D1_IDENTS.iter().find(|(name, _)| tok.is_ident(name)) {
            if !ctx.allows.allows(Rule::D1, tok.line) {
                findings.push(ctx.finding(Rule::D1, tok, format!("`{}`: {why}", tok.text)));
            }
            continue;
        }
        // `env::var*` / `env::args*`: environment reads make sim behavior
        // host-dependent. (The experiments driver is out of D1 scope.)
        if tok.is_ident("env")
            && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && ctx.tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && ctx.tokens.get(i + 3).is_some_and(|t| {
                t.kind == lexer::TokKind::Ident
                    && (t.text.starts_with("var") || t.text.starts_with("args"))
            })
            && !ctx.allows.allows(Rule::D1, tok.line)
        {
            findings.push(ctx.finding(
                Rule::D1,
                tok,
                "environment reads make simulation behavior host-dependent; thread configuration through config structs".into(),
            ));
        }
    }
}

// --- D2: ordered iteration ----------------------------------------------

fn d2(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for tok in &ctx.tokens {
        let hashed =
            tok.is_ident("HashMap") || tok.is_ident("HashSet") || tok.is_ident("RandomState");
        if hashed && !ctx.allows.allows(Rule::D2, tok.line) {
            findings.push(ctx.finding(
                Rule::D2,
                tok,
                format!(
                    "`{}` iteration order depends on the hasher seed; use `BTreeMap`/`BTreeSet` (or waive membership-only uses with `// ldis: allow(D2, \"why\")`)",
                    tok.text
                ),
            ));
        }
    }
}

// --- P1: panic safety ----------------------------------------------------

const P1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn p1(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != lexer::TokKind::Ident
            || ctx.in_tests(tok.line)
            || ctx.allows.allows(Rule::P1, tok.line)
        {
            continue;
        }
        // `.unwrap(` / `.expect(`.
        if (tok.is_ident("unwrap") || tok.is_ident("expect"))
            && i > 0
            && ctx.tokens[i - 1].is_punct('.')
            && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            findings.push(ctx.finding(
                Rule::P1,
                tok,
                format!(
                    "`.{}()` panics in simulator core code; return `LdisError` or use a checked accessor (`unwrap_or`, `let-else`, `match`)",
                    tok.text
                ),
            ));
            continue;
        }
        // panic!-family macros.
        if P1_MACROS.iter().any(|m| tok.is_ident(m))
            && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            findings.push(ctx.finding(
                Rule::P1,
                tok,
                format!(
                    "`{}!` aborts the simulation; degrade gracefully via `LdisError` instead",
                    tok.text
                ),
            ));
        }
    }
}

/// Keywords that can directly precede a `[` without forming an index
/// expression (slice patterns, array literals in statements, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "move", "box", "dyn", "impl",
    "for", "while", "loop", "break", "continue", "where", "as", "use", "pub", "fn", "type",
    "const", "static", "enum", "struct", "trait", "mod", "unsafe", "async", "await", "yield",
];

fn p1x(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if !tok.is_punct('[') || i == 0 {
            continue;
        }
        let prev = &ctx.tokens[i - 1];
        let indexes = match prev.kind {
            lexer::TokKind::Ident => !NON_INDEX_KEYWORDS.iter().any(|k| prev.is_ident(k)),
            lexer::TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes && !ctx.in_tests(tok.line) && !ctx.allows.allows(Rule::P1X, tok.line) {
            findings.push(ctx.finding(
                Rule::P1X,
                tok,
                "raw indexing can panic on out-of-range values; prefer `.get()` where bounds are not structurally guaranteed".into(),
            ));
        }
    }
}

// --- C1: config invariants ----------------------------------------------

/// The paper's PSEL hysteresis rails (Section 5.5): disable below 64,
/// enable above 192 on an 8-bit counter.
const PSEL_RAILS: (i128, i128) = (64, 192);
const DEFAULT_REVERTER: [(&str, i128); 4] = [
    ("leader_sets", 32),
    ("disable_below", 64),
    ("enable_above", 192),
    ("psel_max", 255),
];

fn c1(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if ctx.allows.allows(Rule::C1, toks[i].line) {
            continue;
        }
        if path_call_at(toks, i, "LineGeometry", "new") {
            if let Some((args, _)) = split_args(toks, i + 4) {
                check_geometry_literal(ctx, &toks[i], &args, findings);
            }
        } else if path_call_at(toks, i, "CacheConfig", "new") {
            if let Some((args, _)) = split_args(toks, i + 4) {
                check_cache_config(ctx, &toks[i], &args, findings);
            }
        } else if path_call_at(toks, i, "DistillConfig", "new") {
            if let Some((args, _)) = split_args(toks, i + 4) {
                check_distill_config(ctx, &toks[i], &args, findings);
            }
        } else if toks[i].is_ident("ReverterConfig")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('{'))
        {
            check_reverter_literal(ctx, i, findings);
        }
    }
}

/// Matches `Type :: method (` starting at `i` (the type identifier).
fn path_call_at(toks: &[Token], i: usize, ty: &str, method: &str) -> bool {
    toks[i].is_ident(ty)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(method))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Splits the argument list of the call whose `(` is at `open` into
/// top-level comma-separated token ranges. Returns the ranges and the
/// index of the closing `)`.
pub(crate) fn split_args(
    toks: &[Token],
    open: usize,
) -> Option<(Vec<std::ops::Range<usize>>, usize)> {
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if i > start {
                    args.push(start..i);
                }
                return Some((args, i));
            }
        } else if depth == 1 && t.is_punct(',') {
            args.push(start..i);
            start = i + 1;
        }
        i += 1;
    }
    None
}

/// Evaluates an integer constant expression over `+ - * / % << >> & | ^`
/// and parentheses. Returns `None` when the expression references
/// variables or anything else non-literal.
pub fn const_eval(toks: &[Token]) -> Option<i128> {
    let mut pos = 0usize;
    let v = eval_bin(toks, &mut pos, 0)?;
    (pos == toks.len()).then_some(v)
}

/// Binary operators from loosest to tightest, mirroring Rust precedence.
const BIN_LEVELS: &[&[&str]] = &[
    &["|"],
    &["^"],
    &["&"],
    &["<<", ">>"],
    &["+", "-"],
    &["*", "/", "%"],
];

fn eval_bin(toks: &[Token], pos: &mut usize, level: usize) -> Option<i128> {
    if level == BIN_LEVELS.len() {
        return eval_atom(toks, pos);
    }
    let mut lhs = eval_bin(toks, pos, level + 1)?;
    loop {
        let Some(op) = match_op(toks, *pos, BIN_LEVELS[level]) else {
            return Some(lhs);
        };
        *pos += op.len(); // one token per character
        let rhs = eval_bin(toks, pos, level + 1)?;
        lhs = match op {
            "|" => lhs | rhs,
            "^" => lhs ^ rhs,
            "&" => lhs & rhs,
            "<<" => lhs.checked_shl(u32::try_from(rhs).ok()?)?,
            ">>" => lhs.checked_shr(u32::try_from(rhs).ok()?)?,
            "+" => lhs.checked_add(rhs)?,
            "-" => lhs.checked_sub(rhs)?,
            "*" => lhs.checked_mul(rhs)?,
            "/" => lhs.checked_div(rhs)?,
            "%" => lhs.checked_rem(rhs)?,
            _ => return None,
        };
    }
}

/// Matches a (possibly multi-character) operator at `pos`; operators are
/// lexed one `Punct` per character.
fn match_op<'a>(toks: &[Token], pos: usize, ops: &[&'a str]) -> Option<&'a str> {
    ops.iter().copied().find(|op| {
        op.chars()
            .enumerate()
            .all(|(k, c)| toks.get(pos + k).is_some_and(|t| t.is_punct(c)))
    })
}

fn eval_atom(toks: &[Token], pos: &mut usize) -> Option<i128> {
    let t = toks.get(*pos)?;
    if t.is_punct('(') {
        *pos += 1;
        let v = eval_bin(toks, pos, 0)?;
        if !toks.get(*pos)?.is_punct(')') {
            return None;
        }
        *pos += 1;
        return Some(v);
    }
    if t.is_punct('-') {
        *pos += 1;
        return Some(-eval_atom(toks, pos)?);
    }
    if t.kind != lexer::TokKind::Int {
        return None;
    }
    *pos += 1;
    parse_int(&t.text)
}

/// Parses a Rust integer literal: underscores, radix prefixes, suffixes.
pub fn parse_int(text: &str) -> Option<i128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(rest) = clean.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (rest, 2)
    } else {
        (clean.as_str(), 10)
    };
    // Strip a type suffix (u8/u16/.../i128/usize/isize).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    i128::from_str_radix(&digits[..end], radix).ok()
}

/// Geometry of one cache line, when statically resolvable.
#[derive(Clone, Copy, Debug)]
struct Geometry {
    line_bytes: i128,
    word_bytes: i128,
}

impl Geometry {
    const DEFAULT: Geometry = Geometry {
        line_bytes: 64,
        word_bytes: 8,
    };
}

/// Resolves a geometry argument: `LineGeometry::default()`,
/// `Default::default()` or `LineGeometry::new(lit, lit)`.
fn resolve_geometry(toks: &[Token]) -> Option<Geometry> {
    if toks.is_empty() {
        return None;
    }
    if path_call_at(toks, 0, "LineGeometry", "default")
        || path_call_at(toks, 0, "Default", "default")
    {
        return Some(Geometry::DEFAULT);
    }
    if path_call_at(toks, 0, "LineGeometry", "new") {
        let (args, _) = split_args(toks, 4)?;
        if args.len() == 2 {
            return Some(Geometry {
                line_bytes: const_eval(&toks[args[0].clone()])?,
                word_bytes: const_eval(&toks[args[1].clone()])?,
            });
        }
    }
    None
}

fn geometry_violation(g: Geometry) -> Option<String> {
    if g.line_bytes <= 0 || !i128_pow2(g.line_bytes) {
        return Some(format!("line size {} is not a power of two", g.line_bytes));
    }
    if g.word_bytes <= 0 || !i128_pow2(g.word_bytes) {
        return Some(format!("word size {} is not a power of two", g.word_bytes));
    }
    if g.word_bytes >= g.line_bytes {
        return Some(format!(
            "word size {} does not subdivide line size {}",
            g.word_bytes, g.line_bytes
        ));
    }
    let words = g.line_bytes / g.word_bytes;
    if !(2..=16).contains(&words) {
        return Some(format!("a line must hold 2..=16 words, got {words}"));
    }
    None
}

fn i128_pow2(v: i128) -> bool {
    v > 0 && v & (v - 1) == 0
}

fn check_geometry_literal(
    ctx: &FileContext<'_>,
    at: &Token,
    args: &[std::ops::Range<usize>],
    findings: &mut Vec<Finding>,
) {
    if args.len() != 2 {
        return;
    }
    let (Some(line_bytes), Some(word_bytes)) = (
        const_eval(&ctx.tokens[args[0].clone()]),
        const_eval(&ctx.tokens[args[1].clone()]),
    ) else {
        return;
    };
    if let Some(why) = geometry_violation(Geometry {
        line_bytes,
        word_bytes,
    }) {
        findings.push(ctx.finding(Rule::C1, at, format!("impossible line geometry: {why}")));
    }
}

/// Shared set-count check: `size / (line_bytes * ways)` must be a
/// positive power of two.
fn check_sets(
    ctx: &FileContext<'_>,
    at: &Token,
    what: &str,
    size: i128,
    ways: i128,
    geometry: Option<Geometry>,
    findings: &mut Vec<Finding>,
) {
    if ways <= 0 {
        findings.push(ctx.finding(Rule::C1, at, format!("impossible {what}: {ways} ways")));
        return;
    }
    let Some(g) = geometry else { return };
    if geometry_violation(g).is_some() {
        return; // already reported at the geometry literal
    }
    let line_capacity = g.line_bytes * ways;
    let sets = size / line_capacity;
    if sets < 1 || sets * line_capacity != size || !i128_pow2(sets) {
        findings.push(ctx.finding(
            Rule::C1,
            at,
            format!(
                "impossible {what}: {size} B / ({} B lines × {ways} ways) must give a power-of-two set count, got {sets}",
                g.line_bytes
            ),
        ));
    }
}

fn check_cache_config(
    ctx: &FileContext<'_>,
    at: &Token,
    args: &[std::ops::Range<usize>],
    findings: &mut Vec<Finding>,
) {
    if args.len() != 3 {
        return;
    }
    let (Some(size), Some(ways)) = (
        const_eval(&ctx.tokens[args[0].clone()]),
        const_eval(&ctx.tokens[args[1].clone()]),
    ) else {
        return;
    };
    let geometry = resolve_geometry(&ctx.tokens[args[2].clone()]);
    check_sets(ctx, at, "cache geometry", size, ways, geometry, findings);
}

fn check_distill_config(
    ctx: &FileContext<'_>,
    at: &Token,
    args: &[std::ops::Range<usize>],
    findings: &mut Vec<Finding>,
) {
    if args.len() != 4 {
        return;
    }
    let size = const_eval(&ctx.tokens[args[0].clone()]);
    let total = const_eval(&ctx.tokens[args[1].clone()]);
    let woc = const_eval(&ctx.tokens[args[2].clone()]);
    if let (Some(total), Some(woc)) = (total, woc) {
        // The LOC/WOC split must partition the associativity: at least
        // one WOC way and at least one LOC way (LOC ways = total - WOC).
        if !(1..total).contains(&woc) {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!(
                    "impossible LOC/WOC split: {woc} WOC ways of {total} total (need 1 ≤ WOC < total so LOC+WOC = associativity)"
                ),
            ));
        }
    }
    if let (Some(size), Some(total)) = (size, total) {
        let geometry = resolve_geometry(&ctx.tokens[args[3].clone()]);
        check_sets(
            ctx,
            at,
            "distill-cache geometry",
            size,
            total,
            geometry,
            findings,
        );
    }
}

fn check_reverter_literal(ctx: &FileContext<'_>, i: usize, findings: &mut Vec<Finding>) {
    let toks = &ctx.tokens;
    let at = &toks[i];
    // Parse `ReverterConfig { field: expr, ..rest }` up to the matching
    // brace; nested braces end the literal-field scan conservatively.
    let Some((fields, has_rest)) = parse_struct_fields(toks, i + 1) else {
        return;
    };
    let mut values: BTreeMap<&str, Option<i128>> = BTreeMap::new();
    for (name, default) in DEFAULT_REVERTER {
        values.insert(name, has_rest.then_some(default));
    }
    for (name, range) in &fields {
        if let Some(slot) = values.get_mut(name.as_str()) {
            *slot = const_eval(&toks[range.clone()]);
        }
    }
    let get = |name: &str| values.get(name).copied().flatten();
    if let Some(leaders) = get("leader_sets") {
        if !i128_pow2(leaders) {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!("reverter leader_sets must be a positive power of two, got {leaders}"),
            ));
        }
    }
    let disable = get("disable_below");
    let enable = get("enable_above");
    let max = get("psel_max");
    if let (Some(d), Some(e)) = (disable, enable) {
        if d >= e {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!(
                    "reverter hysteresis inverted: disable_below {d} must be < enable_above {e}"
                ),
            ));
        }
    }
    if let (Some(e), Some(m)) = (enable, max) {
        if e > m {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!("reverter enable_above {e} exceeds psel_max {m}"),
            ));
        }
    }
    // The paper's rails: deviating thresholds are usually a typo; a
    // deliberate threshold sweep carries an allow comment.
    if let Some(d) = disable {
        if d != PSEL_RAILS.0 {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!(
                    "disable_below {d} is off the paper's 64/192 hysteresis rails (waive deliberate sweeps with `// ldis: allow(C1, \"why\")`)"
                ),
            ));
        }
    }
    if let Some(e) = enable {
        if e != PSEL_RAILS.1 {
            findings.push(ctx.finding(
                Rule::C1,
                at,
                format!(
                    "enable_above {e} is off the paper's 64/192 hysteresis rails (waive deliberate sweeps with `// ldis: allow(C1, \"why\")`)"
                ),
            ));
        }
    }
}

/// A struct-literal field: its name and the token range of its value.
type StructField = (String, std::ops::Range<usize>);

/// Parses `{ name: expr, name: expr, ..rest }` starting at the `{`.
/// Returns the named fields with their value token ranges, plus whether a
/// `..rest` tail was present. Bails out (`None`) on nested braces inside
/// field values — those are not literal configs.
fn parse_struct_fields(toks: &[Token], open: usize) -> Option<(Vec<StructField>, bool)> {
    if !toks.get(open)?.is_punct('{') {
        return None;
    }
    let mut fields = Vec::new();
    let mut has_rest = false;
    let mut i = open + 1;
    loop {
        let t = toks.get(i)?;
        if t.is_punct('}') {
            return Some((fields, has_rest));
        }
        if t.is_punct('.') && toks.get(i + 1)?.is_punct('.') {
            has_rest = true;
            // Skip the rest-expression to the closing brace.
            let mut depth = 0i32;
            while let Some(t2) = toks.get(i) {
                if t2.is_punct('(') {
                    depth += 1;
                } else if t2.is_punct(')') {
                    depth -= 1;
                } else if depth == 0 && t2.is_punct('}') {
                    return Some((fields, has_rest));
                }
                i += 1;
            }
            return None;
        }
        // `name : value` up to a top-level `,` or `}`.
        if t.kind != lexer::TokKind::Ident || !toks.get(i + 1)?.is_punct(':') {
            return None;
        }
        let name = t.text.clone();
        let start = i + 2;
        let mut depth = 0i32;
        let mut j = start;
        loop {
            let t2 = toks.get(j)?;
            if t2.is_punct('(') || t2.is_punct('[') || t2.is_punct('{') {
                if t2.is_punct('{') {
                    return None; // nested struct literal: not a literal config
                }
                depth += 1;
            } else if t2.is_punct(')') || t2.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && (t2.is_punct(',') || t2.is_punct('}')) {
                fields.push((name, start..j));
                i = if t2.is_punct(',') { j + 1 } else { j };
                break;
            }
            j += 1;
        }
    }
}

// --- C1 over golden snapshots -------------------------------------------

/// Validates one golden snapshot (`tests/golden/<stem>.json`).
pub fn scan_golden(path: &str, stem: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            rule: Rule::C1.id(),
            level: Level::Deny,
            path: path.to_string(),
            line,
            col: 1,
            message,
            snippet: src
                .lines()
                .nth(line.saturating_sub(1) as usize)
                .unwrap_or("")
                .to_string(),
        });
    };
    let doc = match crate::json::parse(src) {
        Ok(doc) => doc,
        Err(e) => {
            push(1, format!("golden snapshot is not valid JSON: {e}"));
            return findings;
        }
    };
    match doc.get("experiment").and_then(crate::json::Json::as_str) {
        None => push(1, "golden snapshot has no `experiment` field".into()),
        Some(name) if name != stem => push(
            1,
            format!("golden snapshot `experiment` is \"{name}\" but the file is named {stem}.json"),
        ),
        Some(_) => {}
    }
    if let Some(rows) = doc.get("rows") {
        match rows.as_arr() {
            None => push(1, "golden `rows` must be an array".into()),
            Some([]) => push(
                1,
                "golden `rows` is empty: the snapshot pins nothing".into(),
            ),
            Some(_) => {}
        }
    }
    if let Some(seed) = doc.get("seed") {
        let ok = seed
            .as_num()
            .is_some_and(|n| n.chars().all(|c| c.is_ascii_digit()));
        if !ok {
            push(1, "golden `seed` must be a non-negative integer".into());
        }
    }
    if let Some(accesses) = doc.get("accesses") {
        let ok = accesses
            .as_num()
            .and_then(|n| n.parse::<u64>().ok())
            .is_some_and(|n| n > 0);
        if !ok {
            push(1, "golden `accesses` must be a positive integer".into());
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str, rules: &[Rule]) -> Vec<Finding> {
        let ctx = FileContext::new(path, src);
        scan_rust(&ctx, rules)
    }

    #[test]
    fn d1_flags_entropy_and_clocks() {
        let found = scan(
            "x.rs",
            "fn f() { let t = Instant::now(); let r = rand::thread_rng(); }",
            &[Rule::D1],
        );
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "D1"));
    }

    #[test]
    fn d1_respects_allow_comments() {
        let found = scan(
            "x.rs",
            "fn f() { let t = Instant::now(); } // ldis: allow(D1, \"test fixture\")",
            &[Rule::D1],
        );
        assert!(found.is_empty());
    }

    #[test]
    fn d1_env_reads() {
        let found = scan("x.rs", "fn f() { std::env::var(\"X\"); }", &[Rule::D1]);
        assert_eq!(found.len(), 1);
        // Duration alone is fine.
        assert!(scan("x.rs", "use std::time::Duration;", &[Rule::D1]).is_empty());
    }

    #[test]
    fn d2_flags_hashed_collections_not_strings() {
        let found = scan(
            "x.rs",
            "use std::collections::HashMap; fn f() { println!(\"HashMap\"); }",
            &[Rule::D2],
        );
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn p1_flags_unwrap_outside_tests_only() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t(v: Option<u8>) { v.unwrap(); panic!(\"x\"); } }\n";
        let found = scan("x.rs", src, &[Rule::P1]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn p1_ignores_unwrap_or_and_should_panic() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }\n\
                   fn g() { let expected = 3; }\n";
        assert!(scan("x.rs", src, &[Rule::P1]).is_empty());
    }

    #[test]
    fn w1_flags_waivers_without_justification() {
        // No justification at all, and a blank one: both are W1 findings,
        // and neither waives the P1X site it is attached to.
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] } // ldis: allow(P1X)\n\
                   fn g(v: &[u8], i: usize) -> u8 { v[i] } // ldis: allow(P1X, \"  \")\n";
        let found = scan("x.rs", src, &[Rule::P1X]);
        let w1: Vec<_> = found.iter().filter(|f| f.rule == "W1").collect();
        let p1x: Vec<_> = found.iter().filter(|f| f.rule == "P1X").collect();
        assert_eq!(w1.len(), 2, "both malformed waivers reported: {found:?}");
        assert_eq!(p1x.len(), 2, "malformed waivers must not waive");
        assert!(w1.iter().all(|f| f.level == Level::Deny));
        assert!(w1[0].message.contains("no justification"));
    }

    #[test]
    fn w1_accepts_justified_waivers_uniformly() {
        // The same grammar works for every rule, including the
        // interprocedural ones checked by `crate::analyze`.
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] } // ldis: allow(P1X, \"i < v.len() by contract\")\n\
                   use std::collections::HashMap; // ldis: allow(D2, \"membership only\")\n";
        let found = scan("x.rs", src, &[Rule::P1X, Rule::D2]);
        assert!(found.is_empty(), "justified waivers silence: {found:?}");
    }

    #[test]
    fn p1x_warns_on_indexing_but_not_types_or_patterns() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }\n\
                   fn g(x: [u8; 4]) { let [a, _b, _c, _d] = x; let _ = a; }\n";
        let found = scan("x.rs", src, &[Rule::P1X]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        assert_eq!(found[0].level, Level::Warn);
    }

    #[test]
    fn const_eval_handles_rust_literals() {
        let lexed = crate::lexer::lex("1 << 20");
        assert_eq!(const_eval(&lexed.tokens), Some(1 << 20));
        let lexed = crate::lexer::lex("16 * 4 * 64");
        assert_eq!(const_eval(&lexed.tokens), Some(4096));
        let lexed = crate::lexer::lex("0x1f_u32 + 1");
        assert_eq!(const_eval(&lexed.tokens), Some(32));
        let lexed = crate::lexer::lex("(768 << 10) / 64");
        assert_eq!(const_eval(&lexed.tokens), Some(12288));
        let lexed = crate::lexer::lex("size * 2");
        assert_eq!(const_eval(&lexed.tokens), None);
    }

    #[test]
    fn c1_rejects_impossible_geometry_and_splits() {
        let src = "fn main() {\n\
                   let g = LineGeometry::new(64, 12);\n\
                   let c = DistillConfig::new(1 << 20, 8, 8, LineGeometry::default());\n\
                   }\n";
        let found = scan("x.rs", src, &[Rule::C1]);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("power of two"));
        assert!(found[1].message.contains("LOC/WOC split"));
    }

    #[test]
    fn c1_accepts_paper_configs() {
        let src = "fn main() {\n\
                   let g = LineGeometry::new(64, 8);\n\
                   let c = DistillConfig::new(1 << 20, 8, 2, LineGeometry::default());\n\
                   let b = CacheConfig::new(1 << 20, 8, LineGeometry::default());\n\
                   let r = ReverterConfig { leader_sets: 8, ..ReverterConfig::default() };\n\
                   }\n";
        assert!(scan("x.rs", src, &[Rule::C1]).is_empty());
    }

    #[test]
    fn c1_checks_reverter_rails_and_ordering() {
        let src = "fn main() { let r = ReverterConfig { leader_sets: 33, disable_below: 200, enable_above: 100, psel_max: 255 }; }";
        let found = scan("x.rs", src, &[Rule::C1]);
        // 33 not pow2; 200 >= 100 inverted; both thresholds off the rails.
        assert_eq!(found.len(), 4);
    }

    #[test]
    fn c1_skips_unresolvable_values() {
        let src = "fn f(ways: u32) { let c = DistillConfig::new(1 << 20, ways, woc, geom); }";
        assert!(scan("x.rs", src, &[Rule::C1]).is_empty());
    }

    #[test]
    fn golden_checks_fire() {
        let good = scan_golden(
            "tests/golden/demo.json",
            "demo",
            r#"{"experiment": "demo", "seed": 42, "accesses": 100, "rows": [{"x": 1}]}"#,
        );
        assert!(good.is_empty());
        let bad = scan_golden(
            "tests/golden/demo.json",
            "demo",
            r#"{"experiment": "other", "seed": -3, "accesses": 0, "rows": []}"#,
        );
        assert_eq!(bad.len(), 4);
        let broken = scan_golden("tests/golden/demo.json", "demo", "{");
        assert_eq!(broken.len(), 1);
        assert!(broken[0].message.contains("not valid JSON"));
    }
}
