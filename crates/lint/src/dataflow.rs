//! Generic forward dataflow over per-function CFGs.
//!
//! A classic worklist solver: facts flow from [`crate::cfg::Cfg::entry`]
//! along successor edges, joined at merge points, until a fixpoint. The
//! rule author supplies an [`Analysis`] — the fact lattice (via `join`)
//! and the per-node [`Analysis::transfer`] function — and reads per-node
//! input facts out of the returned [`Solution`].
//!
//! Unreachable nodes (a bare `loop` with no `break`, code after a
//! diverging `match`) keep `None` facts, which a must-analysis reads as
//! "vacuously everything" and a may-analysis as "nothing" — either way
//! the rules skip reporting there, so dead code never produces findings.
//!
//! Termination: for a monotone transfer over a finite lattice the
//! worklist empties on its own. Because transfer functions live in rule
//! code that evolves, the solver additionally bounds itself at
//! `nodes × MAX_VISITS_PER_NODE` recomputations and stops joining there
//! rather than hanging CI; [`Solution::converged`] records which case
//! occurred and the self-tests pin the honest one.

use crate::cfg::{Cfg, NodeId};
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Safety valve: a monotone analysis over these CFGs converges in a
/// handful of passes; 64 visits per node is far beyond any honest
/// fixpoint and cheap to check.
const MAX_VISITS_PER_NODE: usize = 64;

/// A forward dataflow problem.
pub trait Analysis {
    /// The lattice element tracked per program point.
    type Fact: Clone + PartialEq;

    /// The fact at function entry.
    fn boundary(&self) -> Self::Fact;

    /// The merge of two facts at a join point.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// The fact after executing `node` given the fact before it.
    fn transfer(&self, node: NodeId, input: &Self::Fact) -> Self::Fact;
}

/// Per-node facts computed by [`solve_forward`]. `None` means the node
/// is unreachable from entry.
pub struct Solution<F> {
    /// Fact holding immediately before each node executes.
    pub input: Vec<Option<F>>,
    /// Fact holding immediately after each node executes.
    pub output: Vec<Option<F>>,
    /// False only if the safety valve tripped before fixpoint.
    pub converged: bool,
}

/// Runs the worklist to fixpoint and returns the per-node facts.
pub fn solve_forward<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.nodes.len();
    let mut input: Vec<Option<A::Fact>> = vec![None; n];
    let mut output: Vec<Option<A::Fact>> = vec![None; n];
    let mut queued = vec![false; n];
    let mut visits = vec![0usize; n];
    let mut work: VecDeque<NodeId> = VecDeque::new();
    let mut converged = true;

    input[cfg.entry] = Some(analysis.boundary());
    work.push_back(cfg.entry);
    queued[cfg.entry] = true;

    while let Some(id) = work.pop_front() {
        queued[id] = false;
        visits[id] += 1;
        if visits[id] > MAX_VISITS_PER_NODE {
            converged = false;
            continue;
        }
        let Some(in_fact) = input[id].clone() else {
            continue;
        };
        let out = analysis.transfer(id, &in_fact);
        if output[id].as_ref() == Some(&out) {
            continue;
        }
        output[id] = Some(out);
        for &succ in &cfg.nodes[id].succs {
            // Recompute the successor's input as the join over every
            // predecessor that has produced a fact so far.
            let mut acc: Option<A::Fact> = None;
            for &pred in &cfg.nodes[succ].preds {
                if let Some(p_out) = &output[pred] {
                    acc = Some(match acc {
                        None => p_out.clone(),
                        Some(prev) => analysis.join(&prev, p_out),
                    });
                }
            }
            if acc != input[succ] {
                input[succ] = acc;
                if !queued[succ] {
                    queued[succ] = true;
                    work.push_back(succ);
                }
            }
        }
    }

    Solution {
        input,
        output,
        converged,
    }
}

/// A ready-made gen/kill analysis over sets of names — the shape both
/// taint tracking and liveness-style rules reduce to. `must: true`
/// joins by intersection (a fact holds only if it holds on *every*
/// path); `must: false` joins by union (it holds on *some* path).
pub struct GenKill {
    /// Intersection join (must) vs union join (may).
    pub must: bool,
    /// Names holding at function entry.
    pub boundary: BTreeSet<String>,
    /// Per-node names the node makes true.
    pub gen: Vec<BTreeSet<String>>,
    /// Per-node names the node makes false (applied before gen).
    pub kill: Vec<BTreeSet<String>>,
}

impl Analysis for GenKill {
    type Fact = BTreeSet<String>;

    fn boundary(&self) -> Self::Fact {
        self.boundary.clone()
    }

    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        if self.must {
            a.intersection(b).cloned().collect()
        } else {
            a.union(b).cloned().collect()
        }
    }

    fn transfer(&self, node: NodeId, input: &Self::Fact) -> Self::Fact {
        let mut out = input.clone();
        if let Some(kill) = self.kill.get(node) {
            for k in kill {
                out.remove(k);
            }
        }
        if let Some(gen) = self.gen.get(node) {
            for g in gen {
                out.insert(g.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::lexer::lex;
    use crate::parser;

    fn cfg_of(src: &str) -> Cfg {
        let lexed = lex(src);
        let parsed = parser::parse(&lexed.tokens);
        Cfg::build(&lexed.tokens, parsed.fns[0].body.clone())
    }

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn straight_line_accumulates_gen() {
        let cfg = cfg_of("fn f() { a(); b(); }");
        let mut gen = vec![BTreeSet::new(); cfg.nodes.len()];
        // Tag each Stmt node with its own name.
        for (id, node) in cfg.nodes.iter().enumerate() {
            if !node.span.is_empty() {
                gen[id] = set(&[&format!("n{id}")]);
            }
        }
        let gk = GenKill {
            must: true,
            boundary: BTreeSet::new(),
            gen,
            kill: vec![BTreeSet::new(); cfg.nodes.len()],
        };
        let sol = solve_forward(&cfg, &gk);
        assert!(sol.converged);
        let exit_in = sol.input[cfg.exit].as_ref().unwrap();
        assert_eq!(exit_in.len(), 2, "both statements' facts reach exit");
    }

    #[test]
    fn unreachable_nodes_keep_none() {
        let cfg = cfg_of("fn f() -> u32 { return 1; }");
        // The trailing-expression node after `return` (if any) and any
        // loop-after joins must stay None; the exit is reachable via the
        // return edge.
        let gk = GenKill {
            must: true,
            boundary: set(&["seed"]),
            gen: vec![BTreeSet::new(); cfg.nodes.len()],
            kill: vec![BTreeSet::new(); cfg.nodes.len()],
        };
        let sol = solve_forward(&cfg, &gk);
        assert!(sol.converged);
        assert_eq!(sol.input[cfg.exit].as_ref().unwrap(), &set(&["seed"]));
    }
}
