//! Property tests for the distill cache's data structures.

use ldis_distill::{MedianTracker, Woc, WocReplacement, WordStore};
use ldis_mem::{Footprint, LineAddr, SimRng, WordIndex};
use proptest::prelude::*;

proptest! {
    /// WOC structural invariants hold under arbitrary install /
    /// invalidate interleavings, for both replacement policies.
    #[test]
    fn woc_invariants_under_arbitrary_traffic(
        ops in prop::collection::vec((0u8..4, 1u16..256, any::<bool>()), 1..300),
        round_robin in any::<bool>(),
    ) {
        let replacement = if round_robin {
            WocReplacement::RoundRobin
        } else {
            WocReplacement::Random
        };
        let mut woc = Woc::new(4, 2, 8, 99).with_replacement(replacement);
        let mut next_tag = 0u64;
        for (set, bits, dirty) in ops {
            let set = set as usize;
            // Alternate: install a fresh line, or invalidate a previous one.
            if bits % 3 == 0 && next_tag > 0 {
                let victim = (bits as u64) % next_tag;
                let _ = woc.invalidate_line(set, victim);
            } else if woc.lookup(set, next_tag).is_none() {
                woc.install(set, next_tag, Footprint::from_bits(bits), dirty);
                next_tag += 1;
            }
            woc.check_invariants(set).map_err(
                proptest::test_runner::TestCaseError::fail
            )?;
        }
    }

    /// Whatever the WOC stores for a line is exactly what was installed
    /// (until eviction): lookups never invent or lose words.
    #[test]
    fn woc_lookup_returns_installed_words(bits in 1u16..256, set in 0u8..4) {
        let mut woc = Woc::new(4, 2, 8, 5);
        let fp = Footprint::from_bits(bits);
        woc.install(set as usize, 42, fp, false);
        let hit = woc.lookup(set as usize, 42).expect("just installed");
        prop_assert_eq!(hit.valid_words, fp);
    }

    /// Eviction conservation: installs minus invalidations minus evictions
    /// equals the number of resident lines.
    #[test]
    fn woc_line_conservation(installs in prop::collection::vec(1u16..256, 1..100)) {
        let mut woc = Woc::new(1, 2, 8, 7);
        let mut evicted = 0usize;
        for (tag, &bits) in installs.iter().enumerate() {
            evicted += woc
                .install(0, tag as u64, Footprint::from_bits(bits), false)
                .len();
        }
        let resident = woc.lines_in_set(0);
        prop_assert_eq!(resident + evicted, installs.len());
    }

    /// The median tracker's threshold is always a value that occurred in
    /// (or the initial permissive default above) the observed window.
    #[test]
    fn median_threshold_in_range(obs in prop::collection::vec(1u8..=8, 1..200)) {
        let mut mt = MedianTracker::new(8, 16);
        for &o in &obs {
            mt.observe(o);
            prop_assert!((1..=8).contains(&mt.threshold()));
        }
    }

    /// Random WOC replacement is deterministic per seed.
    #[test]
    fn woc_replacement_deterministic(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut woc = Woc::new(2, 1, 8, seed);
            let mut rng = SimRng::new(1);
            let mut evictions = Vec::new();
            for tag in 0..60u64 {
                let bits = ((rng.next_u64() & 0xff) as u16).max(1);
                for ev in woc.install((tag % 2) as usize, tag, Footprint::from_bits(bits), false) {
                    evictions.push(ev.tag);
                }
            }
            evictions
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

/// The WordStore trait object view agrees with the inherent API.
#[test]
fn word_store_trait_matches_inherent() {
    let mut woc = Woc::new(2, 1, 8, 3);
    let fp = Footprint::from_bits(0b101);
    WordStore::install(&mut woc, 0, 7, LineAddr::new(7), fp, true);
    assert!(woc.contains_word(0, 7, WordIndex::new(0)));
    let via_trait = WordStore::lookup(&woc, 0, 7).unwrap();
    assert_eq!(via_trait.valid_words, fp);
    assert!(WordStore::mark_dirty(&mut woc, 0, 7));
    let ev = WordStore::invalidate_line(&mut woc, 0, 7).unwrap();
    assert!(ev.dirty);
    assert_eq!(WordStore::occupancy(&woc), 0);
}
