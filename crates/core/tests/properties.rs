//! Property tests for the distill cache's data structures, driven by a
//! deterministic seeded generator (`SimRng`) so every run explores the
//! same cases and failures reproduce exactly.

use ldis_distill::{MedianTracker, Woc, WocReplacement, WordStore};
use ldis_mem::{Footprint, LineAddr, SimRng, WordIndex};

/// WOC structural invariants hold under arbitrary install / invalidate
/// interleavings, for both replacement policies.
#[test]
fn woc_invariants_under_arbitrary_traffic() {
    let mut rng = SimRng::new(0xd0c1);
    for case in 0..60 {
        let replacement = if case % 2 == 0 {
            WocReplacement::RoundRobin
        } else {
            WocReplacement::Random
        };
        let mut woc = Woc::new(4, 2, 8, 99).with_replacement(replacement);
        let mut next_tag = 0u64;
        let ops = 1 + rng.index(299);
        for _ in 0..ops {
            let set = rng.index(4);
            let bits = 1 + rng.range(255) as u16;
            let dirty = rng.chance(0.5);
            // Alternate: install a fresh line, or invalidate a previous one.
            if bits.is_multiple_of(3) && next_tag > 0 {
                let victim = (bits as u64) % next_tag;
                let _ = woc.invalidate_line(set, victim);
            } else if woc.lookup(set, next_tag).is_none() {
                woc.install(set, next_tag, Footprint::from_bits(bits), dirty);
                next_tag += 1;
            }
            woc.check_invariants(set)
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

/// Whatever the WOC stores for a line is exactly what was installed
/// (until eviction): lookups never invent or lose words.
#[test]
fn woc_lookup_returns_installed_words() {
    let mut rng = SimRng::new(0xd0c2);
    for case in 0..500 {
        let bits = 1 + rng.range(255) as u16;
        let set = rng.index(4);
        let mut woc = Woc::new(4, 2, 8, 5);
        let fp = Footprint::from_bits(bits);
        woc.install(set, 42, fp, false);
        let hit = woc.lookup(set, 42).expect("just installed");
        assert_eq!(hit.valid_words, fp, "case {case}");
    }
}

/// Eviction conservation: installs minus invalidations minus evictions
/// equals the number of resident lines.
#[test]
fn woc_line_conservation() {
    let mut rng = SimRng::new(0xd0c3);
    for case in 0..200 {
        let installs = 1 + rng.index(99);
        let mut woc = Woc::new(1, 2, 8, 7);
        let mut evicted = 0usize;
        for tag in 0..installs {
            let bits = 1 + rng.range(255) as u16;
            evicted += woc
                .install(0, tag as u64, Footprint::from_bits(bits), false)
                .len();
        }
        let resident = woc.lines_in_set(0);
        assert_eq!(resident + evicted, installs, "case {case}");
    }
}

/// The median tracker's threshold is always a value that occurred in
/// (or the initial permissive default above) the observed window.
#[test]
fn median_threshold_in_range() {
    let mut rng = SimRng::new(0xd0c4);
    for case in 0..200 {
        let obs = 1 + rng.index(199);
        let mut mt = MedianTracker::new(8, 16);
        for _ in 0..obs {
            mt.observe(1 + rng.range(8) as u8);
            assert!((1..=8).contains(&mt.threshold()), "case {case}");
        }
    }
}

/// Random WOC replacement is deterministic per seed.
#[test]
fn woc_replacement_deterministic() {
    let run = |seed: u64| {
        let mut woc = Woc::new(2, 1, 8, seed);
        let mut rng = SimRng::new(1);
        let mut evictions = Vec::new();
        for tag in 0..60u64 {
            let bits = ((rng.next_u64() & 0xff) as u16).max(1);
            for ev in woc.install((tag % 2) as usize, tag, Footprint::from_bits(bits), false) {
                evictions.push(ev.tag);
            }
        }
        evictions
    };
    let mut seeds = SimRng::new(0xd0c5);
    for case in 0..100 {
        let seed = seeds.next_u64();
        assert_eq!(run(seed), run(seed), "case {case}");
    }
}

/// The WordStore trait object view agrees with the inherent API.
#[test]
fn word_store_trait_matches_inherent() {
    let mut woc = Woc::new(2, 1, 8, 3);
    let fp = Footprint::from_bits(0b101);
    WordStore::install(&mut woc, 0, 7, LineAddr::new(7), fp, true, &mut Vec::new());
    assert!(woc.contains_word(0, 7, WordIndex::new(0)));
    let via_trait = WordStore::lookup(&woc, 0, 7).expect("line was installed");
    assert_eq!(via_trait.valid_words, fp);
    assert!(WordStore::mark_dirty(&mut woc, 0, 7));
    let ev = WordStore::invalidate_line(&mut woc, 0, 7).expect("line was installed");
    assert!(ev.dirty);
    assert_eq!(WordStore::occupancy(&woc), 0);
}
