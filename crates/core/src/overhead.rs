//! The storage-overhead model of Section 7.5.1 (Table 3).
//!
//! Everything is computed from the cache geometry, not copied from the
//! paper; the unit test checks that the paper's configuration reproduces
//! Table 3 exactly (133 kB total, 12.2 % of the baseline L2 area).

use crate::DistillConfig;
use ldis_cache::CacheConfig;

/// Physical address width assumed by the paper (Section 7.5.1).
pub const PHYSICAL_ADDR_BITS: u32 = 40;

/// Bytes per ATD entry in the reverter circuit (Table 3).
pub const ATD_ENTRY_BYTES: u64 = 4;

/// Bytes per tag entry of the baseline cache used for the area comparison
/// (Table 3 charges 64 kB of tags for 16 k lines → 4 B each).
pub const BASELINE_TAG_BYTES: u64 = 4;

/// The storage breakdown of a distill cache, in bits/bytes, mirroring the
/// rows of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageOverhead {
    /// Bits per WOC tag entry (valid + dirty + head + tag + word-id).
    pub woc_entry_bits: u64,
    /// Total WOC tag entries (sets × WOC ways × words per line).
    pub woc_entries: u64,
    /// WOC tag overhead in bytes.
    pub woc_tag_bytes: u64,
    /// LOC tag entries charged with a footprint field.
    pub loc_entries: u64,
    /// LOC footprint overhead in bytes.
    pub loc_footprint_bytes: u64,
    /// L1D lines carrying a footprint field.
    pub l1d_lines: u64,
    /// L1D footprint overhead in bytes.
    pub l1d_footprint_bytes: u64,
    /// Median-threshold counters in bytes (one 2 B counter per used-word
    /// count plus the eviction-sum).
    pub median_counter_bytes: u64,
    /// ATD entries of the reverter circuit (leader sets × ways).
    pub atd_entries: u64,
    /// Reverter overhead in bytes.
    pub reverter_bytes: u64,
    /// Total overhead in bytes.
    pub total_bytes: u64,
    /// Baseline L2 area (tags + data) in bytes, for the percentage row.
    pub baseline_area_bytes: u64,
}

impl StorageOverhead {
    /// Computes the overhead of a distill cache paired with the given L1D,
    /// following Table 3's accounting:
    ///
    /// * WOC tag entry = 3 flag bits + tag bits + word-id bits, where the
    ///   tag covers the 40-bit physical address minus line-offset and
    ///   set-index bits;
    /// * footprint bits are charged for every line frame of the full cache
    ///   (Table 3 charges `size / line_size` entries) and every L1D line;
    /// * the median mechanism needs one 2 B counter per possible used-word
    ///   count plus the eviction-sum;
    /// * the reverter needs `leader_sets × total_ways` 4 B ATD entries.
    pub fn compute(cfg: &DistillConfig, l1d: &CacheConfig) -> Self {
        let geom = cfg.geometry();
        let wpl = geom.words_per_line() as u64;
        let sets = cfg.num_sets();

        let line_offset_bits = geom.line_bytes().trailing_zeros();
        let set_bits = sets.trailing_zeros();
        let tag_bits = PHYSICAL_ADDR_BITS as u64 - line_offset_bits as u64 - set_bits as u64;
        let word_id_bits = (geom.words_per_line() as u64).trailing_zeros() as u64;
        let woc_entry_bits = 3 + tag_bits + word_id_bits; // valid+dirty+head

        let woc_entries = sets * cfg.woc_ways() as u64 * wpl;
        let woc_tag_bytes = woc_entry_bits * woc_entries / 8;

        let loc_entries = cfg.size_bytes() / geom.line_bytes() as u64;
        let loc_footprint_bytes = loc_entries * wpl / 8;

        let l1d_lines = l1d.num_lines();
        let l1d_footprint_bytes = l1d_lines * wpl / 8;

        let median_counter_bytes = (wpl + 1) * 2;

        let (atd_entries, reverter_bytes) = match cfg.reverter() {
            Some(rc) => {
                let entries = rc.leader_sets as u64 * cfg.total_ways() as u64;
                (entries, entries * ATD_ENTRY_BYTES)
            }
            None => (0, 0),
        };

        let total_bytes = woc_tag_bytes
            + loc_footprint_bytes
            + l1d_footprint_bytes
            + median_counter_bytes
            + reverter_bytes;

        let baseline_area_bytes = cfg.size_bytes() + loc_entries * BASELINE_TAG_BYTES;

        StorageOverhead {
            woc_entry_bits,
            woc_entries,
            woc_tag_bytes,
            loc_entries,
            loc_footprint_bytes,
            l1d_lines,
            l1d_footprint_bytes,
            median_counter_bytes,
            atd_entries,
            reverter_bytes,
            total_bytes,
            baseline_area_bytes,
        }
    }

    /// The overhead as a percentage of the baseline L2 area (Table 3's
    /// bottom row).
    pub fn percent_of_baseline(&self) -> f64 {
        self.total_bytes as f64 / self.baseline_area_bytes as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;

    fn paper_overhead() -> StorageOverhead {
        let cfg = DistillConfig::hpca2007_default();
        let l1d = CacheConfig::new(16 << 10, 2, LineGeometry::default());
        StorageOverhead::compute(&cfg, &l1d)
    }

    #[test]
    fn reproduces_table3_exactly() {
        let o = paper_overhead();
        assert_eq!(
            o.woc_entry_bits, 29,
            "valid+dirty+head+23-bit tag+3-bit word-id"
        );
        assert_eq!(o.woc_entries, 32 * 1024);
        assert_eq!(o.woc_tag_bytes, 116 << 10);
        assert_eq!(o.loc_entries, 16 * 1024);
        assert_eq!(o.loc_footprint_bytes, 16 << 10);
        assert_eq!(o.l1d_lines, 256);
        assert_eq!(o.l1d_footprint_bytes, 256);
        assert_eq!(o.median_counter_bytes, 18);
        assert_eq!(o.atd_entries, 256);
        assert_eq!(o.reverter_bytes, 1 << 10);
        // 116 kB + 16 kB + 256 B + 18 B + 1 kB
        assert_eq!(
            o.total_bytes,
            (116 << 10) + (16 << 10) + 256 + 18 + (1 << 10)
        );
        assert_eq!(o.baseline_area_bytes, (1 << 20) + (64 << 10));
        let pct = o.percent_of_baseline();
        assert!(
            (12.1..12.3).contains(&pct),
            "Table 3 reports 12.2 %, got {pct:.2}"
        );
    }

    #[test]
    fn overhead_shrinks_with_larger_lines() {
        // Section 7.5.1: 128 B lines → ~7 %, 256 B lines → ~4 %. Words scale
        // with the line (8 words per line).
        let pct_of = |line: u32| {
            let geom = LineGeometry::new(line, line / 8);
            let cfg = DistillConfig::new(1 << 20, 8, 2, geom)
                .with_policy(crate::ThresholdPolicy::median())
                .with_reverter(crate::ReverterConfig::default());
            let l1d = CacheConfig::new(16 << 10, 2, geom);
            StorageOverhead::compute(&cfg, &l1d).percent_of_baseline()
        };
        let p64 = pct_of(64);
        let p128 = pct_of(128);
        let p256 = pct_of(256);
        assert!(
            p64 > p128 && p128 > p256,
            "{p64:.1} > {p128:.1} > {p256:.1}"
        );
        assert!(
            (6.0..8.0).contains(&p128),
            "paper reports ~7 %, got {p128:.1}"
        );
        assert!(
            (3.0..5.0).contains(&p256),
            "paper reports ~4 %, got {p256:.1}"
        );
    }

    #[test]
    fn no_reverter_no_atd_cost() {
        let cfg = DistillConfig::ldis_mt();
        let l1d = CacheConfig::new(16 << 10, 2, LineGeometry::default());
        let o = StorageOverhead::compute(&cfg, &l1d);
        assert_eq!(o.atd_entries, 0);
        assert_eq!(o.reverter_bytes, 0);
    }
}
