//! The distill cache: LOC + WOC with line distillation (Sections 4–5).

use crate::{DistillConfig, MedianTracker, Reverter, ThresholdPolicy, Woc, WordStore};
use ldis_cache::{
    EvictedLine, L2Outcome, L2Request, L2Response, L2Stats, SecondLevel, SetAssocCache,
};
use ldis_cache::CompulsoryTracker;
use ldis_mem::{Footprint, LineAddr, LineGeometry};

/// The paper's distill cache.
///
/// Incoming lines are installed in the Line-Organized Cache (LOC, LRU).
/// When a data line is evicted from the LOC, *line distillation* transfers
/// its used words to the Word-Organized Cache (WOC) and discards the rest.
/// An access can therefore end in one of four ways (Section 5.2): LOC-hit,
/// WOC-hit, hole-miss (line in WOC but the demanded word absent) or
/// line-miss.
///
/// Median-threshold filtering (Section 5.4) and the reverter circuit
/// (Section 5.5) are both optional and controlled by [`DistillConfig`].
/// With the reverter disabled-state active, follower sets install the
/// *full* evicted line into the WOC, making the set behave like the 8-way
/// traditional baseline.
///
/// # Example
///
/// ```
/// use ldis_cache::{L2Outcome, L2Request, SecondLevel};
/// use ldis_distill::{DistillCache, DistillConfig};
/// use ldis_mem::{LineAddr, WordIndex};
///
/// let mut dc = DistillCache::new(DistillConfig::ldis_base());
/// let req = L2Request::data(LineAddr::new(3), WordIndex::new(0), false);
/// assert_eq!(dc.access(req).outcome, L2Outcome::LineMiss);
/// assert_eq!(dc.access(req).outcome, L2Outcome::LocHit);
/// ```
#[derive(Clone, Debug)]
pub struct DistillCache<W = Woc> {
    cfg: DistillConfig,
    loc: SetAssocCache,
    woc: W,
    median: MedianTracker,
    reverter: Option<Reverter>,
    stats: L2Stats,
    compulsory: CompulsoryTracker,
    label: String,
}

impl DistillCache {
    /// Creates an empty distill cache with the paper's word-organized
    /// store.
    pub fn new(cfg: DistillConfig) -> Self {
        let woc = Woc::new(
            cfg.num_sets(),
            cfg.woc_ways(),
            cfg.geometry().words_per_line(),
            cfg.seed(),
        )
        .with_replacement(cfg.woc_replacement());
        DistillCache::with_word_store(cfg, woc)
    }

    /// Creates a distill cache with a custom report label.
    pub fn with_label(cfg: DistillConfig, label: impl Into<String>) -> Self {
        let mut dc = DistillCache::new(cfg);
        dc.label = label.into();
        dc
    }
}

impl<W: WordStore> DistillCache<W> {
    /// Creates a distill cache around a custom word store (footprint-aware
    /// compression uses this to store compressed words).
    pub fn with_word_store(cfg: DistillConfig, woc: W) -> Self {
        let wpl = cfg.geometry().words_per_line();
        let median_interval = match cfg.policy() {
            ThresholdPolicy::Median { interval } => interval,
            _ => 4096,
        };
        let label = match (cfg.policy(), cfg.reverter().is_some()) {
            (ThresholdPolicy::All, false) => "LDIS-Base",
            (ThresholdPolicy::All, true) => "LDIS-RC",
            (ThresholdPolicy::Median { .. }, false) => "LDIS-MT",
            (ThresholdPolicy::Median { .. }, true) => "LDIS-MT-RC",
            (ThresholdPolicy::Fixed(_), false) => "LDIS-Fixed",
            (ThresholdPolicy::Fixed(_), true) => "LDIS-Fixed-RC",
        };
        DistillCache {
            loc: SetAssocCache::new(cfg.loc_config()),
            woc,
            median: MedianTracker::new(wpl, median_interval),
            reverter: cfg
                .reverter()
                .map(|rc| Reverter::new(rc, cfg.num_sets(), cfg.total_ways())),
            stats: L2Stats::new(wpl, cfg.loc_ways()),
            compulsory: CompulsoryTracker::new(),
            label: label.to_owned(),
            cfg,
        }
    }

    /// Overrides the report label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.cfg
    }

    /// The line-organized half (for content inspection).
    pub fn loc(&self) -> &SetAssocCache {
        &self.loc
    }

    /// The word-organized half (for occupancy inspection).
    pub fn woc(&self) -> &W {
        &self.woc
    }

    /// The median tracker driving threshold-based distillation.
    pub fn median(&self) -> &MedianTracker {
        &self.median
    }

    /// The reverter circuit, if configured.
    pub fn reverter(&self) -> Option<&Reverter> {
        self.reverter.as_ref()
    }

    /// Forces the reverter's decision; a no-op without a reverter. Used by
    /// tests and the policy-extreme property checks.
    pub fn force_ldis(&mut self, enabled: bool) {
        if let Some(r) = self.reverter.as_mut() {
            r.force_enabled(enabled);
        }
    }

    /// Whether line distillation is active for `set` right now.
    pub fn ldis_active_for(&self, set: usize) -> bool {
        match &self.reverter {
            None => true,
            Some(r) => r.is_leader(set) || r.ldis_enabled(),
        }
    }

    fn set_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let cfg = self.loc.config();
        (cfg.set_index(line), cfg.tag(line))
    }

    /// Installs a fetched line into the LOC, distilling the victim.
    fn install_in_loc(&mut self, req: &L2Request, extra_dirty: bool) {
        let word = if req.is_instr { None } else { Some(req.word) };
        let dirty = req.write || extra_dirty;
        if let Some(ev) = self.loc.install(req.line, word, dirty, req.is_instr) {
            self.record_loc_eviction(&ev);
            let (set, _) = self.set_and_tag(ev.line);
            self.distill(set, ev);
        }
    }

    fn record_loc_eviction(&mut self, ev: &EvictedLine) {
        self.stats.evictions += 1;
        if !ev.is_instr {
            self.stats
                .words_used_at_evict
                .record(ev.footprint.used_words() as usize);
            self.stats
                .recency_before_change
                .record(ev.recency_at_last_change as usize);
        }
    }

    /// Line distillation (Section 5): transfer the used words of a line
    /// evicted from the LOC into the WOC, or the full line when LDIS is
    /// disabled for the set.
    fn distill(&mut self, set: usize, ev: EvictedLine) {
        if ev.is_instr {
            // Instruction lines are never distilled (Section 4).
            if ev.dirty {
                self.stats.writebacks += 1;
            }
            return;
        }
        let used = ev.footprint.used_words();
        self.median.observe(used);

        let (_, tag) = self.set_and_tag(ev.line);
        if self.ldis_active_for(set) {
            let threshold = match self.cfg.policy() {
                ThresholdPolicy::All => self.cfg.geometry().words_per_line(),
                ThresholdPolicy::Median { .. } => self.median.threshold(),
                ThresholdPolicy::Fixed(k) => k,
            };
            if used == 0 || used > threshold {
                // Filtered out: the line (and its dirty data) leaves the cache.
                self.stats.distill_filtered += 1;
                if ev.dirty {
                    self.stats.writebacks += 1;
                }
                return;
            }
            // Discarding unused words of a dirty line is safe: a store
            // always sets the word's footprint bit, so dirty words are
            // necessarily used words.
            self.install_in_woc(set, tag, ev.line, ev.footprint, ev.dirty);
        } else {
            // LDIS disabled: keep the whole line so the set behaves like
            // the traditional 8-way baseline.
            let full = Footprint::full(self.cfg.geometry().words_per_line());
            self.install_in_woc(set, tag, ev.line, full, ev.dirty);
        }
    }

    fn install_in_woc(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        words: Footprint,
        dirty: bool,
    ) {
        self.stats.woc_installs += 1;
        for evicted in self.woc.install(set, tag, line, words, dirty) {
            if evicted.dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    fn observe_reverter(&mut self, set: usize, line: LineAddr, distill_missed: bool) {
        if let Some(r) = self.reverter.as_mut() {
            if r.is_leader(set) {
                r.observe_leader_access(set, line, distill_missed);
            }
        }
    }
}

impl<W: WordStore> SecondLevel for DistillCache<W> {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(req.line);
        let full = Footprint::full(self.cfg.geometry().words_per_line());
        let word = if req.is_instr { None } else { Some(req.word) };

        // 1. LOC lookup — serviced like a traditional cache.
        if self.loc.access(req.line, word, req.write) {
            debug_assert!(
                self.woc.lookup(set, tag).is_none(),
                "a line must never be in both LOC and WOC"
            );
            self.stats.loc_hits += 1;
            self.observe_reverter(set, req.line, false);
            return L2Response {
                outcome: L2Outcome::LocHit,
                valid_words: full,
            };
        }

        // 2. WOC lookup.
        if let Some(hit) = self.woc.lookup(set, tag) {
            if !req.is_instr && hit.valid_words.is_used(req.word) {
                // WOC-hit: the stored words are rearranged and sent to the
                // L1D along with their valid bits.
                self.stats.woc_hits += 1;
                self.observe_reverter(set, req.line, false);
                return L2Response {
                    outcome: L2Outcome::WocHit,
                    valid_words: hit.valid_words,
                };
            }
            // Hole-miss: invalidate the WOC words (dirty data merges into
            // the incoming memory line) and install the full line in the LOC.
            self.stats.hole_misses += 1;
            self.observe_reverter(set, req.line, true);
            let dirty = self
                .woc
                .invalidate_line(set, tag)
                .map(|ev| ev.dirty)
                .unwrap_or(false);
            self.install_in_loc(&req, dirty);
            return L2Response {
                outcome: L2Outcome::HoleMiss,
                valid_words: full,
            };
        }

        // 3. Line-miss: fetch from memory into the LOC.
        self.stats.line_misses += 1;
        if self.compulsory.record_miss(req.line) {
            self.stats.compulsory_misses += 1;
        }
        self.observe_reverter(set, req.line, true);
        self.install_in_loc(&req, false);
        L2Response {
            outcome: L2Outcome::LineMiss,
            valid_words: full,
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool) {
        if self.loc.merge_footprint(line, footprint, dirty) {
            return;
        }
        let (set, tag) = self.set_and_tag(line);
        if dirty && self.woc.mark_dirty(set, tag) {
            return;
        }
        if dirty {
            // Neither in LOC nor WOC (inclusion is not enforced).
            self.stats.writebacks += 1;
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = L2Stats::new(self.cfg.geometry().words_per_line(), self.cfg.loc_ways());
    }

    fn geometry(&self) -> LineGeometry {
        self.cfg.geometry()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::{LineGeometry, WordIndex};

    /// A tiny distill cache: 4 sets, 4 ways (3 LOC + 1 WOC), 64 B lines.
    fn tiny(policy: ThresholdPolicy) -> DistillCache {
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(policy)
            .with_seed(7);
        DistillCache::new(cfg)
    }

    fn req(line: u64, word: u8) -> L2Request {
        L2Request::data(LineAddr::new(line), WordIndex::new(word), false)
    }

    /// Lines 0, 4, 8, … all map to set 0 of the 4-set cache.
    fn set0(i: u64) -> u64 {
        i * 4
    }

    #[test]
    fn four_outcomes_in_order() {
        let mut dc = tiny(ThresholdPolicy::All);
        // Miss, then LOC hit.
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LineMiss);
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LocHit);
        // Fill the 3 LOC ways; line 0 is evicted and distilled (word 0 only).
        for i in 1..=3 {
            assert_eq!(dc.access(req(set0(i), 0)).outcome, L2Outcome::LineMiss);
        }
        assert_eq!(dc.stats().evictions, 1);
        assert_eq!(dc.stats().woc_installs, 1);
        // Word 0 of line 0 is in the WOC: a WOC hit…
        let resp = dc.access(req(set0(0), 0));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::from_bits(0b1));
        // …but word 5 is a hole miss.
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::HoleMiss);
        // The hole miss re-installed the full line in the LOC.
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::LocHit);
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LocHit);
    }

    #[test]
    fn woc_hit_returns_only_stored_words() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 1));
        dc.access(req(set0(0), 6));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        let resp = dc.access(req(set0(0), 6));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::from_bits(0b0100_0010));
    }

    #[test]
    fn median_threshold_filters_fat_lines() {
        // Median window of 4; feed two 1-word lines and two 8-word lines.
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(ThresholdPolicy::Median { interval: 4 })
            .with_seed(7);
        let mut dc = DistillCache::new(cfg);
        let mut evictions = 0u64;
        let make_line = |dc: &mut DistillCache, line: u64, words: u8| {
            for w in 0..words {
                dc.access(req(line, w));
            }
        };
        // Warm-up threshold is 8 (permissive). Build 4 evictions:
        // lines with 1, 8, 1, 8 words used. After the window the median is 1.
        for (i, words) in [(0u64, 1u8), (1, 8), (2, 1), (3, 8), (4, 1), (5, 1), (6, 1)] {
            make_line(&mut dc, set0(i), words);
            evictions += 1;
        }
        let _ = evictions;
        assert_eq!(dc.median().threshold(), 1);
        // Now evict a line with 2 words used: it must be filtered.
        let filtered_before = dc.stats().distill_filtered;
        make_line(&mut dc, set0(7), 2);
        make_line(&mut dc, set0(8), 1);
        make_line(&mut dc, set0(9), 1);
        make_line(&mut dc, set0(10), 1);
        assert!(dc.stats().distill_filtered > filtered_before);
    }

    #[test]
    fn instruction_lines_are_never_distilled() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::instr(LineAddr::new(set0(0))));
        for i in 1..=3 {
            dc.access(L2Request::instr(LineAddr::new(set0(i))));
        }
        assert_eq!(dc.stats().evictions, 1);
        assert_eq!(dc.stats().woc_installs, 0);
        assert_eq!(dc.woc().occupancy(), 0);
    }

    #[test]
    fn dirty_data_survives_distillation_and_writes_back() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::data(LineAddr::new(set0(0)), WordIndex::new(2), true));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Line 0 (dirty, word 2) now lives in the WOC.
        assert_eq!(dc.stats().writebacks, 0, "still cached, no writeback yet");
        // Fill the WOC way (8 slots) with enough single-word lines to evict it.
        for i in 4..=14 {
            dc.access(req(set0(i), 0));
        }
        assert!(dc.stats().writebacks >= 1, "dirty WOC eviction writes back");
    }

    #[test]
    fn hole_miss_merges_dirty_into_refetched_line() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::data(LineAddr::new(set0(0)), WordIndex::new(0), true));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        let wb_before = dc.stats().writebacks;
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::HoleMiss);
        assert_eq!(
            dc.stats().writebacks,
            wb_before,
            "dirty data merges into the refetched line, no memory writeback"
        );
        // Evict the (dirty) line from LOC and let its distilled words be
        // evicted: eventually the dirty data must write back exactly once.
    }

    #[test]
    fn reverter_disables_ldis_on_hole_miss_storms() {
        // Leader sets: 1 of 4 → stride 4, set 0 leads. Streaming pattern
        // where unused words are referenced soon after eviction (swim-like).
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(ThresholdPolicy::All)
            .with_reverter(crate::ReverterConfig {
                leader_sets: 1,
                ..crate::ReverterConfig::default()
            })
            .with_seed(7);
        let mut dc = DistillCache::new(cfg);
        assert!(dc.reverter().unwrap().ldis_enabled());
        // Touch word 0 of lines 0..4 (set 0), then come back for word 5 —
        // every return is a hole miss in the distill cache, while the
        // 4-way ATD would have held all four lines (hits).
        for round in 0..200 {
            for i in 0..4u64 {
                dc.access(req(set0(i), 0));
            }
            for i in 0..4u64 {
                dc.access(req(set0(i), 5));
            }
            if !dc.reverter().unwrap().ldis_enabled() {
                assert!(round >= 1);
                return;
            }
        }
        panic!(
            "reverter never disabled LDIS (psel = {})",
            dc.reverter().unwrap().psel()
        );
    }

    #[test]
    fn disabled_ldis_installs_full_lines() {
        let dc = tiny(ThresholdPolicy::All);
        // No reverter → force has no effect; build one with a reverter.
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_reverter(crate::ReverterConfig {
                leader_sets: 1,
                ..crate::ReverterConfig::default()
            })
            .with_seed(7);
        let mut dc2 = DistillCache::new(cfg);
        dc2.force_ldis(false);
        // Set 1 is a follower (leader stride 4 → set 0 leads).
        let line_in_set1 = |i: u64| i * 4 + 1;
        dc2.access(req(line_in_set1(0), 0));
        for i in 1..=3 {
            dc2.access(req(line_in_set1(i), 0));
        }
        // Line evicted from LOC went to the WOC whole: word 5 must hit.
        let resp = dc2.access(req(line_in_set1(0), 5));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::full(8));
        let _ = dc;
    }

    #[test]
    fn compulsory_misses_only_on_first_touch() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 0));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Hole miss on line 0 is NOT compulsory.
        dc.access(req(set0(0), 5));
        assert_eq!(dc.stats().compulsory_misses, 4);
        assert_eq!(dc.stats().demand_misses(), 5);
    }

    #[test]
    fn l1_evictions_merge_or_mark_dirty() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 0));
        // Merge into LOC.
        dc.on_l1d_evict(LineAddr::new(set0(0)), Footprint::from_bits(0b110), false);
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Line 0 was distilled with 3 used words.
        let hit = dc.woc().lookup(0, dc.loc().config().tag(LineAddr::new(set0(0))));
        assert_eq!(hit.unwrap().valid_words.used_words(), 3);
        // Dirty eviction landing on the WOC copy marks it dirty.
        dc.on_l1d_evict(LineAddr::new(set0(0)), Footprint::from_bits(0b1), true);
        assert_eq!(dc.stats().writebacks, 0);
        // Dirty eviction of a line in neither structure writes back.
        dc.on_l1d_evict(LineAddr::new(1999 * 4), Footprint::from_bits(0b1), true);
        assert_eq!(dc.stats().writebacks, 1);
    }

    #[test]
    fn ldis_base_label_and_default_label() {
        assert_eq!(DistillCache::new(DistillConfig::ldis_base()).name(), "LDIS-Base");
        assert_eq!(
            DistillCache::new(DistillConfig::hpca2007_default()).name(),
            "LDIS-MT-RC"
        );
        assert_eq!(
            DistillCache::with_label(DistillConfig::ldis_base(), "custom").name(),
            "custom"
        );
    }
}
