//! The distill cache: LOC + WOC with line distillation (Sections 4–5).

use crate::fault::Resilience;
use crate::{
    DistillConfig, LdisError, MedianTracker, ResilienceConfig, Reverter, ThresholdPolicy, Woc,
    WocEviction, WordStore,
};
use ldis_cache::CompulsoryTracker;
use ldis_cache::{
    CacheHealth, EvictedLine, L2Outcome, L2Request, L2Response, L2Stats, ProtectionScheme,
    RecoveryAction, SecondLevel, SetAssocCache,
};
use ldis_mem::stats::Counter;
use ldis_mem::{Footprint, LineAddr, LineGeometry};

/// The paper's distill cache.
///
/// Incoming lines are installed in the Line-Organized Cache (LOC, LRU).
/// When a data line is evicted from the LOC, *line distillation* transfers
/// its used words to the Word-Organized Cache (WOC) and discards the rest.
/// An access can therefore end in one of four ways (Section 5.2): LOC-hit,
/// WOC-hit, hole-miss (line in WOC but the demanded word absent) or
/// line-miss.
///
/// Median-threshold filtering (Section 5.4) and the reverter circuit
/// (Section 5.5) are both optional and controlled by [`DistillConfig`].
/// With the reverter disabled-state active, follower sets install the
/// *full* evicted line into the WOC, making the set behave like the 8-way
/// traditional baseline.
///
/// # Example
///
/// ```
/// use ldis_cache::{L2Outcome, L2Request, SecondLevel};
/// use ldis_distill::{DistillCache, DistillConfig};
/// use ldis_mem::{LineAddr, WordIndex};
///
/// let mut dc = DistillCache::new(DistillConfig::ldis_base());
/// let req = L2Request::data(LineAddr::new(3), WordIndex::new(0), false);
/// assert_eq!(dc.access(req).outcome, L2Outcome::LineMiss);
/// assert_eq!(dc.access(req).outcome, L2Outcome::LocHit);
/// ```
#[derive(Clone, Debug)]
pub struct DistillCache<W = Woc> {
    cfg: DistillConfig,
    loc: SetAssocCache,
    woc: W,
    median: MedianTracker,
    reverter: Option<Reverter>,
    resilience: Option<Resilience>,
    stats: L2Stats,
    compulsory: CompulsoryTracker,
    label: String,
    /// Reused buffer for WOC-install evictions — one allocation for the
    /// cache's lifetime instead of one per install.
    woc_evicted: Vec<WocEviction>,
}

impl DistillCache {
    /// Creates an empty distill cache with the paper's word-organized
    /// store.
    pub fn new(cfg: DistillConfig) -> Self {
        let woc = Woc::new(
            cfg.num_sets(),
            cfg.woc_ways(),
            cfg.geometry().words_per_line(),
            cfg.seed(),
        )
        .with_replacement(cfg.woc_replacement());
        DistillCache::with_word_store(cfg, woc)
    }

    /// Creates a distill cache with a custom report label.
    pub fn with_label(cfg: DistillConfig, label: impl Into<String>) -> Self {
        let mut dc = DistillCache::new(cfg);
        dc.label = label.into();
        dc
    }
}

impl<W: WordStore> DistillCache<W> {
    /// Creates a distill cache around a custom word store (footprint-aware
    /// compression uses this to store compressed words).
    pub fn with_word_store(cfg: DistillConfig, woc: W) -> Self {
        let wpl = cfg.geometry().words_per_line();
        let median_interval = match cfg.policy() {
            ThresholdPolicy::Median { interval } => interval,
            _ => 4096,
        };
        let label = match (cfg.policy(), cfg.reverter().is_some()) {
            (ThresholdPolicy::All, false) => "LDIS-Base",
            (ThresholdPolicy::All, true) => "LDIS-RC",
            (ThresholdPolicy::Median { .. }, false) => "LDIS-MT",
            (ThresholdPolicy::Median { .. }, true) => "LDIS-MT-RC",
            (ThresholdPolicy::Fixed(_), false) => "LDIS-Fixed",
            (ThresholdPolicy::Fixed(_), true) => "LDIS-Fixed-RC",
        };
        DistillCache {
            loc: SetAssocCache::new(cfg.loc_config()),
            woc,
            median: MedianTracker::new(wpl, median_interval),
            reverter: cfg
                .reverter()
                .map(|rc| Reverter::new(rc, cfg.num_sets(), cfg.total_ways())),
            resilience: None,
            stats: L2Stats::new(wpl, cfg.loc_ways()),
            compulsory: CompulsoryTracker::new(),
            label: label.to_owned(),
            cfg,
            woc_evicted: Vec::new(),
        }
    }

    /// Overrides the report label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.cfg
    }

    /// The line-organized half (for content inspection).
    pub fn loc(&self) -> &SetAssocCache {
        &self.loc
    }

    /// The word-organized half (for occupancy inspection).
    pub fn woc(&self) -> &W {
        &self.woc
    }

    /// The median tracker driving threshold-based distillation.
    pub fn median(&self) -> &MedianTracker {
        &self.median
    }

    /// The reverter circuit, if configured.
    pub fn reverter(&self) -> Option<&Reverter> {
        self.reverter.as_ref()
    }

    /// Forces the reverter's decision; a no-op without a reverter. Used by
    /// tests and the policy-extreme property checks.
    pub fn force_ldis(&mut self, enabled: bool) {
        if let Some(r) = self.reverter.as_mut() {
            r.force_enabled(enabled);
        }
    }

    /// Enables the fault-injection + self-check subsystem. With the
    /// default config (rate 0) the simulation stays bit-identical while
    /// the invariant checker runs as a pure self-checking harness.
    #[must_use]
    pub fn with_resilience(mut self, rcfg: ResilienceConfig) -> Self {
        self.resilience = Some(Resilience::new(rcfg));
        self
    }

    /// The resilience record (fault accounting, degradation log, degraded
    /// flag), when the subsystem is enabled.
    pub fn health(&self) -> Option<&CacheHealth> {
        self.resilience.as_ref().map(|r| &r.health)
    }

    /// Whether line distillation is active for `set` right now. Once the
    /// cache has degraded after detected corruption, distillation is off
    /// everywhere — including leader sets — so every set behaves like the
    /// traditional baseline.
    pub fn ldis_active_for(&self, set: usize) -> bool {
        if self.resilience.as_ref().is_some_and(|r| r.health.degraded) {
            return false;
        }
        match &self.reverter {
            None => true,
            Some(r) => r.is_leader(set) || r.ldis_enabled(),
        }
    }

    fn set_and_tag(&self, line: LineAddr) -> (usize, u64) {
        let cfg = self.loc.config();
        (cfg.set_index(line), cfg.tag(line))
    }

    /// Installs a fetched line into the LOC, distilling the victim.
    fn install_in_loc(&mut self, req: &L2Request, extra_dirty: bool) {
        let word = if req.is_instr { None } else { Some(req.word) };
        let dirty = req.write || extra_dirty;
        if let Some(ev) = self.loc.install(req.line, word, dirty, req.is_instr) {
            self.record_loc_eviction(&ev);
            let (set, _) = self.set_and_tag(ev.line);
            self.distill(set, ev);
        }
    }

    fn record_loc_eviction(&mut self, ev: &EvictedLine) {
        self.stats.evictions.bump();
        if !ev.is_instr {
            self.stats
                .words_used_at_evict
                .record(ev.footprint.used_words() as usize);
            self.stats
                .recency_before_change
                .record(ev.recency_at_last_change as usize);
        }
    }

    /// Line distillation (Section 5): transfer the used words of a line
    /// evicted from the LOC into the WOC, or the full line when LDIS is
    /// disabled for the set.
    fn distill(&mut self, set: usize, ev: EvictedLine) {
        if ev.is_instr {
            // Instruction lines are never distilled (Section 4).
            if ev.dirty {
                self.stats.writebacks.bump();
            }
            return;
        }
        let used = ev.footprint.used_words();
        self.median.observe(used);

        let (_, tag) = self.set_and_tag(ev.line);
        if self.ldis_active_for(set) {
            let threshold = match self.cfg.policy() {
                ThresholdPolicy::All => self.cfg.geometry().words_per_line(),
                ThresholdPolicy::Median { .. } => self.median.threshold(),
                ThresholdPolicy::Fixed(k) => k,
            };
            if used == 0 || used > threshold {
                // Filtered out: the line (and its dirty data) leaves the cache.
                self.stats.distill_filtered.bump();
                if ev.dirty {
                    self.stats.writebacks.bump();
                }
                return;
            }
            // Discarding unused words of a dirty line is safe: a store
            // always sets the word's footprint bit, so dirty words are
            // necessarily used words.
            self.install_in_woc(set, tag, ev.line, ev.footprint, ev.dirty);
        } else {
            // LDIS disabled: keep the whole line so the set behaves like
            // the traditional 8-way baseline.
            let full = Footprint::full(self.cfg.geometry().words_per_line());
            self.install_in_woc(set, tag, ev.line, full, ev.dirty);
        }
    }

    fn install_in_woc(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        words: Footprint,
        dirty: bool,
    ) {
        self.stats.woc_installs.bump();
        // Detach the scratch buffer so the store can borrow `self.woc`.
        let mut evicted = std::mem::take(&mut self.woc_evicted);
        self.woc.install(set, tag, line, words, dirty, &mut evicted);
        for ev in &evicted {
            if ev.dirty {
                self.stats.writebacks.bump();
            }
        }
        self.woc_evicted = evicted;
    }

    fn observe_reverter(&mut self, set: usize, line: LineAddr, distill_missed: bool) {
        if let Some(r) = self.reverter.as_mut() {
            if r.is_leader(set) {
                r.observe_leader_access(set, line, distill_missed);
            }
        }
    }

    /// Runs the fault model before servicing an access: injects this
    /// access's faults and, at the configured cadence, sweeps the
    /// invariant checker. The subsystem is temporarily taken out of `self`
    /// so injection can mutate the cache structures it targets.
    fn pre_access_resilience(&mut self) {
        let Some(mut res) = self.resilience.take() else {
            return;
        };
        for _ in 0..res.draw_faults() {
            self.inject_fault(&mut res);
        }
        if res.cfg.check_interval > 0 && self.stats.accesses.is_multiple_of(res.cfg.check_interval)
        {
            self.self_check(&mut res);
        }
        self.resilience = Some(res);
    }

    /// Injects one single-bit flip at a uniformly random position in the
    /// modeled metadata, weighting each structure by its physical bit
    /// count, then applies the protection scheme's semantics: SECDED
    /// corrects in place, parity detects and discards the affected state,
    /// no protection lets the corruption land silently. Flips in dead
    /// state (invalid entries) are masked and reverted.
    fn inject_fault(&mut self, res: &mut Resilience) {
        let woc_bits = self.woc.tag_store_bits();
        let loc_bits = self.loc.footprint_bits();
        let psel_bits = self.reverter.as_ref().map_or(0, |r| r.psel_bits() as u64);
        let median_bits = self.median.counter_bits();
        let total = woc_bits + loc_bits + psel_bits + median_bits;
        if total == 0 {
            return;
        }
        res.health.faults.injected.bump();
        let bit = res.rng.range(total);
        if bit < woc_bits {
            let Some(fault) = self.woc.flip_tag_bit(bit) else {
                res.health.faults.masked.bump();
                return;
            };
            if !fault.live {
                self.woc.flip_tag_bit(bit);
                res.health.faults.masked.bump();
                return;
            }
            match res.cfg.protection {
                ProtectionScheme::Secded => {
                    self.woc.flip_tag_bit(bit);
                    res.health.faults.corrected.bump();
                }
                ProtectionScheme::Parity => {
                    res.health.faults.detected.bump();
                    self.woc.clear_way(fault.set, fault.way);
                    self.record_detected(res, fault.to_string());
                }
                ProtectionScheme::Unprotected => res.health.faults.silent.bump(),
            }
        } else if bit < woc_bits + loc_bits {
            let fbit = bit - woc_bits;
            let fault = self.loc.flip_footprint_bit(fbit);
            if !fault.live {
                self.loc.flip_footprint_bit(fbit);
                res.health.faults.masked.bump();
                return;
            }
            match res.cfg.protection {
                ProtectionScheme::Secded => {
                    self.loc.flip_footprint_bit(fbit);
                    res.health.faults.corrected.bump();
                }
                ProtectionScheme::Parity => {
                    res.health.faults.detected.bump();
                    // A footprint can't be trusted once corrupt: widen it
                    // to the full line so no used word is ever dropped.
                    self.loc.repair_footprint(fault.set, fault.way);
                    self.record_detected(res, fault.to_string());
                }
                ProtectionScheme::Unprotected => res.health.faults.silent.bump(),
            }
        } else if bit < woc_bits + loc_bits + psel_bits {
            // ldis: allow(T1, "the else-if chain pins bit below woc_bits + loc_bits + psel_bits, so the subtraction is less than psel_bits (a few tens of bits)")
            let pbit = (bit - woc_bits - loc_bits) as u32;
            // `psel_bits > 0` implies a reverter; if that ever regresses,
            // the flip has no target and counts as masked.
            let Some(r) = self.reverter.as_mut() else {
                res.health.faults.masked.bump();
                return;
            };
            r.flip_psel_bit(pbit);
            match res.cfg.protection {
                ProtectionScheme::Secded => {
                    r.flip_psel_bit(pbit);
                    res.health.faults.corrected.bump();
                }
                ProtectionScheme::Parity => {
                    res.health.faults.detected.bump();
                    r.reset_psel();
                    self.record_detected(res, format!("reverter psel bit {pbit} flip"));
                }
                ProtectionScheme::Unprotected => res.health.faults.silent.bump(),
            }
        } else {
            let mbit = bit - woc_bits - loc_bits - psel_bits;
            self.median.flip_counter_bit(mbit);
            match res.cfg.protection {
                ProtectionScheme::Secded => {
                    self.median.flip_counter_bit(mbit);
                    res.health.faults.corrected.bump();
                }
                ProtectionScheme::Parity => {
                    res.health.faults.detected.bump();
                    self.median.reset_window();
                    self.record_detected(res, format!("median counter bit {mbit} flip"));
                }
                ProtectionScheme::Unprotected => res.health.faults.silent.bump(),
            }
        }
    }

    /// One invariant-checker sweep: one WOC set (rotating so each sweep
    /// stays O(ways × words)), the PSEL bounds, the median range and the
    /// outcome-counter bookkeeping. Violations are scrubbed — the set
    /// cleared, the counter reset — logged, and counted toward the
    /// degradation trigger.
    fn self_check(&mut self, res: &mut Resilience) {
        let num_sets = self.cfg.num_sets();
        let set = ((self.stats.accesses / res.cfg.check_interval) % num_sets) as usize;
        let mut violations: Vec<LdisError> = Vec::new();
        if let Err(e) = self.woc.check_invariants(set) {
            self.woc.clear_set(set);
            violations.push(e);
        }
        if let Some(r) = self.reverter.as_mut() {
            if let Err(e) = r.check_invariants() {
                r.reset_psel();
                violations.push(e);
            }
        }
        if let Err(e) = self.median.check_invariants() {
            self.median.reset_window();
            violations.push(e);
        }
        let outcomes = self
            .stats
            .loc_hits
            .saturating_add(self.stats.woc_hits)
            .saturating_add(self.stats.hole_misses)
            .saturating_add(self.stats.line_misses);
        // The sweep runs with the current access counted but its outcome
        // not yet recorded, so the counters must sum to accesses - 1.
        let completed = self.stats.accesses - 1;
        if outcomes != completed {
            violations.push(LdisError::StatsMismatch {
                outcomes,
                accesses: completed,
            });
        }
        for e in violations {
            res.health.faults.check_violations.bump();
            self.record_detected(res, e.to_string());
        }
    }

    /// The graceful-degradation policy: every detected corruption is
    /// logged; once `degrade_after` of them have accumulated, the cache
    /// force-reverts to traditional mode (sticky) and keeps serving.
    fn record_detected(&mut self, res: &mut Resilience, cause: String) {
        res.recoveries += 1;
        let degrade_now = !res.health.degraded && res.recoveries >= res.cfg.degrade_after;
        let action = if degrade_now {
            RecoveryAction::Degraded
        } else {
            RecoveryAction::Discarded
        };
        res.health.log(self.stats.accesses, cause, action);
        if degrade_now {
            res.health.degraded = true;
            if let Some(r) = self.reverter.as_mut() {
                r.force_enabled(false);
            }
        }
    }
}

impl<W: WordStore> SecondLevel for DistillCache<W> {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses.bump();
        self.pre_access_resilience();
        let (set, tag) = self.set_and_tag(req.line);
        let full = Footprint::full(self.cfg.geometry().words_per_line());
        let word = if req.is_instr { None } else { Some(req.word) };

        // 1. LOC lookup — serviced like a traditional cache.
        if self.loc.access(req.line, word, req.write) {
            // Injected tag faults can resurrect a stale WOC copy of a
            // LOC-resident line, so exclusivity only holds fault-free.
            debug_assert!(
                self.resilience.is_some() || self.woc.lookup(set, tag).is_none(),
                "a line must never be in both LOC and WOC"
            );
            self.stats.loc_hits.bump();
            self.observe_reverter(set, req.line, false);
            return L2Response {
                outcome: L2Outcome::LocHit,
                valid_words: full,
            };
        }

        // 2. WOC lookup.
        if let Some(hit) = self.woc.lookup(set, tag) {
            if !req.is_instr && hit.valid_words.is_used(req.word) {
                // WOC-hit: the stored words are rearranged and sent to the
                // L1D along with their valid bits.
                self.stats.woc_hits.bump();
                self.observe_reverter(set, req.line, false);
                return L2Response {
                    outcome: L2Outcome::WocHit,
                    valid_words: hit.valid_words,
                };
            }
            // Hole-miss: invalidate the WOC words (dirty data merges into
            // the incoming memory line) and install the full line in the LOC.
            self.stats.hole_misses.bump();
            self.observe_reverter(set, req.line, true);
            let dirty = self
                .woc
                .invalidate_line(set, tag)
                .map(|ev| ev.dirty)
                .unwrap_or(false);
            self.install_in_loc(&req, dirty);
            return L2Response {
                outcome: L2Outcome::HoleMiss,
                valid_words: full,
            };
        }

        // 3. Line-miss: fetch from memory into the LOC.
        self.stats.line_misses.bump();
        if self.compulsory.record_miss(req.line) {
            self.stats.compulsory_misses.bump();
        }
        self.observe_reverter(set, req.line, true);
        self.install_in_loc(&req, false);
        L2Response {
            outcome: L2Outcome::LineMiss,
            valid_words: full,
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool) {
        if self.loc.merge_footprint(line, footprint, dirty) {
            return;
        }
        let (set, tag) = self.set_and_tag(line);
        if dirty && self.woc.mark_dirty(set, tag) {
            return;
        }
        if dirty {
            // Neither in LOC nor WOC (inclusion is not enforced).
            self.stats.writebacks.bump();
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = L2Stats::new(self.cfg.geometry().words_per_line(), self.cfg.loc_ways());
    }

    fn geometry(&self) -> LineGeometry {
        self.cfg.geometry()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn health(&self) -> Option<&CacheHealth> {
        DistillCache::health(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::{LineGeometry, WordIndex};

    /// A tiny distill cache: 4 sets, 4 ways (3 LOC + 1 WOC), 64 B lines.
    fn tiny(policy: ThresholdPolicy) -> DistillCache {
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(policy)
            .with_seed(7);
        DistillCache::new(cfg)
    }

    fn req(line: u64, word: u8) -> L2Request {
        L2Request::data(LineAddr::new(line), WordIndex::new(word), false)
    }

    /// Lines 0, 4, 8, … all map to set 0 of the 4-set cache.
    fn set0(i: u64) -> u64 {
        i * 4
    }

    #[test]
    fn four_outcomes_in_order() {
        let mut dc = tiny(ThresholdPolicy::All);
        // Miss, then LOC hit.
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LineMiss);
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LocHit);
        // Fill the 3 LOC ways; line 0 is evicted and distilled (word 0 only).
        for i in 1..=3 {
            assert_eq!(dc.access(req(set0(i), 0)).outcome, L2Outcome::LineMiss);
        }
        assert_eq!(dc.stats().evictions, 1);
        assert_eq!(dc.stats().woc_installs, 1);
        // Word 0 of line 0 is in the WOC: a WOC hit…
        let resp = dc.access(req(set0(0), 0));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::from_bits(0b1));
        // …but word 5 is a hole miss.
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::HoleMiss);
        // The hole miss re-installed the full line in the LOC.
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::LocHit);
        assert_eq!(dc.access(req(set0(0), 0)).outcome, L2Outcome::LocHit);
    }

    #[test]
    fn woc_hit_returns_only_stored_words() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 1));
        dc.access(req(set0(0), 6));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        let resp = dc.access(req(set0(0), 6));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::from_bits(0b0100_0010));
    }

    #[test]
    fn median_threshold_filters_fat_lines() {
        // Median window of 4; feed two 1-word lines and two 8-word lines.
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(ThresholdPolicy::Median { interval: 4 })
            .with_seed(7);
        let mut dc = DistillCache::new(cfg);
        let mut evictions = 0u64;
        let make_line = |dc: &mut DistillCache, line: u64, words: u8| {
            for w in 0..words {
                dc.access(req(line, w));
            }
        };
        // Warm-up threshold is 8 (permissive). Build 4 evictions:
        // lines with 1, 8, 1, 8 words used. After the window the median is 1.
        for (i, words) in [(0u64, 1u8), (1, 8), (2, 1), (3, 8), (4, 1), (5, 1), (6, 1)] {
            make_line(&mut dc, set0(i), words);
            evictions += 1;
        }
        let _ = evictions;
        assert_eq!(dc.median().threshold(), 1);
        // Now evict a line with 2 words used: it must be filtered.
        let filtered_before = dc.stats().distill_filtered;
        make_line(&mut dc, set0(7), 2);
        make_line(&mut dc, set0(8), 1);
        make_line(&mut dc, set0(9), 1);
        make_line(&mut dc, set0(10), 1);
        assert!(dc.stats().distill_filtered > filtered_before);
    }

    #[test]
    fn instruction_lines_are_never_distilled() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::instr(LineAddr::new(set0(0))));
        for i in 1..=3 {
            dc.access(L2Request::instr(LineAddr::new(set0(i))));
        }
        assert_eq!(dc.stats().evictions, 1);
        assert_eq!(dc.stats().woc_installs, 0);
        assert_eq!(dc.woc().occupancy(), 0);
    }

    #[test]
    fn dirty_data_survives_distillation_and_writes_back() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::data(
            LineAddr::new(set0(0)),
            WordIndex::new(2),
            true,
        ));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Line 0 (dirty, word 2) now lives in the WOC.
        assert_eq!(dc.stats().writebacks, 0, "still cached, no writeback yet");
        // Fill the WOC way (8 slots) with enough single-word lines to evict it.
        for i in 4..=14 {
            dc.access(req(set0(i), 0));
        }
        assert!(dc.stats().writebacks >= 1, "dirty WOC eviction writes back");
    }

    #[test]
    fn hole_miss_merges_dirty_into_refetched_line() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(L2Request::data(
            LineAddr::new(set0(0)),
            WordIndex::new(0),
            true,
        ));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        let wb_before = dc.stats().writebacks;
        assert_eq!(dc.access(req(set0(0), 5)).outcome, L2Outcome::HoleMiss);
        assert_eq!(
            dc.stats().writebacks,
            wb_before,
            "dirty data merges into the refetched line, no memory writeback"
        );
        // Evict the (dirty) line from LOC and let its distilled words be
        // evicted: eventually the dirty data must write back exactly once.
    }

    #[test]
    fn reverter_disables_ldis_on_hole_miss_storms() {
        // Leader sets: 1 of 4 → stride 4, set 0 leads. Streaming pattern
        // where unused words are referenced soon after eviction (swim-like).
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(ThresholdPolicy::All)
            .with_reverter(crate::ReverterConfig {
                leader_sets: 1,
                ..crate::ReverterConfig::default()
            })
            .with_seed(7);
        let mut dc = DistillCache::new(cfg);
        let reverter = |dc: &DistillCache| -> bool {
            dc.reverter()
                .expect("configured with a reverter")
                .ldis_enabled()
        };
        assert!(reverter(&dc));
        // Touch word 0 of lines 0..4 (set 0), then come back for word 5 —
        // every return is a hole miss in the distill cache, while the
        // 4-way ATD would have held all four lines (hits).
        for round in 0..200 {
            for i in 0..4u64 {
                dc.access(req(set0(i), 0));
            }
            for i in 0..4u64 {
                dc.access(req(set0(i), 5));
            }
            if !reverter(&dc) {
                assert!(round >= 1);
                return;
            }
        }
        panic!(
            "reverter never disabled LDIS (psel = {})",
            dc.reverter().expect("configured with a reverter").psel()
        );
    }

    #[test]
    fn disabled_ldis_installs_full_lines() {
        let dc = tiny(ThresholdPolicy::All);
        // No reverter → force has no effect; build one with a reverter.
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_reverter(crate::ReverterConfig {
                leader_sets: 1,
                ..crate::ReverterConfig::default()
            })
            .with_seed(7);
        let mut dc2 = DistillCache::new(cfg);
        dc2.force_ldis(false);
        // Set 1 is a follower (leader stride 4 → set 0 leads).
        let line_in_set1 = |i: u64| i * 4 + 1;
        dc2.access(req(line_in_set1(0), 0));
        for i in 1..=3 {
            dc2.access(req(line_in_set1(i), 0));
        }
        // Line evicted from LOC went to the WOC whole: word 5 must hit.
        let resp = dc2.access(req(line_in_set1(0), 5));
        assert_eq!(resp.outcome, L2Outcome::WocHit);
        assert_eq!(resp.valid_words, Footprint::full(8));
        let _ = dc;
    }

    #[test]
    fn compulsory_misses_only_on_first_touch() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 0));
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Hole miss on line 0 is NOT compulsory.
        dc.access(req(set0(0), 5));
        assert_eq!(dc.stats().compulsory_misses, 4);
        assert_eq!(dc.stats().demand_misses(), 5);
    }

    #[test]
    fn l1_evictions_merge_or_mark_dirty() {
        let mut dc = tiny(ThresholdPolicy::All);
        dc.access(req(set0(0), 0));
        // Merge into LOC.
        dc.on_l1d_evict(LineAddr::new(set0(0)), Footprint::from_bits(0b110), false);
        for i in 1..=3 {
            dc.access(req(set0(i), 0));
        }
        // Line 0 was distilled with 3 used words.
        let hit = dc
            .woc()
            .lookup(0, dc.loc().config().tag(LineAddr::new(set0(0))))
            .expect("line was distilled into the WOC");
        assert_eq!(hit.valid_words.used_words(), 3);
        // Dirty eviction landing on the WOC copy marks it dirty.
        dc.on_l1d_evict(LineAddr::new(set0(0)), Footprint::from_bits(0b1), true);
        assert_eq!(dc.stats().writebacks, 0);
        // Dirty eviction of a line in neither structure writes back.
        dc.on_l1d_evict(LineAddr::new(1999 * 4), Footprint::from_bits(0b1), true);
        assert_eq!(dc.stats().writebacks, 1);
    }

    #[test]
    fn resilience_rate_zero_is_bit_identical() {
        let mut plain = tiny(ThresholdPolicy::All);
        let mut checked = tiny(ThresholdPolicy::All)
            .with_resilience(ResilienceConfig::default().with_check_interval(16));
        for i in 0..5000u64 {
            let r = req(i % 97 * 4, (i % 8) as u8);
            assert_eq!(plain.access(r), checked.access(r));
        }
        assert_eq!(plain.stats(), checked.stats());
        let health = checked.health().expect("subsystem enabled");
        assert_eq!(health.faults.injected, 0);
        assert_eq!(health.faults.check_violations, 0);
        assert!(!health.degraded);
        assert!(health.events.is_empty());
    }

    #[test]
    fn secded_corrects_every_observable_fault() {
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(0.5)
            .with_protection(ldis_cache::ProtectionScheme::Secded)
            .with_seed(3);
        let mut plain = tiny(ThresholdPolicy::All);
        let mut protected = tiny(ThresholdPolicy::All).with_resilience(rcfg);
        for i in 0..5000u64 {
            let r = req(i % 97 * 4, (i % 8) as u8);
            assert_eq!(plain.access(r), protected.access(r), "access {i}");
        }
        let health = protected.health().expect("subsystem enabled");
        assert!(health.faults.injected > 2000);
        assert_eq!(
            health.faults.corrected + health.faults.masked,
            health.faults.injected,
            "every fault is corrected or dead under SECDED"
        );
        assert_eq!(health.faults.coverage(), 1.0);
        assert!(!health.degraded, "no corruption ever lands");
    }

    #[test]
    fn parity_detects_then_degrades_and_keeps_serving() {
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(0.1)
            .with_protection(ldis_cache::ProtectionScheme::Parity)
            .with_seed(5)
            .with_degrade_after(3);
        let mut dc = tiny(ThresholdPolicy::All).with_resilience(rcfg);
        for i in 0..5000u64 {
            dc.access(req(i % 97 * 4, (i % 8) as u8));
        }
        let health = dc.health().expect("subsystem enabled");
        assert_eq!(health.faults.silent, 0, "parity never misses a flip");
        assert!(health.faults.detected >= 3);
        assert!(health.degraded, "threshold of 3 detections was crossed");
        assert_eq!(
            health.events[2].action,
            RecoveryAction::Degraded,
            "the third detection triggers force-reversion"
        );
        assert!(!dc.ldis_active_for(0), "degraded: LDIS off even for set 0");
        assert_eq!(dc.stats().accesses, 5000, "the cache kept serving");
    }

    #[test]
    fn unprotected_faults_land_silently_and_checker_catches_some() {
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(0.2)
            .with_seed(11)
            .with_check_interval(64)
            .with_degrade_after(u64::MAX); // never degrade: observe scrubbing
        let mut dc = tiny(ThresholdPolicy::All).with_resilience(rcfg);
        for i in 0..20_000u64 {
            dc.access(req(i % 97 * 4, (i % 8) as u8));
        }
        let health = dc.health().expect("subsystem enabled");
        assert!(health.faults.silent > 1000);
        assert_eq!(
            health.faults.detected, 0,
            "no parity to detect at injection"
        );
        assert!(
            health.faults.check_violations > 0,
            "the online checker must catch structural damage"
        );
        assert!(!health.degraded);
        for ev in &health.events {
            assert_eq!(ev.action, RecoveryAction::Discarded);
        }
    }

    #[test]
    fn degraded_cache_behaves_like_traditional_everywhere() {
        let cfg = DistillConfig::new(4 * 4 * 64, 4, 1, LineGeometry::default())
            .with_reverter(crate::ReverterConfig {
                leader_sets: 1,
                ..crate::ReverterConfig::default()
            })
            .with_seed(7);
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(0.5)
            .with_protection(ldis_cache::ProtectionScheme::Parity)
            .with_seed(2);
        let mut dc = DistillCache::new(cfg).with_resilience(rcfg);
        for i in 0..200u64 {
            dc.access(req(i * 4, 0));
        }
        let health = dc.health().expect("subsystem enabled");
        assert!(health.degraded);
        assert!(
            !dc.ldis_active_for(0),
            "set 0 is a leader, yet degradation overrides leadership"
        );
        assert!(
            !dc.reverter().expect("configured").ldis_enabled(),
            "degradation force-disables via the reverter"
        );
    }

    #[test]
    fn ldis_base_label_and_default_label() {
        assert_eq!(
            DistillCache::new(DistillConfig::ldis_base()).name(),
            "LDIS-Base"
        );
        assert_eq!(
            DistillCache::new(DistillConfig::hpca2007_default()).name(),
            "LDIS-MT-RC"
        );
        assert_eq!(
            DistillCache::with_label(DistillConfig::ldis_base(), "custom").name(),
            "custom"
        );
    }
}
