//! Configuration and bookkeeping for the soft-error fault model.
//!
//! The distill cache keeps far more metadata per byte of data than a
//! traditional cache — per-word WOC tags, LOC footprints, the PSEL
//! counter, the median counter bank — so a resilience story matters. When
//! enabled via [`DistillCache::with_resilience`](crate::DistillCache::with_resilience),
//! the subsystem injects deterministic seeded single-bit flips into that
//! modeled state, models a [`ProtectionScheme`] over it, runs the online
//! invariant checker at a configurable cadence, and applies the graceful-
//! degradation policy (scrub, then force-revert to traditional mode)
//! instead of ever panicking.

use ldis_cache::{CacheHealth, ProtectionScheme};
use ldis_mem::SimRng;

/// Configuration of the fault-injection + self-check subsystem.
///
/// The default injects nothing (`fault_rate` 0) and checks invariants
/// every 1024 accesses, so it can be left enabled as a pure self-checking
/// harness with bit-identical simulation behavior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Expected metadata bit flips per L2 access (a rate, not a
    /// probability: values above 1 inject multiple flips per access).
    pub fault_rate: f64,
    /// Seed of the injector's private RNG. The stream is independent of
    /// the WOC replacement RNG, so a rate of 0 leaves the simulation
    /// bit-identical to one without the subsystem.
    pub seed: u64,
    /// How the modeled metadata bits are protected.
    pub protection: ProtectionScheme,
    /// Accesses between invariant-checker sweeps (0 disables the checker).
    /// Each sweep checks one WOC set (rotating), the PSEL bounds, the
    /// median range and the outcome-counter bookkeeping.
    pub check_interval: u64,
    /// Number of detected-and-uncorrectable corruptions tolerated before
    /// the cache force-reverts to traditional mode. The default of 1
    /// degrades on the first one.
    pub degrade_after: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            fault_rate: 0.0,
            seed: 0x5eed,
            protection: ProtectionScheme::Unprotected,
            check_interval: 1024,
            degrade_after: 1,
        }
    }
}

impl ResilienceConfig {
    /// Sets the expected bit flips per access.
    #[must_use]
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Sets the injector seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the protection scheme.
    #[must_use]
    pub fn with_protection(mut self, protection: ProtectionScheme) -> Self {
        self.protection = protection;
        self
    }

    /// Sets the invariant-checker cadence (0 disables it).
    #[must_use]
    pub fn with_check_interval(mut self, interval: u64) -> Self {
        self.check_interval = interval;
        self
    }

    /// Sets how many detected corruptions trigger force-reversion.
    #[must_use]
    pub fn with_degrade_after(mut self, events: u64) -> Self {
        self.degrade_after = events.max(1);
        self
    }
}

/// Live state of the subsystem inside a distill cache.
#[derive(Clone, Debug)]
pub(crate) struct Resilience {
    pub(crate) cfg: ResilienceConfig,
    pub(crate) rng: SimRng,
    pub(crate) health: CacheHealth,
    /// Detected-and-uncorrectable corruptions so far (parity detections
    /// plus checker violations) — the degradation trigger counter.
    pub(crate) recoveries: u64,
}

impl Resilience {
    pub(crate) fn new(cfg: ResilienceConfig) -> Self {
        Resilience {
            rng: SimRng::new(cfg.seed),
            health: CacheHealth::new(),
            recoveries: 0,
            cfg,
        }
    }

    /// How many faults to inject before the current access. Touches the
    /// RNG only when the rate is positive, preserving bit-identical
    /// behavior at rate 0.
    pub(crate) fn draw_faults(&mut self) -> u32 {
        if self.cfg.fault_rate <= 0.0 {
            return 0;
        }
        let mut n = 0u32;
        let mut rate = self.cfg.fault_rate;
        while rate >= 1.0 {
            n += 1;
            rate -= 1.0;
        }
        if rate > 0.0 && self.rng.chance(rate) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let cfg = ResilienceConfig::default();
        assert_eq!(cfg.fault_rate, 0.0);
        let mut res = Resilience::new(cfg);
        let rng_before = res.rng.clone();
        for _ in 0..100 {
            assert_eq!(res.draw_faults(), 0);
        }
        assert_eq!(res.rng, rng_before, "rate 0 must not advance the RNG");
    }

    #[test]
    fn rates_above_one_inject_multiple_flips() {
        let mut res = Resilience::new(ResilienceConfig::default().with_fault_rate(2.5));
        for _ in 0..50 {
            let n = res.draw_faults();
            assert!(n == 2 || n == 3, "got {n}");
        }
    }

    #[test]
    fn fractional_rate_matches_expectation() {
        let mut res = Resilience::new(ResilienceConfig::default().with_fault_rate(0.25));
        let total: u32 = (0..10_000).map(|_| res.draw_faults()).sum();
        assert!((2000..3000).contains(&total), "got {total}");
    }

    #[test]
    fn degrade_after_floor_is_one() {
        assert_eq!(
            ResilienceConfig::default()
                .with_degrade_after(0)
                .degrade_after,
            1
        );
    }
}
