//! Line Distillation and the Distill Cache — the contribution of
//! *"Line Distillation: Increasing Cache Capacity by Filtering Unused Words
//! in Cache Lines"* (Qureshi, Suleman & Patt, HPCA 2007).
//!
//! A cache line's *footprint* records which 8 B words the processor
//! actually used. Because footprints stabilize as a line drifts down the
//! LRU stack, the used/unused split is trustworthy by eviction time. The
//! [`DistillCache`] exploits this: lines live in a Line-Organized Cache
//! (LOC); on eviction, only the used words move into a Word-Organized
//! Cache (WOC) whose tag store tracks individual words. The freed space
//! lets the same 1 MB hold many more useful lines.
//!
//! The crate provides:
//!
//! * [`DistillCache`] — the full organization with its four access
//!   outcomes (LOC-hit, WOC-hit, hole-miss, line-miss), implementing
//!   [`SecondLevel`](ldis_cache::SecondLevel) so it drops into the same
//!   [`Hierarchy`](ldis_cache::Hierarchy) as the baseline;
//! * [`Woc`] — the word-organized store with head-bit bookkeeping, aligned
//!   power-of-two placement and random replacement (Section 5.1–5.3);
//! * [`MedianTracker`] — median-threshold filtering (Section 5.4);
//! * [`Reverter`] — the set-dueling reverter circuit (Section 5.5);
//! * [`StorageOverhead`] — the Table 3 storage model;
//! * [`ResilienceConfig`] — the soft-error fault model: deterministic
//!   seeded bit flips in the metadata (WOC tags, footprints, PSEL, median
//!   counters), parity/SECDED protection accounting, an online invariant
//!   checker ([`LdisError`]) and graceful degradation to traditional mode.
//!
//! # Example
//!
//! ```
//! use ldis_cache::{Hierarchy, SecondLevel};
//! use ldis_distill::{DistillCache, DistillConfig};
//! use ldis_mem::{Access, Addr};
//!
//! let dc = DistillCache::new(DistillConfig::hpca2007_default());
//! let mut hier = Hierarchy::hpca2007(dc);
//! // Touch one word of many lines, then revisit: the WOC keeps the used
//! // words around far longer than the baseline would.
//! for i in 0..32_768u64 {
//!     hier.access(Access::load(Addr::new(i * 64), 8));
//! }
//! assert!(hier.l2().stats().evictions > 0);
//! assert!(hier.l2().stats().woc_installs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod costs;
mod distill_cache;
mod error;
mod fault;
mod median;
mod overhead;
mod reverter;
mod woc;
mod word_store;

pub use config::{DistillConfig, ReverterConfig, ThresholdPolicy, WocReplacement};
pub use costs::{CostModel, EnergyBreakdown};
pub use distill_cache::DistillCache;
pub use error::{CellFailure, LdisError};
pub use fault::ResilienceConfig;
pub use median::MedianTracker;
pub use overhead::{StorageOverhead, ATD_ENTRY_BYTES, BASELINE_TAG_BYTES, PHYSICAL_ADDR_BITS};
pub use reverter::Reverter;
pub use woc::{Woc, WocEviction, WocFault, WocField, WocLineHit, WOC_ENTRY_BITS};
pub use word_store::WordStore;
