//! The word-store abstraction behind the WOC.
//!
//! The distill cache is generic over how the word-organized half stores a
//! line's used words: the paper's plain [`Woc`](crate::Woc) keeps one tag
//! per 8 B word, while footprint-aware compression (`ldis-compress`)
//! squeezes the used words into fewer slots first. Both implement this
//! trait, so [`DistillCache`](crate::DistillCache) carries all of the LOC,
//! threshold and reverter machinery unchanged.

use crate::{LdisError, WocEviction, WocFault, WocLineHit};
use ldis_mem::{Footprint, LineAddr};

/// Storage for distilled lines, indexed by `(set, tag)`.
///
/// The `tag_store_bits` / `flip_tag_bit` / `clear_*` / `check_invariants`
/// group is the fault-model surface; the defaults model no bits, so
/// stores without a fault model (e.g. the compressed WOC) are untouched
/// by the resilience subsystem.
pub trait WordStore {
    /// Looks up a line; `Some` if *any* of its words are stored (a line
    /// hit), with the valid words.
    fn lookup(&self, set: usize, tag: u64) -> Option<WocLineHit>;

    /// Installs a line's used words, evicting whole overlapping lines as
    /// needed. `line` is the full line address (size models may need it);
    /// `tag` identifies it within the set. `evicted` is cleared and filled
    /// with the displaced lines — an out-parameter so the per-install
    /// scratch allocation lives with the caller and is reused across
    /// installs on the hot path.
    fn install(
        &mut self,
        set: usize,
        tag: u64,
        line: LineAddr,
        words: Footprint,
        dirty: bool,
        evicted: &mut Vec<WocEviction>,
    );

    /// Removes all words of a line (the hole-miss path), returning the
    /// eviction record if it was present.
    fn invalidate_line(&mut self, set: usize, tag: u64) -> Option<WocEviction>;

    /// Marks a stored line dirty; returns whether it was present.
    fn mark_dirty(&mut self, set: usize, tag: u64) -> bool;

    /// Number of occupied word slots across the store.
    fn occupancy(&self) -> u64;

    /// Modeled tag-store bits exposed to fault injection (0 when the
    /// store has no fault model — the default).
    fn tag_store_bits(&self) -> u64 {
        0
    }

    /// Flips modeled tag-store bit `bit`, returning the fault site, or
    /// `None` when the store has no fault model.
    fn flip_tag_bit(&mut self, _bit: u64) -> Option<WocFault> {
        None
    }

    /// Discards all entries of one way (parity recovery). Returns the
    /// number of valid entries discarded.
    fn clear_way(&mut self, _set: usize, _way: usize) -> u64 {
        0
    }

    /// Discards all entries of one set (self-check recovery). Returns the
    /// number of valid entries discarded.
    fn clear_set(&mut self, _set: usize) -> u64 {
        0
    }

    /// Structural self-check of one set; `Ok` by default.
    fn check_invariants(&self, _set: usize) -> Result<(), LdisError> {
        Ok(())
    }
}
