//! Configuration of the distill cache.

use ldis_cache::CacheConfig;
use ldis_mem::LineGeometry;

/// Which lines evicted from the LOC are installed into the WOC
/// (Section 5.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdPolicy {
    /// LDIS-Base: always transfer all used words of the evicted line.
    All,
    /// Median-threshold filtering: install only lines whose used-word count
    /// does not exceed the running median, recomputed every `interval` LOC
    /// evictions (the paper uses 4096).
    Median {
        /// LOC evictions between median recomputations.
        interval: u64,
    },
    /// A fixed distillation threshold `K`: install only lines with at most
    /// `K` used words. Used by the threshold ablation.
    Fixed(u8),
}

impl ThresholdPolicy {
    /// The paper's median-threshold policy with its 4 k-eviction window.
    pub const fn median() -> Self {
        ThresholdPolicy::Median { interval: 4096 }
    }
}

/// How the WOC picks among eligible replacement candidates (Section 5.3).
///
/// The paper uses random selection, noting that LRU over variable-sized
/// entries would need multiple LRU lists; `RoundRobin` is the cheap
/// ordered alternative used by the replacement ablation to confirm the
/// paper's "similar performance" claim.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WocReplacement {
    /// Uniformly random among eligible candidates (the paper's choice).
    #[default]
    Random,
    /// Rotate deterministically through candidates.
    RoundRobin,
}

/// Configuration of the reverter circuit (Section 5.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReverterConfig {
    /// Number of leader sets (the paper uses 32 of 2048).
    pub leader_sets: u32,
    /// LDIS is disabled when PSEL drops below this value (paper: 64).
    pub disable_below: u16,
    /// LDIS is enabled when PSEL rises above this value (paper: 192).
    pub enable_above: u16,
    /// Saturating maximum of the PSEL counter (paper: 8-bit → 255).
    pub psel_max: u16,
}

impl Default for ReverterConfig {
    /// The paper's reverter: 32 leader sets, 8-bit PSEL, hysteresis at
    /// 64 / 192.
    fn default() -> Self {
        ReverterConfig {
            leader_sets: 32,
            disable_below: 64,
            enable_above: 192,
            psel_max: 255,
        }
    }
}

/// Full configuration of a [`DistillCache`](crate::DistillCache).
///
/// # Example
///
/// ```
/// use ldis_distill::DistillConfig;
///
/// // The paper's default: 1 MB, 8-way, 6 LOC ways + 2 WOC ways,
/// // median-threshold filtering and the reverter circuit.
/// let cfg = DistillConfig::hpca2007_default();
/// assert_eq!(cfg.num_sets(), 2048);
/// assert_eq!(cfg.loc_ways(), 6);
/// assert_eq!(cfg.woc_ways(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DistillConfig {
    size_bytes: u64,
    total_ways: u32,
    woc_ways: u32,
    geometry: LineGeometry,
    policy: ThresholdPolicy,
    reverter: Option<ReverterConfig>,
    seed: u64,
    woc_replacement: WocReplacement,
}

impl DistillConfig {
    /// Creates a distill-cache configuration: a cache of `size_bytes`
    /// organized as `total_ways` ways per set of which `woc_ways` are
    /// devoted to the word-organized cache.
    ///
    /// The default policy is [`ThresholdPolicy::All`] with no reverter
    /// (LDIS-Base); use the `with_*` methods or the presets to change that.
    ///
    /// # Panics
    ///
    /// Panics if `woc_ways` is zero or leaves no LOC way, or if the derived
    /// set count is not a power of two.
    pub fn new(size_bytes: u64, total_ways: u32, woc_ways: u32, geometry: LineGeometry) -> Self {
        assert!(
            woc_ways >= 1 && woc_ways < total_ways,
            "need 1..total_ways WOC ways, got {woc_ways} of {total_ways}"
        );
        // Validate set geometry via CacheConfig's rules.
        let _ = CacheConfig::new(size_bytes, total_ways, geometry);
        DistillConfig {
            size_bytes,
            total_ways,
            woc_ways,
            geometry,
            policy: ThresholdPolicy::All,
            reverter: None,
            seed: 0x1d15,
            woc_replacement: WocReplacement::Random,
        }
    }

    /// The paper's default distill cache: 1 MB, 8-way, 6 + 2 split,
    /// median-threshold filtering and the reverter circuit (LDIS-MT-RC).
    pub fn hpca2007_default() -> Self {
        DistillConfig::ldis_mt_rc()
    }

    /// LDIS-Base (Figure 6): all used words always transferred, no reverter.
    pub fn ldis_base() -> Self {
        DistillConfig::new(1 << 20, 8, 2, LineGeometry::default())
    }

    /// LDIS-MT (Figure 6): median-threshold filtering, no reverter.
    pub fn ldis_mt() -> Self {
        DistillConfig::ldis_base().with_policy(ThresholdPolicy::median())
    }

    /// LDIS-MT-RC (Figure 6): median-threshold filtering plus the reverter.
    pub fn ldis_mt_rc() -> Self {
        DistillConfig::ldis_mt().with_reverter(ReverterConfig::default())
    }

    /// Replaces the threshold policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ThresholdPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the reverter circuit.
    ///
    /// # Panics
    ///
    /// Panics if `leader_sets` is zero, not a power of two, or exceeds the
    /// set count.
    #[must_use]
    pub fn with_reverter(mut self, reverter: ReverterConfig) -> Self {
        let sets = self.num_sets();
        assert!(
            reverter.leader_sets > 0
                && (reverter.leader_sets as u64) <= sets
                && reverter.leader_sets.is_power_of_two(),
            "leader sets must be a power of two in 1..={sets}"
        );
        assert!(
            reverter.disable_below < reverter.enable_above
                && reverter.enable_above <= reverter.psel_max,
            "reverter thresholds must satisfy disable < enable <= max"
        );
        self.reverter = Some(reverter);
        self
    }

    /// Removes the reverter circuit.
    #[must_use]
    pub fn without_reverter(mut self) -> Self {
        self.reverter = None;
        self
    }

    /// Changes the number of WOC ways (e.g. 3 for the LDIS-4xTags
    /// configuration of Figure 11).
    ///
    /// # Panics
    ///
    /// Panics if the split becomes invalid.
    #[must_use]
    pub fn with_woc_ways(self, woc_ways: u32) -> Self {
        let mut cfg = DistillConfig::new(self.size_bytes, self.total_ways, woc_ways, self.geometry);
        cfg.policy = self.policy;
        cfg.reverter = self.reverter;
        cfg.seed = self.seed;
        cfg.woc_replacement = self.woc_replacement;
        cfg
    }

    /// Changes the WOC replacement candidate selection policy.
    #[must_use]
    pub fn with_woc_replacement(mut self, policy: WocReplacement) -> Self {
        self.woc_replacement = policy;
        self
    }

    /// Sets the seed of the WOC's random replacement engine.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total cache capacity in bytes (LOC + WOC data).
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Total ways per set.
    pub const fn total_ways(&self) -> u32 {
        self.total_ways
    }

    /// Ways devoted to the line-organized cache.
    pub const fn loc_ways(&self) -> u32 {
        self.total_ways - self.woc_ways
    }

    /// Ways devoted to the word-organized cache.
    pub const fn woc_ways(&self) -> u32 {
        self.woc_ways
    }

    /// Line/word geometry.
    pub const fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    /// The distillation threshold policy.
    pub const fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// The reverter configuration, if enabled.
    pub const fn reverter(&self) -> Option<ReverterConfig> {
        self.reverter
    }

    /// The WOC replacement seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The WOC replacement candidate selection policy.
    pub const fn woc_replacement(&self) -> WocReplacement {
        self.woc_replacement
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.geometry.line_bytes() as u64 * self.total_ways as u64)
    }

    /// The configuration of the embedded LOC.
    pub fn loc_config(&self) -> CacheConfig {
        CacheConfig::with_sets(self.num_sets(), self.loc_ways(), self.geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let base = DistillConfig::ldis_base();
        assert_eq!(base.policy(), ThresholdPolicy::All);
        assert!(base.reverter().is_none());
        assert_eq!(base.loc_ways(), 6);

        let mt = DistillConfig::ldis_mt();
        assert_eq!(mt.policy(), ThresholdPolicy::median());
        assert!(mt.reverter().is_none());

        let rc = DistillConfig::ldis_mt_rc();
        let rev = rc.reverter().expect("reverter enabled");
        assert_eq!(rev.leader_sets, 32);
        assert_eq!(rev.disable_below, 64);
        assert_eq!(rev.enable_above, 192);
        assert_eq!(rev.psel_max, 255);
    }

    #[test]
    fn loc_config_has_three_quarters_capacity() {
        let cfg = DistillConfig::hpca2007_default();
        assert_eq!(cfg.loc_config().size_bytes(), 768 << 10);
        assert_eq!(cfg.loc_config().num_sets(), 2048);
    }

    #[test]
    fn with_woc_ways_preserves_policy() {
        let cfg = DistillConfig::ldis_mt_rc().with_woc_ways(3);
        assert_eq!(cfg.woc_ways(), 3);
        assert_eq!(cfg.loc_ways(), 5);
        assert_eq!(cfg.policy(), ThresholdPolicy::median());
        assert!(cfg.reverter().is_some());
    }

    #[test]
    #[should_panic(expected = "WOC ways")]
    fn rejects_all_ways_as_woc() {
        let _ = DistillConfig::new(1 << 20, 8, 8, LineGeometry::default());
    }

    #[test]
    #[should_panic(expected = "leader sets")]
    fn rejects_bad_leader_count() {
        let _ = DistillConfig::ldis_base().with_reverter(ReverterConfig {
            leader_sets: 33,
            ..ReverterConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_inverted_hysteresis() {
        let _ = DistillConfig::ldis_base().with_reverter(ReverterConfig {
            disable_below: 200,
            enable_above: 100,
            ..ReverterConfig::default()
        });
    }

    #[test]
    fn seed_is_configurable() {
        assert_eq!(DistillConfig::ldis_base().with_seed(99).seed(), 99);
    }
}
