//! The reverter circuit (Section 5.5): dynamic set sampling with an
//! auxiliary tag directory and a hysteretic policy-selection counter.

use crate::{LdisError, ReverterConfig};
use ldis_cache::CacheSet;
use ldis_mem::LineAddr;

/// The reverter circuit: decides whether LDIS is enabled for follower sets.
///
/// A fixed sample of *leader sets* always runs LDIS; an Auxiliary Tag
/// Directory (ATD) shadows what a traditional cache would do on those same
/// sets. A miss in a leader set of the distill cache decrements the PSEL
/// counter; a miss in the ATD increments it. LDIS is disabled for follower
/// sets when PSEL falls below `disable_below` and re-enabled when it rises
/// above `enable_above`; in between the previous decision sticks.
///
/// # Example
///
/// ```
/// use ldis_distill::{Reverter, ReverterConfig};
///
/// let r = Reverter::new(ReverterConfig::default(), 2048, 8);
/// assert!(r.ldis_enabled(), "LDIS starts enabled");
/// assert!(r.is_leader(0));
/// assert!(!r.is_leader(1));
/// ```
#[derive(Clone, Debug)]
pub struct Reverter {
    cfg: ReverterConfig,
    /// Distance between consecutive leader sets.
    stride: usize,
    /// One ATD set (traditional `total_ways`-way LRU tags) per leader set.
    atd: Vec<CacheSet>,
    psel: u16,
    enabled: bool,
    /// Misses observed by the distill leader sets.
    pub distill_leader_misses: u64,
    /// Misses observed by the ATD (traditional-cache leader sets).
    pub atd_misses: u64,
    /// Number of enable→disable and disable→enable flips.
    pub flips: u64,
}

impl Reverter {
    /// Creates a reverter for a cache of `num_sets` sets of `total_ways`
    /// ways.
    ///
    /// # Panics
    ///
    /// Panics if the leader count does not divide the set count.
    pub fn new(cfg: ReverterConfig, num_sets: u64, total_ways: u32) -> Self {
        assert!(
            num_sets.is_multiple_of(cfg.leader_sets as u64),
            "leader sets must divide the set count"
        );
        let stride = (num_sets / cfg.leader_sets as u64) as usize;
        Reverter {
            cfg,
            stride,
            atd: (0..cfg.leader_sets)
                .map(|_| CacheSet::new(total_ways))
                .collect(),
            psel: cfg.psel_max.div_ceil(2),
            enabled: true,
            distill_leader_misses: 0,
            atd_misses: 0,
            flips: 0,
        }
    }

    /// Whether `set` is a leader set (LDIS always on there).
    pub fn is_leader(&self, set: usize) -> bool {
        set.is_multiple_of(self.stride)
    }

    /// Whether LDIS is currently enabled for follower sets.
    pub fn ldis_enabled(&self) -> bool {
        self.enabled
    }

    /// The current PSEL value (for instrumentation and the
    /// `streaming_reverter` example).
    pub fn psel(&self) -> u16 {
        self.psel
    }

    /// Records an access to leader set `set` for line `line`: simulates the
    /// traditional cache on the ATD and folds both the ATD's outcome and
    /// the distill cache's (`distill_missed`) into PSEL.
    ///
    /// Must only be called for leader sets.
    pub fn observe_leader_access(&mut self, set: usize, line: LineAddr, distill_missed: bool) {
        debug_assert!(self.is_leader(set));
        let leader = set / self.stride;
        // Leader sets are `0, stride, 2*stride, ...`, so `leader` is in
        // bounds whenever the caller honours the contract; a non-leader
        // access is ignored rather than sampled into the wrong ATD set.
        let Some(atd_set) = self.atd.get_mut(leader) else {
            return;
        };
        let tag = line.raw();
        let atd_missed = match atd_set.find(tag) {
            Some(way) => {
                atd_set.promote(way);
                false
            }
            None => {
                let way = atd_set.victim_way();
                atd_set.entry_mut(way).install(tag, false, false);
                atd_set.promote(way);
                true
            }
        };
        if distill_missed {
            self.distill_leader_misses += 1;
            self.psel = self.psel.saturating_sub(1);
        }
        if atd_missed {
            self.atd_misses += 1;
            self.psel = (self.psel + 1).min(self.cfg.psel_max);
        }
        self.apply_hysteresis();
    }

    fn apply_hysteresis(&mut self) {
        let next = if self.psel < self.cfg.disable_below {
            false
        } else if self.psel > self.cfg.enable_above {
            true
        } else {
            self.enabled
        };
        if next != self.enabled {
            self.flips += 1;
            self.enabled = next;
        }
    }

    /// Forces the decision (used by tests, the policy-extremes property
    /// check and the graceful-degradation path).
    pub fn force_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.psel = if enabled { self.cfg.psel_max } else { 0 };
    }

    /// Modeled PSEL width in bits (8 for the paper's 8-bit counter) — the
    /// fault injector's address space over this structure.
    pub fn psel_bits(&self) -> u32 {
        u16::BITS - self.cfg.psel_max.leading_zeros()
    }

    /// Flips one PSEL bit. The corrupted value takes effect at the next
    /// leader-set access, exactly like a soft error in the real counter.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the modeled width.
    pub fn flip_psel_bit(&mut self, bit: u32) {
        assert!(bit < self.psel_bits(), "psel bit out of range");
        self.psel ^= 1 << bit;
    }

    /// Resets PSEL to its midpoint without changing the current decision —
    /// the recovery after a detected counter corruption.
    pub fn reset_psel(&mut self) {
        self.psel = self.cfg.psel_max.div_ceil(2);
    }

    /// Checks that PSEL is within its modeled range.
    pub fn check_invariants(&self) -> Result<(), LdisError> {
        if self.psel > self.cfg.psel_max {
            Err(LdisError::PselOutOfBounds {
                psel: self.psel,
                max: self.cfg.psel_max,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reverter() -> Reverter {
        Reverter::new(ReverterConfig::default(), 2048, 8)
    }

    #[test]
    fn leader_selection_is_evenly_strided() {
        let r = reverter();
        let leaders: Vec<usize> = (0..2048).filter(|&s| r.is_leader(s)).collect();
        assert_eq!(leaders.len(), 32);
        assert_eq!(leaders[0], 0);
        assert_eq!(leaders[1], 64);
    }

    #[test]
    fn sustained_distill_misses_disable_ldis() {
        let mut r = reverter();
        // Distill misses while the ATD hits (same line every time, so the
        // ATD hits from the second access on): PSEL sinks below 64.
        for _ in 0..200u64 {
            r.observe_leader_access(0, LineAddr::new(7), true);
        }
        assert!(!r.ldis_enabled(), "psel = {}", r.psel());
        assert!(r.flips >= 1);
    }

    #[test]
    fn sustained_atd_misses_keep_ldis_enabled() {
        let mut r = reverter();
        // Unique lines: both miss → PSEL unchanged net; then distill hits
        // (missed = false) while ATD still misses → PSEL rises.
        for i in 0..500u64 {
            r.observe_leader_access(0, LineAddr::new(1000 + i), false);
        }
        assert!(r.ldis_enabled());
        assert_eq!(r.atd_misses, 500);
        assert_eq!(r.distill_leader_misses, 0);
        assert_eq!(r.psel(), 255);
    }

    #[test]
    fn hysteresis_band_retains_decision() {
        let cfg = ReverterConfig::default();
        let mut r = Reverter::new(cfg, 64, 8);
        // Drive PSEL just below the enable threshold from the middle: the
        // initial decision (enabled) must be retained inside [64, 192].
        assert_eq!(r.psel(), 128);
        for i in 0..30u64 {
            // distill misses, ATD misses too (unique lines) → net zero …
            r.observe_leader_access(0, LineAddr::new(i * 64), true);
        }
        // Both counters moved the same amount: PSEL ≈ 128, still enabled.
        assert!(r.ldis_enabled());
        assert!((64..=192).contains(&r.psel()));
    }

    #[test]
    fn flip_counting_and_force() {
        let mut r = reverter();
        r.force_enabled(false);
        assert!(!r.ldis_enabled());
        assert_eq!(r.psel(), 0);
        r.force_enabled(true);
        assert_eq!(r.psel(), 255);
        assert!(r.ldis_enabled());
    }

    #[test]
    fn psel_fault_surface_and_recovery() {
        let mut r = reverter();
        assert_eq!(r.psel_bits(), 8);
        r.check_invariants().expect("fresh reverter is consistent");
        assert_eq!(r.psel(), 128);
        r.flip_psel_bit(7);
        assert_eq!(r.psel(), 0, "flipping the MSB of 128 zeroes the counter");
        r.flip_psel_bit(0);
        assert_eq!(r.psel(), 1);
        // Any single flip of an 8-bit counter stays within 0..=255.
        r.check_invariants().expect("flips stay in range");
        r.reset_psel();
        assert_eq!(r.psel(), 128);
        assert!(r.ldis_enabled(), "reset keeps the current decision");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn leader_count_must_divide_sets() {
        let cfg = ReverterConfig {
            leader_sets: 32,
            ..ReverterConfig::default()
        };
        let _ = Reverter::new(cfg, 48, 8);
    }
}
