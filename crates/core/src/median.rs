//! Median-threshold tracking (Section 5.4).

use ldis_mem::stats::Histogram;

/// Tracks the median number of used words among lines evicted from the LOC.
///
/// The hardware uses one counter per possible used-word count (1..=words)
/// plus an eviction-sum counter; the median is recomputed once every
/// `interval` LOC evictions (4096 in the paper) and the counters reset so
/// the threshold adapts to program phases.
///
/// Until the first window completes, the threshold is the full line (every
/// eviction qualifies), so a cold cache behaves like LDIS-Base.
///
/// # Example
///
/// ```
/// use ldis_distill::MedianTracker;
///
/// let mut mt = MedianTracker::new(8, 4);
/// for used in [1, 1, 8, 8] {
///     mt.observe(used);
/// }
/// // Window of 4 complete: median of {1,1,8,8} per the paper's
/// // cumulative-count rule is 1.
/// assert_eq!(mt.threshold(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MedianTracker {
    hist: Histogram,
    interval: u64,
    seen_in_window: u64,
    threshold: u8,
    windows_completed: u64,
}

impl MedianTracker {
    /// Creates a tracker for lines of `words_per_line` words, recomputing
    /// every `interval` observations.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(words_per_line: u8, interval: u64) -> Self {
        assert!(interval > 0, "median interval must be positive");
        MedianTracker {
            hist: Histogram::new(words_per_line as usize + 1),
            interval,
            seen_in_window: 0,
            threshold: words_per_line,
            windows_completed: 0,
        }
    }

    /// Records a LOC eviction with `used` words used, recomputing the
    /// threshold when the window fills.
    pub fn observe(&mut self, used: u8) {
        self.hist.record(used as usize);
        self.seen_in_window += 1;
        if self.seen_in_window >= self.interval {
            if let Some(median) = self.hist.median_bin() {
                self.threshold = median as u8;
            }
            self.hist.clear();
            self.seen_in_window = 0;
            self.windows_completed += 1;
        }
    }

    /// The current distillation threshold: lines with more used words than
    /// this are not installed in the WOC.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// How many complete windows have been folded into the threshold.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_permissive() {
        let mt = MedianTracker::new(8, 4096);
        assert_eq!(mt.threshold(), 8);
        assert_eq!(mt.windows_completed(), 0);
    }

    #[test]
    fn bimodal_distribution_latches_low_median() {
        // The paper's swim example: ~half the evictions use 1 word, half
        // use all 8. The cumulative rule reaches half the eviction-sum at
        // bin 1, so the threshold becomes 1 and the 8-word lines are
        // filtered out.
        let mut mt = MedianTracker::new(8, 100);
        for i in 0..100 {
            mt.observe(if i % 2 == 0 { 1 } else { 8 });
        }
        assert_eq!(mt.windows_completed(), 1);
        assert_eq!(mt.threshold(), 1);
    }

    #[test]
    fn window_reset_adapts_to_phases() {
        let mut mt = MedianTracker::new(8, 10);
        for _ in 0..10 {
            mt.observe(2);
        }
        assert_eq!(mt.threshold(), 2);
        for _ in 0..10 {
            mt.observe(7);
        }
        assert_eq!(mt.threshold(), 7);
        assert_eq!(mt.windows_completed(), 2);
    }

    #[test]
    fn threshold_unchanged_mid_window() {
        let mut mt = MedianTracker::new(8, 100);
        for _ in 0..99 {
            mt.observe(1);
        }
        assert_eq!(mt.threshold(), 8, "no update until the window completes");
        mt.observe(1);
        assert_eq!(mt.threshold(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval() {
        let _ = MedianTracker::new(8, 0);
    }
}
