//! Median-threshold tracking (Section 5.4).

use crate::LdisError;
use ldis_mem::stats::Histogram;

/// Tracks the median number of used words among lines evicted from the LOC.
///
/// The hardware uses one counter per possible used-word count (1..=words)
/// plus an eviction-sum counter; the median is recomputed once every
/// `interval` LOC evictions (4096 in the paper) and the counters reset so
/// the threshold adapts to program phases.
///
/// Until the first window completes, the threshold is the full line (every
/// eviction qualifies), so a cold cache behaves like LDIS-Base.
///
/// # Example
///
/// ```
/// use ldis_distill::MedianTracker;
///
/// let mut mt = MedianTracker::new(8, 4);
/// for used in [1, 1, 8, 8] {
///     mt.observe(used);
/// }
/// // Window of 4 complete: median of {1,1,8,8} per the paper's
/// // cumulative-count rule is 1.
/// assert_eq!(mt.threshold(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MedianTracker {
    hist: Histogram,
    interval: u64,
    seen_in_window: u64,
    threshold: u8,
    windows_completed: u64,
}

impl MedianTracker {
    /// Creates a tracker for lines of `words_per_line` words, recomputing
    /// every `interval` observations.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(words_per_line: u8, interval: u64) -> Self {
        assert!(interval > 0, "median interval must be positive");
        MedianTracker {
            hist: Histogram::new(words_per_line as usize + 1),
            interval,
            seen_in_window: 0,
            threshold: words_per_line,
            windows_completed: 0,
        }
    }

    /// Records a LOC eviction with `used` words used, recomputing the
    /// threshold when the window fills.
    pub fn observe(&mut self, used: u8) {
        self.hist.record(used as usize);
        self.seen_in_window += 1;
        if self.seen_in_window >= self.interval {
            if let Some(median) = self.hist.median_bin() {
                // ldis: allow(T1, "median_bin indexes the histogram's words_per_line + 1 <= 17 bins")
                self.threshold = median as u8;
            }
            self.hist.clear();
            self.seen_in_window = 0;
            self.windows_completed += 1;
        }
    }

    /// The current distillation threshold: lines with more used words than
    /// this are not installed in the WOC.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// How many complete windows have been folded into the threshold.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// The line's word count (the largest legal threshold).
    pub fn words_per_line(&self) -> u8 {
        // ldis: allow(T1, "the histogram is built with words_per_line + 1 <= 17 bins")
        (self.hist.len() - 1) as u8
    }

    /// Modeled bits in the counter bank: one 16-bit counter per possible
    /// used-word count — the fault injector's address space here.
    pub fn counter_bits(&self) -> u64 {
        self.hist.len() as u64 * 16
    }

    /// Flips one modeled counter bit, addressed in `0..counter_bits()`
    /// (16 consecutive bits per counter). The corruption propagates into
    /// the threshold when the current window completes.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_counter_bit(&mut self, bit: u64) {
        assert!(bit < self.counter_bits(), "counter bit out of range");
        let bin = (bit / 16) as usize;
        let k = (bit % 16) as u32;
        let current = self.hist.count(bin);
        self.hist.set_count(bin, current ^ (1 << k));
    }

    /// Discards the current window and restores the permissive threshold —
    /// the recovery after a detected counter corruption. The next full
    /// window recomputes an honest median.
    pub fn reset_window(&mut self) {
        self.hist.clear();
        self.seen_in_window = 0;
        self.threshold = self.words_per_line();
    }

    /// Checks that the threshold is within `1..=words_per_line`. Observed
    /// lines always use at least one word (the demand word), so a
    /// threshold of 0 can only come from corrupted counters.
    pub fn check_invariants(&self) -> Result<(), LdisError> {
        let wpl = self.words_per_line();
        if self.threshold == 0 || self.threshold > wpl {
            Err(LdisError::MedianOutOfRange {
                threshold: self.threshold,
                words_per_line: wpl,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_permissive() {
        let mt = MedianTracker::new(8, 4096);
        assert_eq!(mt.threshold(), 8);
        assert_eq!(mt.windows_completed(), 0);
    }

    #[test]
    fn bimodal_distribution_latches_low_median() {
        // The paper's swim example: ~half the evictions use 1 word, half
        // use all 8. The cumulative rule reaches half the eviction-sum at
        // bin 1, so the threshold becomes 1 and the 8-word lines are
        // filtered out.
        let mut mt = MedianTracker::new(8, 100);
        for i in 0..100 {
            mt.observe(if i % 2 == 0 { 1 } else { 8 });
        }
        assert_eq!(mt.windows_completed(), 1);
        assert_eq!(mt.threshold(), 1);
    }

    #[test]
    fn window_reset_adapts_to_phases() {
        let mut mt = MedianTracker::new(8, 10);
        for _ in 0..10 {
            mt.observe(2);
        }
        assert_eq!(mt.threshold(), 2);
        for _ in 0..10 {
            mt.observe(7);
        }
        assert_eq!(mt.threshold(), 7);
        assert_eq!(mt.windows_completed(), 2);
    }

    #[test]
    fn threshold_unchanged_mid_window() {
        let mut mt = MedianTracker::new(8, 100);
        for _ in 0..99 {
            mt.observe(1);
        }
        assert_eq!(mt.threshold(), 8, "no update until the window completes");
        mt.observe(1);
        assert_eq!(mt.threshold(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval() {
        let _ = MedianTracker::new(8, 0);
    }

    #[test]
    fn counter_corruption_shifts_then_recovers() {
        let mut mt = MedianTracker::new(8, 4);
        assert_eq!(mt.counter_bits(), 9 * 16);
        mt.check_invariants().expect("fresh tracker is consistent");
        // A high-bit flip in the bin-1 counter swamps the window: the
        // median latches at 1 even though the real evictions used 8 words.
        mt.flip_counter_bit(16 + 15);
        for _ in 0..4 {
            mt.observe(8);
        }
        assert_eq!(mt.threshold(), 1, "corrupted counter skews the median");
        mt.reset_window();
        assert_eq!(
            mt.threshold(),
            8,
            "recovery restores the permissive threshold"
        );
        for _ in 0..4 {
            mt.observe(8);
        }
        assert_eq!(mt.threshold(), 8, "next window recomputes honestly");
    }

    #[test]
    fn bin_zero_corruption_is_caught_by_the_checker() {
        let mut mt = MedianTracker::new(8, 2);
        // Real lines never use 0 words; only a flipped bin-0 counter can
        // drive the median there.
        mt.flip_counter_bit(15);
        mt.observe(3);
        mt.observe(3);
        assert_eq!(mt.threshold(), 0);
        assert!(matches!(
            mt.check_invariants(),
            Err(LdisError::MedianOutOfRange {
                threshold: 0,
                words_per_line: 8
            })
        ));
        mt.reset_window();
        mt.check_invariants().expect("reset restores the invariant");
    }

    #[test]
    fn double_flip_restores_counters() {
        let mut mt = MedianTracker::new(8, 100);
        mt.observe(2);
        mt.flip_counter_bit(3);
        mt.flip_counter_bit(3);
        let mut same = MedianTracker::new(8, 100);
        same.observe(2);
        assert_eq!(mt.threshold(), same.threshold());
    }
}
