//! Typed invariant-violation taxonomy for the distill cache.
//!
//! The WOC's structural rules (Section 5.1–5.3), the reverter's PSEL
//! bounds (Section 5.5) and the median tracker's threshold range
//! (Section 5.4) are all *checkable* properties of modeled state. The
//! online self-checker evaluates them at a configurable cadence and
//! reports violations as [`LdisError`] values, which the graceful-
//! degradation policy turns into scrub-and-revert actions instead of
//! panics.

use std::fmt;

/// A violated invariant of the distill cache's modeled state.
///
/// Every variant pinpoints the structure and location so degradation
/// events are actionable and fault-campaign reports can aggregate by
/// cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LdisError {
    /// A valid WOC entry that is not the head of any line (every stored
    /// line must start with a head-bit entry).
    WocOrphanEntry {
        /// Set containing the offending entry.
        set: usize,
        /// Way containing the offending entry.
        way: usize,
        /// Slot of the offending entry within the way.
        slot: usize,
    },
    /// Words of one stored WOC line disagree on their tag.
    WocTagMismatch {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the mismatching word sits.
        slot: usize,
    },
    /// A stored WOC line violates the aligned power-of-two placement rule.
    WocMisaligned {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the line starts.
        start: usize,
        /// Number of words the line occupies.
        len: usize,
    },
    /// A stored WOC line's word ids are not strictly increasing.
    WocWordOrder {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the line starts.
        start: usize,
    },
    /// The reverter's PSEL counter escaped its `0..=psel_max` range.
    PselOutOfBounds {
        /// The observed PSEL value.
        psel: u16,
        /// The configured saturating maximum.
        max: u16,
    },
    /// The median tracker's threshold escaped `1..=words_per_line`.
    MedianOutOfRange {
        /// The observed threshold.
        threshold: u8,
        /// The line's word count (the legal maximum).
        words_per_line: u8,
    },
    /// Distill-cache bookkeeping broke: the four outcome counters no
    /// longer partition the access count.
    StatsMismatch {
        /// Sum of the four outcome counters.
        outcomes: u64,
        /// Total accesses recorded.
        accesses: u64,
    },
}

impl fmt::Display for LdisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LdisError::WocOrphanEntry { set, way, slot } => {
                write!(
                    f,
                    "woc set {set} way {way} slot {slot}: valid entry without a head"
                )
            }
            LdisError::WocTagMismatch { set, way, slot } => {
                write!(
                    f,
                    "woc set {set} way {way} slot {slot}: tag mismatch within line"
                )
            }
            LdisError::WocMisaligned {
                set,
                way,
                start,
                len,
            } => write!(
                f,
                "woc set {set} way {way}: line of {len} words at slot {start} is misaligned"
            ),
            LdisError::WocWordOrder { set, way, start } => write!(
                f,
                "woc set {set} way {way}: word ids not increasing in line at slot {start}"
            ),
            LdisError::PselOutOfBounds { psel, max } => {
                write!(f, "reverter psel {psel} exceeds maximum {max}")
            }
            LdisError::MedianOutOfRange {
                threshold,
                words_per_line,
            } => write!(
                f,
                "median threshold {threshold} outside 1..={words_per_line}"
            ),
            LdisError::StatsMismatch { outcomes, accesses } => write!(
                f,
                "outcome counters sum to {outcomes} but {accesses} accesses were recorded"
            ),
        }
    }
}

impl std::error::Error for LdisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pinpoints_location() {
        let e = LdisError::WocTagMismatch {
            set: 3,
            way: 1,
            slot: 6,
        };
        let text = e.to_string();
        assert!(text.contains("set 3"));
        assert!(text.contains("way 1"));
        assert!(text.contains("slot 6"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(LdisError::PselOutOfBounds {
            psel: 300,
            max: 255,
        });
        assert!(e.to_string().contains("300"));
    }
}
