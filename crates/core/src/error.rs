//! Typed invariant-violation taxonomy for the distill cache.
//!
//! The WOC's structural rules (Section 5.1–5.3), the reverter's PSEL
//! bounds (Section 5.5) and the median tracker's threshold range
//! (Section 5.4) are all *checkable* properties of modeled state. The
//! online self-checker evaluates them at a configurable cadence and
//! reports violations as [`LdisError`] values, which the graceful-
//! degradation policy turns into scrub-and-revert actions instead of
//! panics.

use std::fmt;

/// A violated invariant of the distill cache's modeled state.
///
/// Every variant pinpoints the structure and location so degradation
/// events are actionable and fault-campaign reports can aggregate by
/// cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LdisError {
    /// A valid WOC entry that is not the head of any line (every stored
    /// line must start with a head-bit entry).
    WocOrphanEntry {
        /// Set containing the offending entry.
        set: usize,
        /// Way containing the offending entry.
        way: usize,
        /// Slot of the offending entry within the way.
        slot: usize,
    },
    /// Words of one stored WOC line disagree on their tag.
    WocTagMismatch {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the mismatching word sits.
        slot: usize,
    },
    /// A stored WOC line violates the aligned power-of-two placement rule.
    WocMisaligned {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the line starts.
        start: usize,
        /// Number of words the line occupies.
        len: usize,
    },
    /// A stored WOC line's word ids are not strictly increasing.
    WocWordOrder {
        /// Set containing the offending line.
        set: usize,
        /// Way containing the offending line.
        way: usize,
        /// Slot where the line starts.
        start: usize,
    },
    /// The reverter's PSEL counter escaped its `0..=psel_max` range.
    PselOutOfBounds {
        /// The observed PSEL value.
        psel: u16,
        /// The configured saturating maximum.
        max: u16,
    },
    /// The median tracker's threshold escaped `1..=words_per_line`.
    MedianOutOfRange {
        /// The observed threshold.
        threshold: u8,
        /// The line's word count (the legal maximum).
        words_per_line: u8,
    },
    /// Distill-cache bookkeeping broke: the four outcome counters no
    /// longer partition the access count.
    StatsMismatch {
        /// Sum of the four outcome counters.
        outcomes: u64,
        /// Total accesses recorded.
        accesses: u64,
    },
}

impl fmt::Display for LdisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LdisError::WocOrphanEntry { set, way, slot } => {
                write!(
                    f,
                    "woc set {set} way {way} slot {slot}: valid entry without a head"
                )
            }
            LdisError::WocTagMismatch { set, way, slot } => {
                write!(
                    f,
                    "woc set {set} way {way} slot {slot}: tag mismatch within line"
                )
            }
            LdisError::WocMisaligned {
                set,
                way,
                start,
                len,
            } => write!(
                f,
                "woc set {set} way {way}: line of {len} words at slot {start} is misaligned"
            ),
            LdisError::WocWordOrder { set, way, start } => write!(
                f,
                "woc set {set} way {way}: word ids not increasing in line at slot {start}"
            ),
            LdisError::PselOutOfBounds { psel, max } => {
                write!(f, "reverter psel {psel} exceeds maximum {max}")
            }
            LdisError::MedianOutOfRange {
                threshold,
                words_per_line,
            } => write!(
                f,
                "median threshold {threshold} outside 1..={words_per_line}"
            ),
            LdisError::StatsMismatch { outcomes, accesses } => write!(
                f,
                "outcome counters sum to {outcomes} but {accesses} accesses were recorded"
            ),
        }
    }
}

impl std::error::Error for LdisError {}

/// Why one sweep cell of an experiment matrix failed to produce a result.
///
/// The crash-safe sweep executor (`ldis-experiments::exec`) isolates every
/// cell behind `catch_unwind` and a watchdog; instead of poisoning the
/// merge or aborting the matrix, a failing cell is *quarantined* with one
/// of these typed causes. The variants mirror the [`LdisError`] idiom —
/// each pinpoints enough context (attempt counts, budgets, the panic
/// message) for the quarantine report to print an actionable repro.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellFailure {
    /// Every attempt (the initial run plus all retries) panicked.
    Panicked {
        /// Number of attempts made, including the first.
        attempts: u32,
        /// The last panic's payload, if it carried a string.
        message: String,
    },
    /// The cell exceeded its wall-clock budget and was abandoned by the
    /// watchdog. Hung cells are never retried: the stuck worker cannot be
    /// reclaimed, so a retry would only leak another one.
    Hung {
        /// The configured per-cell budget, in milliseconds.
        budget_ms: u64,
    },
    /// Two successful replays of the cell disagreed bit-for-bit. The cell
    /// draws from state outside its derived seed, so no single result can
    /// be trusted.
    Nondeterministic {
        /// Number of attempts made when the divergence was established.
        attempts: u32,
        /// What diverged (or the panic message of a failed confirmation).
        detail: String,
    },
    /// The cell's worker disappeared without reporting a result — the
    /// executor's channel closed early. Indicates a harness defect, never
    /// a simulation one.
    ResultLost,
}

impl CellFailure {
    /// A stable machine-readable tag for quarantine reports
    /// (`"panicked"`, `"hung"`, `"nondeterministic"`, `"result-lost"`).
    pub fn kind(&self) -> &'static str {
        match self {
            CellFailure::Panicked { .. } => "panicked",
            CellFailure::Hung { .. } => "hung",
            CellFailure::Nondeterministic { .. } => "nondeterministic",
            CellFailure::ResultLost => "result-lost",
        }
    }

    /// Number of attempts recorded in the failure (0 where attempts are
    /// not meaningful, e.g. a hang or a lost result).
    pub fn attempts(&self) -> u32 {
        match *self {
            CellFailure::Panicked { attempts, .. }
            | CellFailure::Nondeterministic { attempts, .. } => attempts,
            CellFailure::Hung { .. } | CellFailure::ResultLost => 0,
        }
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panicked { attempts, message } => {
                write!(f, "panicked on all {attempts} attempts: {message}")
            }
            CellFailure::Hung { budget_ms } => {
                write!(f, "exceeded the {budget_ms} ms watchdog budget")
            }
            CellFailure::Nondeterministic { attempts, detail } => {
                write!(f, "nondeterministic after {attempts} attempts: {detail}")
            }
            CellFailure::ResultLost => write!(f, "worker vanished without a result"),
        }
    }
}

impl std::error::Error for CellFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_pinpoints_location() {
        let e = LdisError::WocTagMismatch {
            set: 3,
            way: 1,
            slot: 6,
        };
        let text = e.to_string();
        assert!(text.contains("set 3"));
        assert!(text.contains("way 1"));
        assert!(text.contains("slot 6"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(LdisError::PselOutOfBounds {
            psel: 300,
            max: 255,
        });
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn cell_failure_kinds_are_stable_and_displayed() {
        let cases: Vec<(CellFailure, &str, u32)> = vec![
            (
                CellFailure::Panicked {
                    attempts: 3,
                    message: "index out of bounds".into(),
                },
                "panicked",
                3,
            ),
            (CellFailure::Hung { budget_ms: 5000 }, "hung", 0),
            (
                CellFailure::Nondeterministic {
                    attempts: 2,
                    detail: "replays differ".into(),
                },
                "nondeterministic",
                2,
            ),
            (CellFailure::ResultLost, "result-lost", 0),
        ];
        for (failure, kind, attempts) in cases {
            assert_eq!(failure.kind(), kind);
            assert_eq!(failure.attempts(), attempts);
            assert!(!failure.to_string().is_empty());
        }
        let hung = CellFailure::Hung { budget_ms: 5000 };
        assert!(hung.to_string().contains("5000 ms"));
        let e: Box<dyn std::error::Error> = Box::new(hung);
        assert!(e.to_string().contains("watchdog"));
    }
}
