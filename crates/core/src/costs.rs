//! Latency and energy costs of the distill cache (Sections 7.5.2–7.5.3).
//!
//! The paper sizes these with Cacti 3.2; the tool is not available here,
//! so the per-access constants it reports are taken as given and the
//! *aggregate* costs are computed from simulated activity — which is the
//! part the cache organization actually changes.

use ldis_cache::L2Stats;

/// Cacti-derived per-access constants (65 nm, Section 7.5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Energy per access of the LOC tag store, in nanojoules (3.06 nJ).
    pub loc_tag_nj: f64,
    /// Extra energy per access of the WOC tag store, in nanojoules
    /// (3.76 nJ) — paid on every distill-cache access because both tag
    /// stores are probed in parallel (Section 5.2).
    pub woc_tag_nj: f64,
    /// Energy per data-store access, identical for baseline and distill
    /// (the data arrays are unchanged); a representative 1 MB figure.
    pub data_nj: f64,
    /// Energy per DRAM line fetch, in nanojoules. Dominates when misses
    /// do; a representative DDR-era figure used to show the trade-off.
    pub dram_nj: f64,
    /// The extra tag delay Cacti reports for the distill cache (0.14 ns →
    /// one extra cycle in the IPC experiments).
    pub extra_tag_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            loc_tag_nj: 3.06,
            woc_tag_nj: 3.76,
            data_nj: 10.0,
            dram_nj: 60.0,
            extra_tag_ns: 0.14,
        }
    }
}

/// Aggregate energy of a run, in millijoules, split by component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyBreakdown {
    /// Tag-store energy (LOC, plus WOC for the distill cache).
    pub tags_mj: f64,
    /// Data-store energy (hits read a line).
    pub data_mj: f64,
    /// DRAM energy for demand fetches and writebacks.
    pub dram_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_mj(&self) -> f64 {
        self.tags_mj + self.data_mj + self.dram_mj
    }
}

impl CostModel {
    /// Energy of a run over a *traditional* cache: one tag probe plus one
    /// data access per hit, DRAM per miss and writeback.
    pub fn baseline_energy(&self, stats: &L2Stats) -> EnergyBreakdown {
        let nj_to_mj = 1e-6;
        EnergyBreakdown {
            tags_mj: stats.accesses as f64 * self.loc_tag_nj * nj_to_mj,
            data_mj: stats.hits() as f64 * self.data_nj * nj_to_mj,
            dram_mj: (stats.demand_misses() + stats.writebacks) as f64 * self.dram_nj * nj_to_mj,
        }
    }

    /// Energy of a run over a *distill* cache: both tag stores are probed
    /// on every access (the paper's 3.06 + 3.76 nJ), data and DRAM as for
    /// the baseline. The organization wins energy when the extra tag
    /// energy is outweighed by removed DRAM fetches.
    pub fn distill_energy(&self, stats: &L2Stats) -> EnergyBreakdown {
        let nj_to_mj = 1e-6;
        EnergyBreakdown {
            tags_mj: stats.accesses as f64 * (self.loc_tag_nj + self.woc_tag_nj) * nj_to_mj,
            data_mj: stats.hits() as f64 * self.data_nj * nj_to_mj,
            dram_mj: (stats.demand_misses() + stats.writebacks) as f64 * self.dram_nj * nj_to_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(accesses: u64, hits: u64, writebacks: u64) -> L2Stats {
        let mut s = L2Stats::new(8, 8);
        s.accesses = accesses;
        s.loc_hits = hits;
        s.line_misses = accesses - hits;
        s.writebacks = writebacks;
        s
    }

    #[test]
    fn paper_constants_are_default() {
        let m = CostModel::default();
        assert_eq!(m.loc_tag_nj, 3.06);
        assert_eq!(m.woc_tag_nj, 3.76);
        assert_eq!(m.extra_tag_ns, 0.14);
    }

    #[test]
    fn distill_pays_both_tag_stores() {
        let m = CostModel::default();
        let s = stats(1000, 500, 0);
        let base = m.baseline_energy(&s);
        let dist = m.distill_energy(&s);
        assert!(dist.tags_mj > base.tags_mj);
        let ratio = dist.tags_mj / base.tags_mj;
        assert!(((3.06 + 3.76) / 3.06 - ratio).abs() < 1e-9);
        assert_eq!(base.data_mj, dist.data_mj);
    }

    #[test]
    fn fewer_misses_can_pay_for_the_extra_tags() {
        let m = CostModel::default();
        // Baseline: 1000 accesses, 400 hits → 600 DRAM fetches.
        let base = m.baseline_energy(&stats(1000, 400, 0));
        // Distill: same accesses, 800 hits → 200 fetches.
        let dist = m.distill_energy(&stats(1000, 800, 0));
        assert!(
            dist.total_mj() < base.total_mj(),
            "distill {} vs baseline {}",
            dist.total_mj(),
            base.total_mj()
        );
    }

    #[test]
    fn totals_add_up() {
        let m = CostModel::default();
        let e = m.baseline_energy(&stats(10, 5, 2));
        assert!((e.total_mj() - (e.tags_mj + e.data_mj + e.dram_mj)).abs() < 1e-15);
    }
}
