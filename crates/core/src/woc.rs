//! The Word-Organized Cache (Section 5.1–5.3).
//!
//! The WOC's tag store holds one tag entry per *word* of its data ways.
//! The used words of a line evicted from the LOC are stored in consecutive,
//! aligned positions within a single way; only power-of-two word counts
//! (1, 2, 4 or 8) are allowed. A *head bit* marks the first word of each
//! stored line so whole lines can be evicted together. Replacement picks
//! uniformly at random among aligned candidates that are invalid or start
//! a line (Section 5.3's random replacement).
//!
//! Storage is struct-of-arrays: the valid/dirty/head bits of one way are
//! packed into a `u64` each (bit *i* = slot *i*), so the run-finder asks
//! "where does a `slots`-wide aligned window fit?" with a handful of
//! bitwise ops ([`ldis_mem::bitops`]) instead of scanning entries, and a
//! line lookup walks only the valid slots via `trailing_zeros`.

use crate::{LdisError, WocReplacement};
use ldis_mem::bitops::{eligible_aligned_slots, free_aligned_windows, select_nth_one};
use ldis_mem::{Footprint, SimRng, WordIndex};
use std::fmt;

/// Hardware bits per WOC tag entry (Table 3): valid + dirty + head +
/// 23-bit tag + 3-bit word id. This is the bit surface the fault model
/// exposes per entry.
pub const WOC_ENTRY_BITS: u64 = 29;

/// Which field of a WOC tag entry a fault landed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WocField {
    /// The valid bit.
    Valid,
    /// The dirty bit.
    Dirty,
    /// The head bit (whole-line eviction bookkeeping).
    Head,
    /// Bit `n` of the 23-bit tag.
    Tag(u8),
    /// Bit `n` of the 3-bit word id.
    WordId(u8),
}

impl fmt::Display for WocField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WocField::Valid => f.write_str("valid bit"),
            WocField::Dirty => f.write_str("dirty bit"),
            WocField::Head => f.write_str("head bit"),
            WocField::Tag(b) => write!(f, "tag bit {b}"),
            WocField::WordId(b) => write!(f, "word-id bit {b}"),
        }
    }
}

/// A bit flip applied to the WOC tag store, located for recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WocFault {
    /// Set of the affected entry.
    pub set: usize,
    /// Way of the affected entry.
    pub way: usize,
    /// Slot of the affected entry within the way.
    pub slot: usize,
    /// The field the flip landed in.
    pub field: WocField,
    /// Whether the flip can be observed: the entry was valid, or the flip
    /// hit the valid bit itself (resurrecting a stale entry). Flips in
    /// other fields of invalid entries are dead state.
    pub live: bool,
}

impl fmt::Display for WocFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "woc {} flip: set {} way {} slot {}{}",
            self.field,
            self.set,
            self.way,
            self.slot,
            if self.live { "" } else { " (dead entry)" }
        )
    }
}

/// A line evicted from the WOC: which words it still held and whether any
/// of them were dirty (those are written back to memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WocEviction {
    /// The tag of the evicted line (the caller knows the set).
    pub tag: u64,
    /// The words the WOC held for the line.
    pub words: Footprint,
    /// Whether the stored words were dirty.
    pub dirty: bool,
}

/// The result of a WOC line lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WocLineHit {
    /// The words of the line present in the WOC (the valid bits sent to the
    /// sectored L1D, Section 4.2).
    pub valid_words: Footprint,
}

/// The word-organized half of a distill cache.
///
/// Indexed externally by set; each set holds `ways * words_per_line`
/// word-granularity tag entries. The per-way valid/dirty/head bits are
/// packed one `u64` per `(set, way)`; the tags and word ids are flat
/// per-slot arrays indexed `(set * ways + way) * words_per_line + slot`.
#[derive(Clone, Debug)]
pub struct Woc {
    ways: usize,
    words_per_line: usize,
    num_sets: usize,
    /// Per-way valid bits; `valid[set * ways + way]` bit *i* = slot *i*.
    valid: Vec<u64>,
    /// Per-way dirty bits, same indexing.
    dirty: Vec<u64>,
    /// Per-way head bits, same indexing.
    head: Vec<u64>,
    /// Per-slot tags.
    tags: Vec<u64>,
    /// Per-slot word ids.
    word_ids: Vec<u8>,
    rng: SimRng,
    replacement: WocReplacement,
    round_robin: u64,
}

impl Woc {
    /// Creates an empty WOC with `num_sets` sets of `ways` data ways, each
    /// way holding `words_per_line` words. `seed` drives the random
    /// replacement engine.
    pub fn new(num_sets: u64, ways: u32, words_per_line: u8, seed: u64) -> Self {
        assert!(ways >= 1, "WOC needs at least one way");
        let num_sets = num_sets as usize;
        let ways = ways as usize;
        let wpl = words_per_line as usize;
        let num_ways = num_sets * ways;
        Woc {
            ways,
            words_per_line: wpl,
            num_sets,
            valid: vec![0; num_ways],
            dirty: vec![0; num_ways],
            head: vec![0; num_ways],
            tags: vec![0; num_ways * wpl],
            word_ids: vec![0; num_ways * wpl],
            rng: SimRng::new(seed),
            replacement: WocReplacement::Random,
            round_robin: 0,
        }
    }

    /// Sets the replacement candidate selection policy (default: random).
    #[must_use]
    pub fn with_replacement(mut self, replacement: WocReplacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// The mask index of `(set, way)` into the per-way bit vectors.
    #[inline]
    fn way_index(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.num_sets && way < self.ways);
        // ldis: allow(R1, "the debug_assert pins set/way below the constructor dimensions and every caller routes the returned index through checked get/get_mut accessors, so an overflowed index is inert")
        set.wrapping_mul(self.ways).wrapping_add(way)
    }

    /// Looks up `tag` in `set`. Returns the words present if any word of
    /// the line is stored (a *line hit*, Section 5.2).
    pub fn lookup(&self, set: usize, tag: u64) -> Option<WocLineHit> {
        let wpl = self.words_per_line;
        let mut words = Footprint::empty();
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let mut mask: u64 = self.valid.get(wi).copied().unwrap_or(0);
            let slot_base = wi.wrapping_mul(wpl);
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let idx = slot_base.wrapping_add(slot);
                if self.tags.get(idx).copied() == Some(tag) {
                    let id = self.word_ids.get(idx).copied().unwrap_or(0);
                    words.touch(WordIndex::new(id));
                }
                mask &= mask - 1;
            }
        }
        if words.is_empty() {
            None
        } else {
            Some(WocLineHit { valid_words: words })
        }
    }

    /// Whether the specific `word` of line `tag` is present in `set`.
    pub fn contains_word(&self, set: usize, tag: u64, word: WordIndex) -> bool {
        self.lookup(set, tag)
            .is_some_and(|hit| hit.valid_words.is_used(word))
    }

    /// Marks every stored word of line `tag` dirty (a dirty L1D writeback
    /// landed on a WOC-resident line). Returns whether the line was present.
    pub fn mark_dirty(&mut self, set: usize, tag: u64) -> bool {
        let wpl = self.words_per_line;
        let mut found = false;
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let mut mask: u64 = self.valid.get(wi).copied().unwrap_or(0);
            let slot_base = wi.wrapping_mul(wpl);
            let mut hits = 0u64;
            while mask != 0 {
                let slot = mask.trailing_zeros();
                if self
                    .tags
                    .get(slot_base.wrapping_add(slot as usize))
                    .copied()
                    == Some(tag)
                {
                    hits |= 1u64 << slot;
                }
                mask &= mask - 1;
            }
            if hits != 0 {
                if let Some(d) = self.dirty.get_mut(wi) {
                    *d |= hits;
                }
                found = true;
            }
        }
        found
    }

    /// Invalidates every word of line `tag` in `set` (the hole-miss path,
    /// Section 5.2: "all words for the requested line in WOC are
    /// invalidated"). Returns the eviction record if the line was present.
    pub fn invalidate_line(&mut self, set: usize, tag: u64) -> Option<WocEviction> {
        let wpl = self.words_per_line;
        let mut words = Footprint::empty();
        let mut dirty = false;
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let mut mask: u64 = self.valid.get(wi).copied().unwrap_or(0);
            let slot_base = wi.wrapping_mul(wpl);
            let mut hits = 0u64;
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let idx = slot_base.wrapping_add(slot);
                if self.tags.get(idx).copied() == Some(tag) {
                    hits |= 1u64 << slot;
                    let id = self.word_ids.get(idx).copied().unwrap_or(0);
                    words.touch(WordIndex::new(id));
                    // Clear the slot completely so a later valid-bit flip
                    // resurrects a zeroed entry, not a stale tag.
                    if let Some(t) = self.tags.get_mut(idx) {
                        *t = 0;
                    }
                    if let Some(w) = self.word_ids.get_mut(idx) {
                        *w = 0;
                    }
                }
                mask &= mask - 1;
            }
            if hits != 0 {
                dirty |= self.dirty.get(wi).is_some_and(|d| d & hits != 0);
                if let Some(v) = self.valid.get_mut(wi) {
                    *v &= !hits;
                }
                if let Some(d) = self.dirty.get_mut(wi) {
                    *d &= !hits;
                }
                if let Some(h) = self.head.get_mut(wi) {
                    *h &= !hits;
                }
            }
        }
        if words.is_empty() {
            None
        } else {
            Some(WocEviction { tag, words, dirty })
        }
    }

    /// Installs the used words of line `tag` (its `footprint`) into `set`,
    /// evicting overlapping lines as needed. Returns the lines displaced.
    ///
    /// Placement follows Section 5.1: the used-word count is rounded up to
    /// a power of two, the words occupy consecutive entries starting at an
    /// offset aligned to that size within a single way, and a head bit
    /// marks the first word. Fully-invalid candidates are preferred; among
    /// occupied candidates the replacement engine picks uniformly at random
    /// from the eligible (invalid-or-head) aligned offsets (Section 5.3).
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is empty or needs more slots than a way holds.
    pub fn install(
        &mut self,
        set: usize,
        tag: u64,
        footprint: Footprint,
        dirty: bool,
    ) -> Vec<WocEviction> {
        let mut evicted = Vec::new();
        self.install_into(set, tag, footprint, dirty, &mut evicted);
        evicted
    }

    /// [`install`](Woc::install) with a caller-owned eviction buffer:
    /// `out` is cleared and filled with the displaced lines, so the hot
    /// path reuses one allocation across installs.
    pub fn install_into(
        &mut self,
        set: usize,
        tag: u64,
        footprint: Footprint,
        dirty: bool,
        out: &mut Vec<WocEviction>,
    ) {
        out.clear();
        let slots = footprint.woc_slots() as usize;
        assert!(slots >= 1, "cannot install an empty footprint");
        assert!(
            slots <= self.words_per_line,
            "line needs {slots} slots but a way holds {}",
            self.words_per_line
        );
        // Fault-free operation never installs a line that is already
        // present (the hole-miss path invalidates first), but corrupted
        // metadata can resurrect a stale copy; drop it rather than store
        // the same tag twice.
        if self.lookup(set, tag).is_some() {
            self.invalidate_line(set, tag);
        }

        let (way, offset) = self.choose_position(set, slots);
        self.evict_range(set, way, offset, slots, out);

        let wi = self.way_index(set, way);
        let slot_base = wi.wrapping_mul(self.words_per_line);
        let mut set_bits = 0u64;
        let mut head_bit = 0u64;
        let mut bits = footprint.bits();
        let mut i = 0usize;
        // Walk the used words in ascending order (the stored order the
        // invariant checker demands) straight off the bit vector.
        while bits != 0 {
            let word = bits.trailing_zeros() as u8;
            let slot = offset.wrapping_add(i);
            let idx = slot_base.wrapping_add(slot);
            if let Some(t) = self.tags.get_mut(idx) {
                *t = tag;
            }
            if let Some(w) = self.word_ids.get_mut(idx) {
                *w = word;
            }
            if slot < 64 {
                set_bits |= 1u64 << slot;
                if i == 0 {
                    head_bit = 1u64 << slot;
                }
            }
            bits &= bits - 1;
            i = i.wrapping_add(1);
        }
        if let Some(v) = self.valid.get_mut(wi) {
            *v |= set_bits;
        }
        if let Some(d) = self.dirty.get_mut(wi) {
            if dirty {
                *d |= set_bits;
            } else {
                *d &= !set_bits;
            }
        }
        if let Some(h) = self.head.get_mut(wi) {
            *h = (*h & !set_bits) | head_bit;
        }
    }

    /// Picks the position for a `slots`-word line: a random fully-invalid
    /// aligned candidate if one exists, otherwise a random eligible
    /// (invalid-or-head) aligned candidate.
    ///
    /// Candidates are counted and selected with the `bitops` run-finder
    /// masks; the candidate numbering is (way ascending, offset ascending),
    /// exactly the order the old entry-scanning loop pushed them, so the
    /// replacement engine sees identical candidate counts and indices and
    /// the RNG stream is bit-identical to the pre-overhaul code.
    fn choose_position(&mut self, set: usize, slots: usize) -> (usize, usize) {
        let wpl = self.words_per_line as u32;
        // ldis: allow(T1, "the field copies LineGeometry::words_per_line(), asserted 2..=16 at construction; struct fields sit outside the interval domain")
        let slots32 = slots as u32;
        let mut free_total = 0u32;
        let mut eligible_total = 0u32;
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let v = self.valid.get(wi).copied().unwrap_or(u64::MAX);
            let h = self.head.get(wi).copied().unwrap_or(0);
            free_total += free_aligned_windows(v, wpl, slots32).count_ones();
            eligible_total += eligible_aligned_slots(v, h, wpl, slots32).count_ones();
        }
        if free_total > 0 {
            let mut rank = self.pick(free_total as usize) as u32;
            for way in 0..self.ways {
                let wi = self.way_index(set, way);
                let v = self.valid.get(wi).copied().unwrap_or(u64::MAX);
                let mask = free_aligned_windows(v, wpl, slots32);
                let count = mask.count_ones();
                if rank < count {
                    return (way, select_nth_one(mask, rank) as usize);
                }
                rank -= count;
            }
        }
        if eligible_total == 0 {
            // Alignment guarantees a candidate in fault-free operation
            // (offset 0 of a way is invalid or a head); corrupted head
            // bits can void that. Fall back to offset 0 of some way —
            // `evict_range` clears headless debris tolerantly.
            let way = self.pick(self.ways);
            return (way, 0);
        }
        let mut rank = self.pick(eligible_total as usize) as u32;
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let v = self.valid.get(wi).copied().unwrap_or(u64::MAX);
            let h = self.head.get(wi).copied().unwrap_or(0);
            let mask = eligible_aligned_slots(v, h, wpl, slots32);
            let count = mask.count_ones();
            if rank < count {
                return (way, select_nth_one(mask, rank) as usize);
            }
            rank -= count;
        }
        (0, 0)
    }

    fn pick(&mut self, len: usize) -> usize {
        match self.replacement {
            WocReplacement::Random => self.rng.index(len),
            WocReplacement::RoundRobin => {
                self.round_robin = self.round_robin.wrapping_add(1);
                (self.round_robin % len as u64) as usize
            }
        }
    }

    /// Evicts every line whose head lies in `offset..offset + slots` of
    /// `way` (whole-line eviction via the head bit, Section 5.3), clearing
    /// all of their entries — including any that extend beyond the range.
    /// Records the displaced lines by appending to `evictions` (the caller
    /// clears the buffer; appending keeps `last_mut` coalescing local).
    fn evict_range(
        &mut self,
        set: usize,
        way: usize,
        offset: usize,
        slots: usize,
        evictions: &mut Vec<WocEviction>,
    ) {
        let wpl = self.words_per_line;
        let wi = self.way_index(set, way);
        let slot_base = wi.wrapping_mul(wpl);
        let mut vmask = self.valid.get(wi).copied().unwrap_or(0);
        let mut dmask = self.dirty.get(wi).copied().unwrap_or(0);
        let mut hmask = self.head.get(wi).copied().unwrap_or(0);
        let mut i = offset;
        // A head inside the range may own entries beyond it; walk to the
        // end of the last overlapped line.
        while i < wpl.min(64) {
            let bit = 1u64 << i;
            if vmask & bit == 0 {
                if i >= offset + slots {
                    break;
                }
                i += 1;
                continue;
            }
            let is_head = hmask & bit != 0;
            if is_head && i >= offset + slots {
                break; // next line starts after the range: done
            }
            let idx = slot_base.wrapping_add(i);
            let tag = self.tags.get(idx).copied().unwrap_or(0);
            // Fault-free, every line opens with a head and its words share
            // one tag. Corrupted metadata can present a headless entry or
            // a tag that differs mid-line; tolerate both by opening a
            // fresh eviction record so the debris is still cleared and
            // its dirty words still accounted.
            if is_head || evictions.last().is_none_or(|ev| ev.tag != tag) {
                evictions.push(WocEviction {
                    tag,
                    words: Footprint::empty(),
                    dirty: false,
                });
            }
            if let Some(ev) = evictions.last_mut() {
                let id = self.word_ids.get(idx).copied().unwrap_or(0);
                ev.words.touch(WordIndex::new(id));
                ev.dirty |= dmask & bit != 0;
            }
            vmask &= !bit;
            dmask &= !bit;
            hmask &= !bit;
            if let Some(t) = self.tags.get_mut(idx) {
                *t = 0;
            }
            if let Some(w) = self.word_ids.get_mut(idx) {
                *w = 0;
            }
            i += 1;
        }
        if let Some(v) = self.valid.get_mut(wi) {
            *v = vmask;
        }
        if let Some(d) = self.dirty.get_mut(wi) {
            *d = dmask;
        }
        if let Some(h) = self.head.get_mut(wi) {
            *h = hmask;
        }
    }

    /// Number of valid word entries in the whole WOC.
    pub fn occupancy(&self) -> u64 {
        self.valid.iter().map(|m| u64::from(m.count_ones())).sum()
    }

    /// Number of distinct lines stored in `set`.
    pub fn lines_in_set(&self, set: usize) -> usize {
        (0..self.ways)
            .map(|way| {
                let wi = self.way_index(set, way);
                let v = self.valid.get(wi).copied().unwrap_or(0);
                let h = self.head.get(wi).copied().unwrap_or(0);
                (v & h).count_ones() as usize
            })
            .sum()
    }

    /// Checks the structural invariants of one set. Used by tests,
    /// property checks and the online self-checker; the typed error
    /// pinpoints the violation for degradation logging.
    pub fn check_invariants(&self, set: usize) -> Result<(), LdisError> {
        let wpl = self.words_per_line;
        for way in 0..self.ways {
            let wi = self.way_index(set, way);
            let vmask = self.valid.get(wi).copied().unwrap_or(0);
            let hmask = self.head.get(wi).copied().unwrap_or(0);
            let slot_base = wi.wrapping_mul(wpl);
            let mut i = 0usize;
            while i < wpl.min(64) {
                let bit = 1u64 << i;
                if vmask & bit == 0 {
                    i += 1;
                    continue;
                }
                if hmask & bit == 0 {
                    return Err(LdisError::WocOrphanEntry { set, way, slot: i });
                }
                let tag = self.tags.get(slot_base.wrapping_add(i)).copied();
                let start = i;
                i += 1;
                while i < wpl.min(64) {
                    let next = 1u64 << i;
                    if vmask & next == 0 || hmask & next != 0 {
                        break;
                    }
                    if self.tags.get(slot_base.wrapping_add(i)).copied() != tag {
                        return Err(LdisError::WocTagMismatch { set, way, slot: i });
                    }
                    i += 1;
                }
                let len = i - start;
                let slots = len.next_power_of_two();
                if !start.is_multiple_of(slots) {
                    return Err(LdisError::WocMisaligned {
                        set,
                        way,
                        start,
                        len,
                    });
                }
                // Word ids must be strictly increasing (stored in order).
                let run = self
                    .word_ids
                    .get(slot_base.wrapping_add(start)..slot_base.wrapping_add(i))
                    .unwrap_or_default();
                let ids = run.iter();
                if !ids.clone().zip(ids.skip(1)).all(|(a, b)| a < b) {
                    return Err(LdisError::WocWordOrder { set, way, start });
                }
            }
        }
        Ok(())
    }

    /// Total modeled tag-store bits (29 per entry, Table 3) — the fault
    /// injector's address space over this structure.
    pub fn tag_store_bits(&self) -> u64 {
        self.tags.len() as u64 * WOC_ENTRY_BITS
    }

    /// Flips one modeled tag-store bit, addressed in `0..tag_store_bits()`
    /// (29 consecutive bits per entry, entries in (set, way, slot) order).
    /// Flipping the same bit twice restores the original state, which is
    /// how the protection models "correct" or decline to apply a fault.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_tag_bit(&mut self, bit: u64) -> WocFault {
        assert!(bit < self.tag_store_bits(), "tag-store bit out of range");
        let idx = (bit / WOC_ENTRY_BITS) as usize;
        let k = (bit % WOC_ENTRY_BITS) as u32;
        let per_set = self.ways.saturating_mul(self.words_per_line);
        let set = idx / per_set;
        let way = (idx % per_set) / self.words_per_line;
        let slot = idx % self.words_per_line;
        let wi = self.way_index(set, way);
        // ldis: allow(T1, "slot is idx modulo the words_per_line field, which copies LineGeometry's asserted 2..=16 word count")
        let slot_bit = 1u64 << (slot as u32 % 64);
        let was_valid = self.valid.get(wi).is_some_and(|&m| m & slot_bit != 0);
        let field = match k {
            0 => {
                if let Some(m) = self.valid.get_mut(wi) {
                    *m ^= slot_bit;
                }
                WocField::Valid
            }
            1 => {
                if let Some(m) = self.dirty.get_mut(wi) {
                    *m ^= slot_bit;
                }
                WocField::Dirty
            }
            2 => {
                if let Some(m) = self.head.get_mut(wi) {
                    *m ^= slot_bit;
                }
                WocField::Head
            }
            3..=25 => {
                let b = (k - 3) as u8;
                if let Some(t) = self.tags.get_mut(idx) {
                    *t ^= 1 << b;
                }
                WocField::Tag(b)
            }
            _ => {
                // ldis: allow(T1, "the wildcard arm only sees k >= 26 (prior arms cover 0..=25) and k < WOC_ENTRY_BITS; match-arm negation sits outside the domain")
                let b = (k - 26) as u8;
                if let Some(w) = self.word_ids.get_mut(idx) {
                    *w ^= 1 << b;
                }
                WocField::WordId(b)
            }
        };
        WocFault {
            set,
            way,
            slot,
            field,
            live: was_valid || field == WocField::Valid,
        }
    }

    /// Discards every entry of `way` in `set` — the conservative recovery
    /// after a detected-but-uncorrectable fault somewhere in that way's
    /// tag entries (parity localizes no finer than the protected word).
    /// Returns the number of valid entries discarded.
    pub fn clear_way(&mut self, set: usize, way: usize) -> u64 {
        let wpl = self.words_per_line;
        let wi = self.way_index(set, way);
        let cleared = u64::from(self.valid.get(wi).copied().unwrap_or(0).count_ones());
        if let Some(v) = self.valid.get_mut(wi) {
            *v = 0;
        }
        if let Some(d) = self.dirty.get_mut(wi) {
            *d = 0;
        }
        if let Some(h) = self.head.get_mut(wi) {
            *h = 0;
        }
        let slot_base = wi.wrapping_mul(wpl);
        if let Some(tags) = self.tags.get_mut(slot_base..slot_base.wrapping_add(wpl)) {
            tags.fill(0);
        }
        if let Some(ids) = self
            .word_ids
            .get_mut(slot_base..slot_base.wrapping_add(wpl))
        {
            ids.fill(0);
        }
        cleared
    }

    /// Discards every entry of `set` — the recovery when the self-checker
    /// finds a structural violation it cannot localize to one way.
    /// Returns the number of valid entries discarded.
    pub fn clear_set(&mut self, set: usize) -> u64 {
        (0..self.ways).map(|way| self.clear_way(set, way)).sum()
    }
}

impl crate::WordStore for Woc {
    fn lookup(&self, set: usize, tag: u64) -> Option<WocLineHit> {
        Woc::lookup(self, set, tag)
    }

    fn install(
        &mut self,
        set: usize,
        tag: u64,
        _line: ldis_mem::LineAddr,
        words: Footprint,
        dirty: bool,
        evicted: &mut Vec<WocEviction>,
    ) {
        Woc::install_into(self, set, tag, words, dirty, evicted)
    }

    fn invalidate_line(&mut self, set: usize, tag: u64) -> Option<WocEviction> {
        Woc::invalidate_line(self, set, tag)
    }

    fn mark_dirty(&mut self, set: usize, tag: u64) -> bool {
        Woc::mark_dirty(self, set, tag)
    }

    fn occupancy(&self) -> u64 {
        Woc::occupancy(self)
    }

    fn tag_store_bits(&self) -> u64 {
        Woc::tag_store_bits(self)
    }

    fn flip_tag_bit(&mut self, bit: u64) -> Option<WocFault> {
        Some(Woc::flip_tag_bit(self, bit))
    }

    fn clear_way(&mut self, set: usize, way: usize) -> u64 {
        Woc::clear_way(self, set, way)
    }

    fn clear_set(&mut self, set: usize) -> u64 {
        Woc::clear_set(self, set)
    }

    fn check_invariants(&self, set: usize) -> Result<(), LdisError> {
        Woc::check_invariants(self, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn woc() -> Woc {
        Woc::new(4, 2, 8, 42)
    }

    fn fp(bits: u16) -> Footprint {
        Footprint::from_bits(bits)
    }

    #[test]
    fn install_then_lookup() {
        let mut w = woc();
        let evicted = w.install(0, 100, fp(0b1000_0001), false);
        assert!(evicted.is_empty());
        let hit = w.lookup(0, 100).expect("line hit");
        assert_eq!(hit.valid_words, fp(0b1000_0001));
        assert!(w.contains_word(0, 100, WordIndex::new(0)));
        assert!(w.contains_word(0, 100, WordIndex::new(7)));
        assert!(!w.contains_word(0, 100, WordIndex::new(3)));
        assert!(w.lookup(1, 100).is_none(), "other sets unaffected");
        w.check_invariants(0).expect("invariants hold");
    }

    #[test]
    fn three_words_occupy_four_aligned_slots() {
        let mut w = woc();
        w.install(0, 1, fp(0b0011_1000), false); // 3 words → 4 slots
        w.check_invariants(0).expect("invariants hold");
        assert_eq!(w.occupancy(), 3);
        // Fill the rest: capacity is 2 ways * 8 slots = 16; the 3-word line
        // reserves an aligned 4-slot region, so 4 more 4-slot lines displace
        // something.
        for t in 2..=4u64 {
            w.install(0, t, fp(0b0000_1111), false);
            w.check_invariants(0).expect("invariants hold");
        }
        assert_eq!(w.lines_in_set(0), 4);
        let evicted = w.install(0, 5, fp(0b0000_1111), false);
        assert_eq!(
            evicted.len(),
            1,
            "a full WOC must evict exactly one 4-slot line"
        );
        w.check_invariants(0).expect("invariants hold");
    }

    #[test]
    fn eviction_returns_whole_lines() {
        let mut w = Woc::new(1, 1, 8, 7);
        // Fill the single way with four 2-word lines.
        for t in 0..4u64 {
            w.install(0, 10 + t, fp(0b11), true);
        }
        assert_eq!(w.lines_in_set(0), 4);
        // An 8-word install must evict all four lines.
        let evicted = w.install(0, 99, fp(0xff), false);
        assert_eq!(evicted.len(), 4);
        for ev in &evicted {
            assert_eq!(ev.words.used_words(), 2);
            assert!(ev.dirty);
        }
        assert_eq!(w.lines_in_set(0), 1);
        w.check_invariants(0).expect("invariants hold");
    }

    #[test]
    fn single_word_install_into_full_way_evicts_one_line() {
        let mut w = Woc::new(1, 1, 8, 3);
        w.install(0, 1, fp(0xff), false); // 8-word line fills the way
        let evicted = w.install(0, 2, fp(0b1), false);
        // The only eligible offset for 1 slot is the head at 0; the whole
        // 8-word line goes.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tag, 1);
        assert_eq!(evicted[0].words.used_words(), 8);
        assert_eq!(w.occupancy(), 1);
        w.check_invariants(0).expect("invariants hold");
    }

    #[test]
    fn invalidate_line_removes_all_words() {
        let mut w = woc();
        w.install(2, 50, fp(0b0101), true);
        let ev = w.invalidate_line(2, 50).expect("present");
        assert_eq!(ev.words, fp(0b0101));
        assert!(ev.dirty);
        assert!(w.lookup(2, 50).is_none());
        assert!(w.invalidate_line(2, 50).is_none());
        w.check_invariants(2).expect("invariants hold");
    }

    #[test]
    fn mark_dirty_hits_all_words() {
        let mut w = woc();
        w.install(1, 8, fp(0b11), false);
        assert!(w.mark_dirty(1, 8));
        let ev = w.invalidate_line(1, 8).expect("line was installed");
        assert!(ev.dirty);
        assert!(!w.mark_dirty(1, 8));
    }

    #[test]
    fn words_rearranged_in_increasing_order() {
        let mut w = woc();
        w.install(0, 5, fp(0b1001_0010), false); // words 1, 4, 7
        w.check_invariants(0).expect("invariants hold");
        let hit = w.lookup(0, 5).expect("line was installed");
        assert_eq!(hit.valid_words, fp(0b1001_0010));
    }

    #[test]
    fn stress_random_installs_hold_invariants() {
        let mut w = Woc::new(8, 2, 8, 1234);
        let mut rng = SimRng::new(99);
        for i in 0..2000u64 {
            let set = rng.index(8);
            let bits = (rng.next_u64() & 0xff) as u16;
            if bits == 0 {
                continue;
            }
            let tag = 1000 + i;
            w.install(set, tag, fp(bits), rng.chance(0.3));
            w.check_invariants(set)
                .unwrap_or_else(|e| panic!("iteration {i}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "empty footprint")]
    fn rejects_empty_install() {
        let mut w = woc();
        w.install(0, 1, Footprint::empty(), false);
    }

    #[test]
    fn tag_store_exposes_29_bits_per_entry() {
        let w = woc(); // 4 sets * 2 ways * 8 slots = 64 entries
        assert_eq!(w.tag_store_bits(), 64 * 29);
    }

    #[test]
    fn flip_is_involutory_and_locates_the_site() {
        let mut w = woc();
        w.install(1, 77, fp(0b11), true);
        let before = w.clone();
        // Entry index for set 1, way 0, slot 0: (1*2*8 + 0) * 29 = bit 464;
        // +2 selects the head bit.
        let fault = w.flip_tag_bit(464 + 2);
        assert_eq!((fault.set, fault.way, fault.slot), (1, 0, 0));
        assert_eq!(fault.field, WocField::Head);
        w.flip_tag_bit(464 + 2);
        assert_eq!(w.valid, before.valid, "double flip restores state");
        assert_eq!(w.dirty, before.dirty);
        assert_eq!(w.head, before.head);
        assert_eq!(w.tags, before.tags);
        assert_eq!(w.word_ids, before.word_ids);
    }

    #[test]
    fn flip_in_invalid_entry_is_dead_unless_valid_bit() {
        let mut w = woc();
        let dirty_flip = w.flip_tag_bit(1); // dirty bit of invalid entry 0
        assert!(!dirty_flip.live);
        let valid_flip = w.flip_tag_bit(0); // resurrects entry 0
        assert!(valid_flip.live);
    }

    #[test]
    fn corrupted_head_bit_is_caught_and_cleared() {
        let mut w = woc();
        w.install(0, 9, fp(0b11), false);
        let fault = w.flip_tag_bit(2); // head bit of set 0, way 0, slot 0
        assert!(fault.live);
        let err = w.check_invariants(0).expect_err("orphan must be flagged");
        assert!(matches!(
            err,
            LdisError::WocOrphanEntry { set: 0, way: 0, .. }
        ));
        assert_eq!(w.clear_set(0), 2);
        w.check_invariants(0).expect("cleared set is consistent");
        assert_eq!(w.occupancy(), 0);
    }

    #[test]
    fn corrupted_tag_splits_line_without_panicking() {
        let mut w = Woc::new(1, 1, 8, 5);
        w.install(0, 3, fp(0b1111), true);
        // Flip tag bit 0 of slot 1: mid-line tag mismatch.
        w.flip_tag_bit(WOC_ENTRY_BITS + 3);
        assert!(matches!(
            w.check_invariants(0),
            Err(LdisError::WocTagMismatch { .. })
        ));
        // Installing over the corrupted range must not panic and must
        // leave a consistent set behind.
        let evicted = w.install(0, 8, fp(0xff), false);
        assert!(!evicted.is_empty());
        assert!(evicted.iter().any(|ev| ev.dirty), "dirty debris accounted");
        w.check_invariants(0)
            .expect("full reinstall scrubs the way");
    }

    #[test]
    fn headless_way_still_accepts_installs() {
        let mut w = Woc::new(1, 1, 8, 11);
        w.install(0, 4, fp(0xff), false);
        // Kill the head bit: no eligible candidate remains in the way.
        w.flip_tag_bit(2);
        let evicted = w.install(0, 6, fp(0xff), false);
        assert_eq!(evicted.len(), 1, "debris evicted via the fallback path");
        w.check_invariants(0)
            .expect("reinstall leaves a consistent way");
        assert!(w.lookup(0, 6).is_some());
    }

    #[test]
    fn reinstalling_a_resurrected_tag_keeps_one_copy() {
        let mut w = woc();
        w.install(0, 5, fp(0b1), false);
        // Duplicate installs (possible when a valid-bit flip resurrects a
        // stale copy) must collapse to a single stored line.
        w.install(0, 5, fp(0b11), false);
        let hit = w.lookup(0, 5).expect("line present");
        assert_eq!(hit.valid_words, fp(0b11));
        w.check_invariants(0).expect("no duplicate tags");
    }

    #[test]
    fn clear_way_reports_discarded_entries() {
        let mut w = woc();
        w.install(3, 2, fp(0b111), false);
        let way = (0..2)
            .find(|&wy| w.valid.get(3 * 2 + wy).copied().unwrap_or(0) != 0)
            .expect("line landed in some way");
        assert_eq!(w.clear_way(3, way), 3);
        assert!(w.lookup(3, 2).is_none());
    }
}
