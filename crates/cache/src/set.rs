//! One set of a set-associative cache: entries plus a true-LRU stack.

use crate::TagEntry;

/// A cache set: `ways` tag entries plus an explicit recency stack.
///
/// The recency stack is a permutation of way indices with the MRU way at
/// position 0 and the LRU way at position `ways - 1` — exactly the "recency
/// position" numbering of the paper's Section 3 (MRU = position 0, LRU =
/// position `ways - 1`).
#[derive(Clone, Debug)]
pub struct CacheSet {
    entries: Vec<TagEntry>,
    /// `order[pos]` = way index at recency position `pos` (0 = MRU).
    order: Vec<u8>,
}

impl CacheSet {
    /// Creates an empty set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or greater than 255.
    pub fn new(ways: u32) -> Self {
        assert!((1..=255).contains(&ways), "ways must be in 1..=255");
        CacheSet {
            entries: vec![TagEntry::invalid(); ways as usize],
            order: (0..ways as u8).collect(),
        }
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.entries.len()
    }

    /// The way holding `tag`, if present and valid.
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.valid && e.tag == tag)
    }

    /// The recency position of `way` (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn position_of(&self, way: usize) -> u8 {
        self.order
            .iter()
            .position(|&w| w as usize == way)
            // ldis: allow(T1, "position over the recency order, whose length is ways, asserted 1..=255 in new()")
            .expect("way must be a member of the recency order") as u8
    }

    /// Promotes `way` to MRU, returning its recency position *before* the
    /// promotion (the position an access observes, per Section 3).
    pub fn promote(&mut self, way: usize) -> u8 {
        let pos = self.position_of(way);
        let w = self.order.remove(pos as usize);
        self.order.insert(0, w);
        pos
    }

    /// The way a new line should replace: the first invalid way if any,
    /// otherwise the LRU way.
    pub fn victim_way(&self) -> usize {
        if let Some(w) = self.entries.iter().position(|e| !e.valid) {
            return w;
        }
        *self.order.last().expect("sets have at least one way") as usize
    }

    /// Shared access to the entry in `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range — an out-of-range way is a caller
    /// bug, never a data-dependent condition.
    pub fn entry(&self, way: usize) -> &TagEntry {
        &self.entries[way] // ldis: allow(P1X, "documented panic contract of the way accessor")
    }

    /// Exclusive access to the entry in `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn entry_mut(&mut self, way: usize) -> &mut TagEntry {
        &mut self.entries[way] // ldis: allow(P1X, "documented panic contract of the way accessor")
    }

    /// Iterates over all entries (valid and invalid).
    pub fn iter(&self) -> impl Iterator<Item = &TagEntry> {
        self.entries.iter()
    }

    /// The way index at recency position `pos` (0 = MRU).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not a valid recency position.
    pub fn way_at_position(&self, pos: u8) -> usize {
        self.order[pos as usize] as usize // ldis: allow(P1X, "documented panic contract of the recency accessor")
    }

    /// Returns the recency order as way indices, MRU first. Primarily for
    /// tests and invariant checks.
    pub fn recency_order(&self) -> &[u8] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn installed(set: &mut CacheSet, way: usize, tag: u64) {
        set.entry_mut(way).install(tag, false, false);
        set.promote(way);
    }

    #[test]
    fn empty_set_has_no_matches() {
        let set = CacheSet::new(4);
        assert_eq!(set.find(0), None);
        assert_eq!(set.ways(), 4);
    }

    #[test]
    fn find_locates_valid_tags_only() {
        let mut set = CacheSet::new(4);
        installed(&mut set, 0, 10);
        assert_eq!(set.find(10), Some(0));
        assert_eq!(set.find(11), None);
        set.entry_mut(0).valid = false;
        assert_eq!(set.find(10), None);
    }

    #[test]
    fn promote_returns_prior_position_and_moves_to_mru() {
        let mut set = CacheSet::new(4);
        for (w, t) in [(0usize, 10u64), (1, 11), (2, 12), (3, 13)] {
            installed(&mut set, w, t);
        }
        // Install order 0,1,2,3 → recency order (MRU..LRU) = 3,2,1,0.
        assert_eq!(set.recency_order(), &[3, 2, 1, 0]);
        let pos = set.promote(1);
        assert_eq!(pos, 2);
        assert_eq!(set.recency_order(), &[1, 3, 2, 0]);
        assert_eq!(set.position_of(1), 0);
        assert_eq!(set.position_of(0), 3);
    }

    #[test]
    fn victim_prefers_invalid_ways() {
        let mut set = CacheSet::new(3);
        installed(&mut set, 0, 10);
        installed(&mut set, 2, 12);
        assert_eq!(set.victim_way(), 1);
        installed(&mut set, 1, 11);
        // All valid now: LRU is way 0 (installed first).
        assert_eq!(set.victim_way(), 0);
    }

    #[test]
    fn recency_order_is_always_a_permutation() {
        let mut set = CacheSet::new(8);
        for i in 0..100u64 {
            let way = (i % 8) as usize;
            installed(&mut set, way, i);
            let mut sorted: Vec<u8> = set.recency_order().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn way_at_position_inverts_position_of() {
        let mut set = CacheSet::new(4);
        for (w, t) in [(0usize, 1u64), (1, 2), (2, 3), (3, 4)] {
            installed(&mut set, w, t);
        }
        for pos in 0..4u8 {
            assert_eq!(set.position_of(set.way_at_position(pos)), pos);
        }
    }

    #[test]
    #[should_panic(expected = "1..=255")]
    fn rejects_zero_ways() {
        let _ = CacheSet::new(0);
    }
}
