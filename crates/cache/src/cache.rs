//! A traditional set-associative cache with LRU replacement, footprint
//! tracking and recency instrumentation.

use crate::{CacheConfig, SetArena, TagEntry};
use ldis_mem::{Footprint, LineAddr, WordIndex};

/// A line evicted from a [`SetAssocCache`], carrying everything the
/// distillation machinery and the statistics need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether the line was dirty.
    pub dirty: bool,
    /// Whether the line held instructions.
    pub is_instr: bool,
    /// The line's accumulated footprint.
    pub footprint: Footprint,
    /// The maximum recency position attained before the last footprint
    /// change (Figure 2 instrumentation).
    pub recency_at_last_change: u8,
}

/// Where a modeled footprint-bit flip landed (see
/// [`SetAssocCache::flip_footprint_bit`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FootprintFault {
    /// The set containing the affected entry.
    pub set: usize,
    /// The way of the affected entry.
    pub way: usize,
    /// The word whose footprint bit was flipped.
    pub word: u8,
    /// Whether the entry was valid — a flip in an invalid entry's
    /// footprint is dead state and can never be observed.
    pub live: bool,
}

impl std::fmt::Display for FootprintFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "footprint bit flip: set {} way {} word {}{}",
            self.set,
            self.way,
            self.word,
            if self.live { "" } else { " (dead entry)" }
        )
    }
}

/// A traditional set-associative cache with true-LRU replacement.
///
/// Serves as the paper's baseline L2, the LOC of the distill cache, the
/// L1 instruction cache and the reverter circuit's auxiliary tag directory.
/// Tracks a [`Footprint`] per line (updated on demand accesses and by
/// L1D eviction merges) and the Figure 2 recency bookkeeping.
///
/// Storage is a flat [`SetArena`] — struct-of-arrays across all sets — so a
/// probe scans consecutive tags instead of chasing per-set allocations.
///
/// # Example
///
/// ```
/// use ldis_cache::{CacheConfig, SetAssocCache};
/// use ldis_mem::{LineAddr, LineGeometry, WordIndex};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
/// let line = LineAddr::new(42);
/// assert!(!c.access(line, Some(WordIndex::new(0)), false));
/// c.install(line, Some(WordIndex::new(0)), false, false);
/// assert!(c.access(line, Some(WordIndex::new(1)), false));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    arena: SetArena,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let arena = SetArena::new(cfg.num_sets() as usize, cfg.ways());
        SetAssocCache { cfg, arena }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Whether `line` is resident (no recency update).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.arena
            .find(self.cfg.set_index(line), self.cfg.tag(line))
            .is_some()
    }

    /// The current recency position of `line` (0 = MRU), if resident.
    pub fn position_of(&self, line: LineAddr) -> Option<u8> {
        let set = self.cfg.set_index(line);
        let way = self.arena.find(set, self.cfg.tag(line))?;
        self.arena.position_of(set, way)
    }

    /// Looks up `line`; on a hit promotes it to MRU, updates the recency
    /// bookkeeping, marks `word` used (if given) and sets the dirty bit for
    /// writes. Returns whether the access hit.
    pub fn access(&mut self, line: LineAddr, word: Option<WordIndex>, write: bool) -> bool {
        let set = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        let span = word.map_or(0u16, |w| 1u16 << w.get());
        self.arena.hit_update(set, tag, span, write, true).is_some()
    }

    /// Installs `line` at MRU, evicting the LRU (or using an invalid way).
    /// The demanded `word` (if any) becomes the first footprint bit; a
    /// write-allocate sets the dirty bit. Returns the evicted line, if a
    /// valid line was displaced.
    pub fn install(
        &mut self,
        line: LineAddr,
        word: Option<WordIndex>,
        write: bool,
        is_instr: bool,
    ) -> Option<EvictedLine> {
        let set = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        debug_assert!(
            self.arena.find(set, tag).is_none(),
            "installing a resident line"
        );
        let span = word.map_or(0u16, |w| 1u16 << w.get());
        let (_, victim) = self.arena.install_evict(set, tag, span, write, is_instr);
        Self::snapshot_eviction(&self.cfg, set, &victim)
    }

    /// OR-merges `fp` into `line`'s footprint if resident (the L1D → LOC
    /// merge of Section 4.1), optionally marking it dirty. Returns whether
    /// the line was resident. Does **not** update recency.
    pub fn merge_footprint(&mut self, line: LineAddr, fp: Footprint, dirty: bool) -> bool {
        let set = self.cfg.set_index(line);
        self.arena
            .merge_update(set, self.cfg.tag(line), fp.bits(), dirty)
    }

    /// Invalidates `line` if resident, returning its eviction snapshot.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        let set = self.cfg.set_index(line);
        let way = self.arena.find(set, self.cfg.tag(line))?;
        let snapshot = Self::snapshot_eviction(&self.cfg, set, &self.arena.entry(set, way));
        self.arena.invalidate(set, way);
        snapshot
    }

    /// Iterates over every valid line with an owned snapshot of its entry —
    /// used by the compression analysis (Figure 10), which samples cache
    /// contents.
    pub fn iter_lines(&self) -> impl Iterator<Item = (LineAddr, TagEntry)> + '_ {
        let ways = self.arena.ways();
        (0..self.cfg.num_sets() as usize).flat_map(move |set| {
            (0..ways).filter_map(move |way| {
                let entry = self.arena.entry(set, way);
                if entry.valid {
                    Some((self.cfg.line_of(set, entry.tag), entry))
                } else {
                    None
                }
            })
        })
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u64 {
        let ways = self.arena.ways();
        (0..self.cfg.num_sets() as usize)
            .map(|set| {
                (0..ways)
                    .filter(|&way| self.arena.is_valid(set, way))
                    .count() as u64
            })
            .sum()
    }

    /// Number of modeled footprint bits in the tag store (one per word per
    /// entry, valid or not) — the exposure surface for footprint faults.
    pub fn footprint_bits(&self) -> u64 {
        self.cfg.num_sets() * self.cfg.ways() as u64 * self.cfg.geometry().words_per_line() as u64
    }

    /// Flips footprint bit `bit` (in `0..footprint_bits()`, interpreted as
    /// `(set, way, word)` in row-major order) and reports where it landed.
    /// Used by the fault-injection model; never touches tags or data.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn flip_footprint_bit(&mut self, bit: u64) -> FootprintFault {
        let wpl = self.cfg.geometry().words_per_line() as u64;
        let ways = self.cfg.ways() as u64;
        assert!(bit < self.footprint_bits(), "footprint bit out of range");
        let entry_idx = bit / wpl;
        let word = (bit % wpl) as u8;
        let set = (entry_idx / ways) as usize;
        let way = (entry_idx % ways) as usize;
        let flipped = Footprint::from_bits(self.arena.footprint(set, way).bits() ^ (1 << word));
        self.arena.set_footprint(set, way, flipped);
        FootprintFault {
            set,
            way,
            word,
            live: self.arena.is_valid(set, way),
        }
    }

    /// Widens the footprint of the entry at `(set, way)` to the full line —
    /// the conservative recovery after a *detected* footprint corruption
    /// (every word treated as used, so distillation can never drop a word
    /// the processor still needs). No-op for invalid entries.
    pub fn repair_footprint(&mut self, set: usize, way: usize) {
        if self.arena.is_valid(set, way) {
            let wpl = self.cfg.geometry().words_per_line();
            self.arena.set_footprint(set, way, Footprint::full(wpl));
        }
    }

    fn snapshot_eviction(
        cfg: &CacheConfig,
        set_idx: usize,
        entry: &TagEntry,
    ) -> Option<EvictedLine> {
        if !entry.valid {
            return None;
        }
        Some(EvictedLine {
            line: cfg.line_of(set_idx, entry.tag),
            dirty: entry.dirty,
            is_instr: entry.is_instr,
            footprint: entry.footprint,
            recency_at_last_change: entry.max_pos_at_change,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;

    fn small_cache(ways: u32) -> SetAssocCache {
        // 4 sets, `ways` ways, 64 B lines.
        SetAssocCache::new(CacheConfig::with_sets(4, ways, LineGeometry::default()))
    }

    fn line_in_set0(i: u64) -> LineAddr {
        LineAddr::new(i * 4)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(2);
        let l = LineAddr::new(7);
        assert!(!c.access(l, None, false));
        assert!(c.install(l, None, false, false).is_none());
        assert!(c.access(l, None, false));
        assert!(c.contains(l));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache(2);
        let (a, b, d) = (line_in_set0(0), line_in_set0(1), line_in_set0(2));
        c.install(a, None, false, false);
        c.install(b, None, false, false);
        // Touch a so b becomes LRU.
        assert!(c.access(a, None, false));
        let evicted = c.install(d, None, false, false).expect("must evict");
        assert_eq!(evicted.line, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn eviction_carries_footprint_and_dirty() {
        let mut c = small_cache(1);
        let a = line_in_set0(0);
        c.install(a, Some(WordIndex::new(2)), true, false);
        c.merge_footprint(a, Footprint::from_bits(0b1000_0000), true);
        let evicted = c.install(line_in_set0(1), None, false, false).unwrap();
        assert!(evicted.dirty);
        assert_eq!(evicted.footprint.used_words(), 2);
        assert!(evicted.footprint.is_used(WordIndex::new(2)));
        assert!(evicted.footprint.is_used(WordIndex::new(7)));
    }

    #[test]
    fn recency_positions_update_on_access() {
        let mut c = small_cache(4);
        let lines: Vec<LineAddr> = (0..4).map(line_in_set0).collect();
        for &l in &lines {
            c.install(l, Some(WordIndex::new(0)), false, false);
        }
        assert_eq!(c.position_of(lines[3]), Some(0));
        assert_eq!(c.position_of(lines[0]), Some(3));
        // Access the LRU line with a NEW word: footprint change at pos 3.
        c.access(lines[0], Some(WordIndex::new(5)), false);
        let evicted_line = lines[1]; // now LRU
        assert_eq!(c.position_of(evicted_line), Some(3));
        // Evict lines[0] eventually and check its recency record.
        for i in 4..7 {
            c.install(line_in_set0(i), Some(WordIndex::new(0)), false, false);
        }
        let ev = c.install(line_in_set0(7), None, false, false).unwrap();
        assert_eq!(ev.line, lines[0]);
        assert_eq!(ev.recency_at_last_change, 3);
    }

    #[test]
    fn merge_footprint_misses_nonresident_lines() {
        let mut c = small_cache(2);
        assert!(!c.merge_footprint(LineAddr::new(9), Footprint::full(8), false));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(2);
        let l = LineAddr::new(3);
        c.install(l, None, true, false);
        let ev = c.invalidate(l).expect("was resident");
        assert_eq!(ev.line, l);
        assert!(ev.dirty);
        assert!(!c.contains(l));
        assert!(c.invalidate(l).is_none());
    }

    #[test]
    fn iter_lines_reports_resident_lines() {
        let mut c = small_cache(2);
        c.install(LineAddr::new(1), Some(WordIndex::new(0)), false, false);
        c.install(LineAddr::new(2), Some(WordIndex::new(1)), false, true);
        let mut lines: Vec<u64> = c.iter_lines().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2]);
        let instr_count = c.iter_lines().filter(|(_, e)| e.is_instr).count();
        assert_eq!(instr_count, 1);
    }

    #[test]
    fn footprint_fault_flips_exactly_one_bit() {
        let mut c = small_cache(2);
        let a = line_in_set0(0);
        c.install(a, Some(WordIndex::new(2)), false, false);
        // Entry (set 0, way 0) holds line a with word 2 used. Flip word 5
        // of that entry: bit = (set * ways + way) * wpl + word.
        let fault = c.flip_footprint_bit(5);
        assert_eq!((fault.set, fault.way, fault.word), (0, 0, 5));
        assert!(fault.live);
        let (_, entry) = c.iter_lines().next().expect("resident");
        assert!(
            entry.footprint.is_used(WordIndex::new(5)),
            "bit set by flip"
        );
        // Flip it back: footprint returns to the original.
        c.flip_footprint_bit(5);
        let (_, entry) = c.iter_lines().next().expect("resident");
        assert!(!entry.footprint.is_used(WordIndex::new(5)));
        assert_eq!(c.footprint_bits(), 4 * 2 * 8);
    }

    #[test]
    fn footprint_fault_in_empty_way_is_dead() {
        let mut c = small_cache(2);
        let fault = c.flip_footprint_bit(9); // set 0, way 1, word 1 — invalid
        assert!(!fault.live);
        assert!(fault.to_string().contains("dead entry"));
    }

    #[test]
    fn repair_widens_to_full_line() {
        let mut c = small_cache(2);
        c.install(line_in_set0(0), Some(WordIndex::new(0)), false, false);
        c.repair_footprint(0, 0);
        let (_, entry) = c.iter_lines().next().expect("resident");
        assert_eq!(entry.footprint.used_words(), 8);
        // Repairing an invalid way is a no-op.
        c.repair_footprint(0, 1);
    }

    #[test]
    fn install_prefers_invalid_ways() {
        let mut c = small_cache(4);
        c.install(line_in_set0(0), None, false, false);
        // Three invalid ways remain: installing must not evict.
        assert!(c.install(line_in_set0(1), None, false, false).is_none());
        assert!(c.install(line_in_set0(2), None, false, false).is_none());
        assert!(c.install(line_in_set0(3), None, false, false).is_none());
        assert!(c.install(line_in_set0(4), None, false, false).is_some());
    }
}
