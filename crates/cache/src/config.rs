//! Cache configuration and set/tag indexing.

use ldis_mem::{LineAddr, LineGeometry};

/// Size, associativity and geometry of a set-associative cache.
///
/// # Example
///
/// ```
/// use ldis_cache::CacheConfig;
/// use ldis_mem::LineGeometry;
///
/// // The paper's baseline L2: 1 MB, 8-way, 64 B lines.
/// let cfg = CacheConfig::new(1 << 20, 8, LineGeometry::default());
/// assert_eq!(cfg.num_sets(), 2048);
/// assert_eq!(cfg.num_lines(), 16 * 1024);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    size_bytes: u64,
    ways: u32,
    geometry: LineGeometry,
    num_sets: u64,
}

impl CacheConfig {
    /// Creates a configuration for a cache of `size_bytes` with `ways`
    /// ways per set and the given line geometry.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is not a positive power of two
    /// (required for mask-based indexing), or if `ways` is 0.
    pub fn new(size_bytes: u64, ways: u32, geometry: LineGeometry) -> Self {
        assert!(ways > 0, "a cache needs at least one way");
        let line = geometry.line_bytes() as u64;
        assert!(
            size_bytes.is_multiple_of(line * ways as u64),
            "cache size {size_bytes} is not divisible by ways*line ({ways} * {line})"
        );
        let num_sets = size_bytes / (line * ways as u64);
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two, got {num_sets}"
        );
        CacheConfig {
            size_bytes,
            ways,
            geometry,
            num_sets,
        }
    }

    /// Creates a configuration from an explicit set count instead of a
    /// total size (`sets * ways * line_bytes` bytes).
    pub fn with_sets(num_sets: u64, ways: u32, geometry: LineGeometry) -> Self {
        let size = num_sets * ways as u64 * geometry.line_bytes() as u64;
        CacheConfig::new(size, ways, geometry)
    }

    /// Total data capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Ways per set.
    pub const fn ways(&self) -> u32 {
        self.ways
    }

    /// Line/word geometry.
    pub const fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Total number of line frames.
    pub const fn num_lines(&self) -> u64 {
        self.num_sets * self.ways as u64
    }

    /// The set index for a line address.
    pub const fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & (self.num_sets - 1)) as usize
    }

    /// The tag stored for a line address (the bits above the set index).
    pub const fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.num_sets.trailing_zeros()
    }

    /// Reconstructs the line address from a set index and tag.
    pub const fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new((tag << self.num_sets.trailing_zeros()) | set as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_dimensions() {
        let cfg = CacheConfig::new(1 << 20, 8, LineGeometry::default());
        assert_eq!(cfg.num_sets(), 2048);
        assert_eq!(cfg.num_lines(), 16384);
        assert_eq!(cfg.size_bytes(), 1 << 20);
        assert_eq!(cfg.ways(), 8);
    }

    #[test]
    fn l1d_dimensions() {
        let cfg = CacheConfig::new(16 << 10, 2, LineGeometry::default());
        assert_eq!(cfg.num_sets(), 128);
        assert_eq!(cfg.num_lines(), 256);
    }

    #[test]
    fn set_and_tag_roundtrip() {
        let cfg = CacheConfig::new(1 << 20, 8, LineGeometry::default());
        for raw in [0u64, 1, 2047, 2048, 0xdead_beef] {
            let line = LineAddr::new(raw);
            let set = cfg.set_index(line);
            let tag = cfg.tag(line);
            assert_eq!(cfg.line_of(set, tag), line);
            assert!(set < cfg.num_sets() as usize);
        }
    }

    #[test]
    fn with_sets_matches_new() {
        let g = LineGeometry::default();
        assert_eq!(
            CacheConfig::with_sets(2048, 8, g),
            CacheConfig::new(1 << 20, 8, g)
        );
    }

    #[test]
    fn distinct_lines_same_set_have_distinct_tags() {
        let cfg = CacheConfig::new(1 << 20, 8, LineGeometry::default());
        let a = LineAddr::new(5);
        let b = LineAddr::new(5 + 2048);
        assert_eq!(cfg.set_index(a), cfg.set_index(b));
        assert_ne!(cfg.tag(a), cfg.tag(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        // 1.5 MB, 8-way, 64 B → 3072 sets: valid in the paper's Figure 8
        // only via the 12-way trick; the plain constructor rejects it.
        let _ = CacheConfig::new(3 << 19, 8, LineGeometry::default());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        let _ = CacheConfig::new(1 << 20, 0, LineGeometry::default());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_size() {
        let _ = CacheConfig::new((1 << 20) + 64, 8, LineGeometry::default());
    }
}
