//! Set-associative cache substrate for the Line Distillation simulator.
//!
//! This crate provides the cache structures the paper's experiments are
//! built from — everything *except* the distill cache itself, which lives
//! in `ldis-distill`:
//!
//! * [`CacheConfig`] — size / associativity / geometry with derived set
//!   indexing;
//! * [`SetAssocCache`] — a traditional set-associative cache with true-LRU
//!   replacement, per-line [`Footprint`](ldis_mem::Footprint) tracking and
//!   the recency-position-before-footprint-change instrumentation that
//!   drives the paper's Figure 2;
//! * [`SectoredCache`] — the sectored first-level data cache of Section 4.2
//!   (per-word valid bits, so the L1D can hold partially-valid lines
//!   returned by the WOC);
//! * [`SecondLevel`] — the interface every L2 organization in this
//!   workspace implements (baseline, distill, compressed, SFP), plus
//!   [`BaselineL2`], the paper's 1 MB 8-way baseline;
//! * [`CacheHealth`] and friends — the resilience vocabulary (fault
//!   accounting, protection schemes, the structured degradation log) used
//!   by organizations that model soft errors in their metadata;
//! * [`Hierarchy`] — the L1I + L1D + L2 driver that routes footprints from
//!   the L1D back to the L2 exactly as the paper's framework (Section 4.1).
//!
//! # Example
//!
//! ```
//! use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
//! use ldis_mem::{Access, Addr, LineGeometry};
//!
//! let geom = LineGeometry::default();
//! let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, geom));
//! let mut hier = Hierarchy::hpca2007(l2);
//! hier.access(Access::load(Addr::new(0x1000), 8));
//! assert_eq!(hier.l2().stats().accesses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cache;
mod config;
mod entry;
mod health;
mod hierarchy;
mod second_level;
mod sectored;
mod set;
mod stats;

pub use arena::SetArena;
pub use cache::{EvictedLine, FootprintFault, SetAssocCache};
pub use config::CacheConfig;
pub use entry::TagEntry;
pub use health::{CacheHealth, DegradationEvent, FaultStats, ProtectionScheme, RecoveryAction};
pub use hierarchy::{AccessTrace, Hierarchy, HierarchyStats};
pub use second_level::{BaselineL2, L2Outcome, L2Request, L2Response, SecondLevel};
pub use sectored::{EvictedL1Line, L1Lookup, SectoredCache};
pub use set::CacheSet;
pub use stats::{CompulsoryTracker, L2Stats};
