//! Statistics shared by every second-level cache organization.

use ldis_mem::stats::{mpki, Histogram};
use ldis_mem::LineAddr;
use std::fmt;

/// Hit/miss and instrumentation counters for a second-level cache.
///
/// The four outcome counters mirror Section 5.2's taxonomy. A traditional
/// cache only ever reports `loc_hits` and `line_misses`; the distill cache
/// uses all four.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Total demand accesses (L1 misses plus L1 sector misses).
    pub accesses: u64,
    /// Hits in the line-organized portion (all hits, for a traditional cache).
    pub loc_hits: u64,
    /// Hits in the word-organized cache (distill cache only).
    pub woc_hits: u64,
    /// Line hit but word miss in the WOC (distill cache only).
    pub hole_misses: u64,
    /// Misses in both structures (plain misses for a traditional cache).
    pub line_misses: u64,
    /// Demand misses to lines never seen before by this cache (Table 2).
    pub compulsory_misses: u64,
    /// Lines evicted from the line-organized store.
    pub evictions: u64,
    /// Dirty lines (or dirty distilled words) written back to memory.
    pub writebacks: u64,
    /// Lines installed into the WOC after distillation.
    pub woc_installs: u64,
    /// Lines evicted from the LOC whose words were all unused or that were
    /// filtered out by the distillation threshold.
    pub distill_filtered: u64,
    /// Histogram of used words per *data* line at eviction from the
    /// line-organized store: bin `k` = lines evicted with `k` words used
    /// (Figure 1, Table 6).
    pub words_used_at_evict: Histogram,
    /// Histogram of the maximum recency position attained before the last
    /// footprint change, recorded at eviction of data lines (Figure 2).
    pub recency_before_change: Histogram,
}

impl L2Stats {
    /// Creates zeroed statistics for a cache with `words_per_line` words
    /// per line and `ways` recency positions.
    pub fn new(words_per_line: u8, ways: u32) -> Self {
        L2Stats {
            words_used_at_evict: Histogram::new(words_per_line as usize + 1),
            recency_before_change: Histogram::new(ways as usize),
            ..L2Stats::default()
        }
    }

    /// All hits (LOC + WOC).
    pub fn hits(&self) -> u64 {
        self.loc_hits.saturating_add(self.woc_hits)
    }

    /// All demand misses (hole misses + line misses).
    pub fn demand_misses(&self) -> u64 {
        self.hole_misses.saturating_add(self.line_misses)
    }

    /// Misses per kilo-instruction given the trace's instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        mpki(self.demand_misses(), instructions)
    }

    /// Hit rate over all demand accesses (0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses as f64
        }
    }

    /// Fraction of demand misses that were compulsory.
    pub fn compulsory_fraction(&self) -> f64 {
        let misses = self.demand_misses();
        if misses == 0 {
            0.0
        } else {
            self.compulsory_misses as f64 / misses as f64
        }
    }
}

impl fmt::Display for L2Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {} | LOC hits {} | WOC hits {} | hole misses {} | \
             line misses {} (compulsory {}) | evictions {} | writebacks {}",
            self.accesses,
            self.loc_hits,
            self.woc_hits,
            self.hole_misses,
            self.line_misses,
            self.compulsory_misses,
            self.evictions,
            self.writebacks,
        )
    }
}

/// Tracks which lines have ever been requested, to classify compulsory
/// misses (Table 2). Shared by all second-level implementations.
///
/// Runs once per demand miss, so membership is an open-addressing table
/// with a multiply-shift hash instead of an ordered set — the only
/// observables (first-time bool and distinct count) are order-free.
#[derive(Clone, Debug, Default)]
pub struct CompulsoryTracker {
    /// Power-of-two probe table of seen lines, keyed `raw + 1` so the zero
    /// word means "empty slot".
    slots: Vec<u64>,
    seen: usize,
}

impl CompulsoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CompulsoryTracker::default()
    }

    /// Records a demand miss to `line`; returns `true` if this is the first
    /// time the line has ever been requested (a compulsory miss).
    pub fn record_miss(&mut self, line: LineAddr) -> bool {
        // Keep the load factor under 3/4 so linear probes stay short.
        if self.seen.saturating_mul(4) >= self.slots.len().saturating_mul(3) {
            self.grow();
        }
        let key = line.raw().wrapping_add(1);
        debug_assert!(key != 0, "line address saturates the key space");
        let mask = self.slots.len().wrapping_sub(1);
        let mut i = Self::hash(key) & mask;
        loop {
            match self.slots.get(i).copied() {
                Some(0) => {
                    if let Some(slot) = self.slots.get_mut(i) {
                        *slot = key;
                    }
                    self.seen = self.seen.saturating_add(1);
                    return true;
                }
                Some(k) if k == key => return false,
                _ => i = i.wrapping_add(1) & mask,
            }
        }
    }

    /// Number of distinct lines ever requested.
    pub fn distinct_lines(&self) -> usize {
        self.seen
    }

    /// Fibonacci multiply-shift: line addresses are near-sequential, the
    /// multiply spreads them across the high bits the mask keeps.
    #[inline]
    fn hash(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    /// Doubles the table (1024 slots initially) and re-inserts every key.
    fn grow(&mut self) {
        let new_len = (self.slots.len().saturating_mul(2)).max(1024);
        let old = std::mem::replace(&mut self.slots, vec![0u64; new_len]);
        let mask = new_len.wrapping_sub(1);
        for key in old {
            if key == 0 {
                continue;
            }
            let mut i = Self::hash(key) & mask;
            while self.slots.get(i).copied().unwrap_or(0) != 0 {
                i = i.wrapping_add(1) & mask;
            }
            if let Some(slot) = self.slots.get_mut(i) {
                *slot = key;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let mut s = L2Stats::new(8, 8);
        s.accesses = 10;
        s.loc_hits = 4;
        s.woc_hits = 2;
        s.hole_misses = 1;
        s.line_misses = 3;
        s.compulsory_misses = 2;
        assert_eq!(s.hits(), 6);
        assert_eq!(s.demand_misses(), 4);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.compulsory_fraction() - 0.5).abs() < 1e-12);
        assert!((s.mpki(1_000_000) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = L2Stats::new(8, 8);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.compulsory_fraction(), 0.0);
        assert_eq!(s.words_used_at_evict.len(), 9);
        assert_eq!(s.recency_before_change.len(), 8);
    }

    #[test]
    fn display_shows_all_outcome_classes() {
        let mut s = L2Stats::new(8, 8);
        s.accesses = 5;
        s.woc_hits = 2;
        s.hole_misses = 1;
        let text = s.to_string();
        assert!(text.contains("WOC hits 2"));
        assert!(text.contains("hole misses 1"));
        assert!(text.contains("accesses 5"));
    }

    #[test]
    fn compulsory_tracker_first_touch_only() {
        let mut t = CompulsoryTracker::new();
        assert!(t.record_miss(LineAddr::new(1)));
        assert!(!t.record_miss(LineAddr::new(1)));
        assert!(t.record_miss(LineAddr::new(2)));
        assert_eq!(t.distinct_lines(), 2);
    }

    #[test]
    fn compulsory_tracker_matches_ordered_set_across_growth() {
        // Enough distinct lines to force several table doublings, with
        // revisits mixed in; the probe table must agree with a reference
        // ordered set on every single answer.
        let mut t = CompulsoryTracker::new();
        let mut reference = std::collections::BTreeSet::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            // Small xorshift so ~half the draws are repeats.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = LineAddr::new(x % 8192);
            assert_eq!(t.record_miss(line), reference.insert(line));
        }
        assert_eq!(t.distinct_lines(), reference.len());
        assert!(t.distinct_lines() > 1024, "growth path exercised");
    }
}
