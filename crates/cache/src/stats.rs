//! Statistics shared by every second-level cache organization.

use ldis_mem::stats::{mpki, Histogram};
use ldis_mem::LineAddr;
use std::collections::BTreeSet;
use std::fmt;

/// Hit/miss and instrumentation counters for a second-level cache.
///
/// The four outcome counters mirror Section 5.2's taxonomy. A traditional
/// cache only ever reports `loc_hits` and `line_misses`; the distill cache
/// uses all four.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Total demand accesses (L1 misses plus L1 sector misses).
    pub accesses: u64,
    /// Hits in the line-organized portion (all hits, for a traditional cache).
    pub loc_hits: u64,
    /// Hits in the word-organized cache (distill cache only).
    pub woc_hits: u64,
    /// Line hit but word miss in the WOC (distill cache only).
    pub hole_misses: u64,
    /// Misses in both structures (plain misses for a traditional cache).
    pub line_misses: u64,
    /// Demand misses to lines never seen before by this cache (Table 2).
    pub compulsory_misses: u64,
    /// Lines evicted from the line-organized store.
    pub evictions: u64,
    /// Dirty lines (or dirty distilled words) written back to memory.
    pub writebacks: u64,
    /// Lines installed into the WOC after distillation.
    pub woc_installs: u64,
    /// Lines evicted from the LOC whose words were all unused or that were
    /// filtered out by the distillation threshold.
    pub distill_filtered: u64,
    /// Histogram of used words per *data* line at eviction from the
    /// line-organized store: bin `k` = lines evicted with `k` words used
    /// (Figure 1, Table 6).
    pub words_used_at_evict: Histogram,
    /// Histogram of the maximum recency position attained before the last
    /// footprint change, recorded at eviction of data lines (Figure 2).
    pub recency_before_change: Histogram,
}

impl L2Stats {
    /// Creates zeroed statistics for a cache with `words_per_line` words
    /// per line and `ways` recency positions.
    pub fn new(words_per_line: u8, ways: u32) -> Self {
        L2Stats {
            words_used_at_evict: Histogram::new(words_per_line as usize + 1),
            recency_before_change: Histogram::new(ways as usize),
            ..L2Stats::default()
        }
    }

    /// All hits (LOC + WOC).
    pub fn hits(&self) -> u64 {
        self.loc_hits.saturating_add(self.woc_hits)
    }

    /// All demand misses (hole misses + line misses).
    pub fn demand_misses(&self) -> u64 {
        self.hole_misses.saturating_add(self.line_misses)
    }

    /// Misses per kilo-instruction given the trace's instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        mpki(self.demand_misses(), instructions)
    }

    /// Hit rate over all demand accesses (0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses as f64
        }
    }

    /// Fraction of demand misses that were compulsory.
    pub fn compulsory_fraction(&self) -> f64 {
        let misses = self.demand_misses();
        if misses == 0 {
            0.0
        } else {
            self.compulsory_misses as f64 / misses as f64
        }
    }
}

impl fmt::Display for L2Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {} | LOC hits {} | WOC hits {} | hole misses {} | \
             line misses {} (compulsory {}) | evictions {} | writebacks {}",
            self.accesses,
            self.loc_hits,
            self.woc_hits,
            self.hole_misses,
            self.line_misses,
            self.compulsory_misses,
            self.evictions,
            self.writebacks,
        )
    }
}

/// Tracks which lines have ever been requested, to classify compulsory
/// misses (Table 2). Shared by all second-level implementations.
#[derive(Clone, Debug, Default)]
pub struct CompulsoryTracker {
    seen: BTreeSet<LineAddr>,
}

impl CompulsoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CompulsoryTracker::default()
    }

    /// Records a demand miss to `line`; returns `true` if this is the first
    /// time the line has ever been requested (a compulsory miss).
    pub fn record_miss(&mut self, line: LineAddr) -> bool {
        self.seen.insert(line)
    }

    /// Number of distinct lines ever requested.
    pub fn distinct_lines(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let mut s = L2Stats::new(8, 8);
        s.accesses = 10;
        s.loc_hits = 4;
        s.woc_hits = 2;
        s.hole_misses = 1;
        s.line_misses = 3;
        s.compulsory_misses = 2;
        assert_eq!(s.hits(), 6);
        assert_eq!(s.demand_misses(), 4);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
        assert!((s.compulsory_fraction() - 0.5).abs() < 1e-12);
        assert!((s.mpki(1_000_000) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = L2Stats::new(8, 8);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.compulsory_fraction(), 0.0);
        assert_eq!(s.words_used_at_evict.len(), 9);
        assert_eq!(s.recency_before_change.len(), 8);
    }

    #[test]
    fn display_shows_all_outcome_classes() {
        let mut s = L2Stats::new(8, 8);
        s.accesses = 5;
        s.woc_hits = 2;
        s.hole_misses = 1;
        let text = s.to_string();
        assert!(text.contains("WOC hits 2"));
        assert!(text.contains("hole misses 1"));
        assert!(text.contains("accesses 5"));
    }

    #[test]
    fn compulsory_tracker_first_touch_only() {
        let mut t = CompulsoryTracker::new();
        assert!(t.record_miss(LineAddr::new(1)));
        assert!(!t.record_miss(LineAddr::new(1)));
        assert!(t.record_miss(LineAddr::new(2)));
        assert_eq!(t.distinct_lines(), 2);
    }
}
