//! A tag-store entry of a line-organized cache.

use ldis_mem::{Footprint, WordIndex};

/// One tag-store entry: validity, tag, dirty bit, the per-line footprint
/// (Section 3) and the bookkeeping for the Figure 2 recency analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagEntry {
    /// Whether the entry holds a line.
    pub valid: bool,
    /// Whether the line has been written since install.
    pub dirty: bool,
    /// Whether the line was installed by an instruction fetch. Instruction
    /// lines are excluded from footprint statistics and are never distilled
    /// (Section 4).
    pub is_instr: bool,
    /// The tag (line-address bits above the set index).
    pub tag: u64,
    /// Which words of the line have been used.
    pub footprint: Footprint,
    /// Maximum recency position this line has occupied since install.
    pub max_pos_seen: u8,
    /// `max_pos_seen` captured at the most recent footprint change; at
    /// eviction this is the "maximum recency position before
    /// footprint-change" of the paper's Figure 2.
    pub max_pos_at_change: u8,
}

impl TagEntry {
    /// An invalid (empty) entry.
    pub const fn invalid() -> Self {
        TagEntry {
            valid: false,
            dirty: false,
            is_instr: false,
            tag: 0,
            footprint: Footprint::empty(),
            max_pos_seen: 0,
            max_pos_at_change: 0,
        }
    }

    /// Re-initializes the entry for a newly installed line.
    pub fn install(&mut self, tag: u64, write: bool, is_instr: bool) {
        *self = TagEntry {
            valid: true,
            dirty: write,
            is_instr,
            tag,
            footprint: Footprint::empty(),
            max_pos_seen: 0,
            max_pos_at_change: 0,
        };
    }

    /// Records that the line was observed at recency position `pos` just
    /// before being promoted, updating the Figure 2 bookkeeping.
    pub fn observe_position(&mut self, pos: u8) {
        self.max_pos_seen = self.max_pos_seen.max(pos);
    }

    /// Marks `word` used. If the bit was newly set, this is a
    /// footprint-change: the current `max_pos_seen` is latched.
    pub fn touch_word(&mut self, word: WordIndex) {
        if self.footprint.touch(word) {
            self.max_pos_at_change = self.max_pos_seen;
        }
    }

    /// OR-merges an external footprint (an L1D eviction, Section 4.1).
    /// Newly set bits count as a footprint-change at the line's current
    /// maximum observed position.
    pub fn merge_footprint(&mut self, fp: Footprint) {
        if !self.footprint.covers(fp) {
            self.max_pos_at_change = self.max_pos_seen;
        }
        self.footprint.merge(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_resets_state() {
        let mut e = TagEntry::invalid();
        e.footprint.touch(WordIndex::new(3));
        e.max_pos_seen = 5;
        e.install(42, true, false);
        assert!(e.valid && e.dirty && !e.is_instr);
        assert_eq!(e.tag, 42);
        assert!(e.footprint.is_empty());
        assert_eq!(e.max_pos_seen, 0);
        assert_eq!(e.max_pos_at_change, 0);
    }

    #[test]
    fn figure2_example_from_the_paper() {
        // Line A: first footprint-change at position 0, drifts to position
        // 5, a second footprint-change happens there, then the line is
        // never accessed again. Recorded value must be 5 (Section 3).
        let mut e = TagEntry::invalid();
        e.install(1, false, false);
        e.observe_position(0);
        e.touch_word(WordIndex::new(0)); // change #1 at max pos 0
        assert_eq!(e.max_pos_at_change, 0);
        e.observe_position(5); // drifted down the stack
        e.touch_word(WordIndex::new(3)); // change #2, latches max pos 5
        assert_eq!(e.max_pos_at_change, 5);
        e.observe_position(7); // drifts further but no more changes
        e.touch_word(WordIndex::new(3)); // not a change: bit already set
        assert_eq!(e.max_pos_at_change, 5);
    }

    #[test]
    fn merge_latches_position_only_on_new_bits() {
        let mut e = TagEntry::invalid();
        e.install(1, false, false);
        e.touch_word(WordIndex::new(0));
        e.observe_position(4);
        e.merge_footprint(Footprint::from_bits(0b1)); // already covered
        assert_eq!(e.max_pos_at_change, 0);
        e.merge_footprint(Footprint::from_bits(0b10)); // new bit
        assert_eq!(e.max_pos_at_change, 4);
        assert_eq!(e.footprint.used_words(), 2);
    }
}
