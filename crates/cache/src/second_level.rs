//! The interface every second-level cache organization implements, and the
//! paper's traditional baseline.

use crate::{CacheConfig, CompulsoryTracker, L2Stats, SetAssocCache};
use ldis_mem::stats::Counter;
use ldis_mem::{Addr, Footprint, LineAddr, LineGeometry, WordIndex};

/// A demand request from the first-level caches to the L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Request {
    /// The requested line.
    pub line: LineAddr,
    /// The demanded word within the line.
    pub word: WordIndex,
    /// Whether the triggering access is a store (write-allocate).
    pub write: bool,
    /// Whether the request comes from the instruction cache. Instruction
    /// lines are never distilled (Section 4).
    pub is_instr: bool,
    /// The program counter of the instruction that triggered the request;
    /// used by the spatial footprint predictor (`ldis-sfp`).
    pub pc: Addr,
}

impl L2Request {
    /// A data read request for `word` of `line`.
    pub fn data(line: LineAddr, word: WordIndex, write: bool) -> Self {
        L2Request {
            line,
            word,
            write,
            is_instr: false,
            pc: Addr::new(0),
        }
    }

    /// An instruction fetch request for `line`.
    pub fn instr(line: LineAddr) -> Self {
        L2Request {
            line,
            word: WordIndex::new(0),
            write: false,
            is_instr: true,
            pc: Addr::new(0),
        }
    }

    /// Returns a copy carrying the requesting instruction's PC.
    #[must_use]
    pub fn with_pc(mut self, pc: Addr) -> Self {
        self.pc = pc;
        self
    }
}

/// The four possible outcomes of a distill-cache access (Section 5.2).
/// Traditional caches only ever produce `LocHit` and `LineMiss`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum L2Outcome {
    /// Hit in the line-organized cache (or a traditional hit).
    LocHit,
    /// Line hit and word hit in the word-organized cache.
    WocHit,
    /// Line hit but word miss in the WOC: the line's words are invalidated
    /// and the line is re-fetched from memory.
    HoleMiss,
    /// Miss in both structures (or a traditional miss).
    LineMiss,
}

impl L2Outcome {
    /// Whether the access was serviced without going to memory.
    pub const fn is_hit(self) -> bool {
        matches!(self, L2Outcome::LocHit | L2Outcome::WocHit)
    }

    /// Whether the access required a memory fetch.
    pub const fn is_miss(self) -> bool {
        !self.is_hit()
    }
}

/// The L2's response: outcome plus which words of the line are returned to
/// the L1D (Section 4.2's valid bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Response {
    /// How the access was serviced.
    pub outcome: L2Outcome,
    /// Words of the line delivered to the L1D. Full for LOC hits and
    /// memory fills; the stored subset for WOC hits.
    pub valid_words: Footprint,
}

/// A second-level cache organization.
///
/// Implemented by [`BaselineL2`] here, by the distill cache in
/// `ldis-distill`, by the compressed caches in `ldis-compress` and by the
/// spatial-footprint-predictor cache in `ldis-sfp`. The
/// [`Hierarchy`](crate::Hierarchy) driver is generic over this trait so the
/// same trace exercises any organization.
pub trait SecondLevel {
    /// Services a demand access, updating replacement and footprint state.
    fn access(&mut self, req: L2Request) -> L2Response;

    /// Notification that the L1D evicted `line`: its footprint is merged
    /// into the L2's copy if resident (Section 4.1) and dirty data is
    /// written back.
    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool);

    /// Accumulated statistics.
    fn stats(&self) -> &L2Stats;

    /// Zeroes the statistics counters without touching cache contents.
    /// Used to exclude warmup from measurements; compulsory-miss
    /// classification (which lines have ever been seen) is preserved.
    fn reset_stats(&mut self);

    /// The cache's line/word geometry.
    fn geometry(&self) -> LineGeometry;

    /// A short name for reports.
    fn name(&self) -> &str {
        "l2"
    }

    /// Resilience state, for organizations that model metadata soft
    /// errors (fault accounting, degradation log, degraded flag). `None`
    /// for organizations without a fault model — the default.
    fn health(&self) -> Option<&crate::CacheHealth> {
        None
    }
}

/// The paper's baseline second-level cache: a traditional set-associative
/// cache with LRU replacement (1 MB, 8-way, 64 B lines in Table 1) plus the
/// footprint instrumentation used by the motivation experiments.
///
/// # Example
///
/// ```
/// use ldis_cache::{BaselineL2, CacheConfig, L2Outcome, L2Request, SecondLevel};
/// use ldis_mem::{LineAddr, LineGeometry, WordIndex};
///
/// let mut l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
/// let req = L2Request::data(LineAddr::new(1), WordIndex::new(0), false);
/// assert_eq!(l2.access(req).outcome, L2Outcome::LineMiss);
/// assert_eq!(l2.access(req).outcome, L2Outcome::LocHit);
/// ```
#[derive(Clone, Debug)]
pub struct BaselineL2 {
    cache: SetAssocCache,
    stats: L2Stats,
    compulsory: CompulsoryTracker,
    label: String,
}

impl BaselineL2 {
    /// Creates an empty baseline cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let stats = L2Stats::new(cfg.geometry().words_per_line(), cfg.ways());
        BaselineL2 {
            cache: SetAssocCache::new(cfg),
            stats,
            compulsory: CompulsoryTracker::new(),
            label: "baseline".to_owned(),
        }
    }

    /// Creates a baseline cache with a custom report label (e.g. "TRAD 2MB").
    pub fn with_label(cfg: CacheConfig, label: impl Into<String>) -> Self {
        let mut b = BaselineL2::new(cfg);
        b.label = label.into();
        b
    }

    /// The underlying cache, for content inspection (Figure 10 sampling).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    fn record_eviction(stats: &mut L2Stats, ev: &crate::EvictedLine) {
        stats.evictions.bump();
        if ev.dirty {
            stats.writebacks.bump();
        }
        if !ev.is_instr {
            stats
                .words_used_at_evict
                .record(ev.footprint.used_words() as usize);
            stats
                .recency_before_change
                .record(ev.recency_at_last_change as usize);
        }
    }
}

impl SecondLevel for BaselineL2 {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses.bump();
        let word = if req.is_instr { None } else { Some(req.word) };
        let full = Footprint::full(self.geometry().words_per_line());
        if self.cache.access(req.line, word, req.write) {
            self.stats.loc_hits.bump();
            L2Response {
                outcome: L2Outcome::LocHit,
                valid_words: full,
            }
        } else {
            self.stats.line_misses.bump();
            if self.compulsory.record_miss(req.line) {
                self.stats.compulsory_misses.bump();
            }
            if let Some(ev) = self.cache.install(req.line, word, req.write, req.is_instr) {
                Self::record_eviction(&mut self.stats, &ev);
            }
            L2Response {
                outcome: L2Outcome::LineMiss,
                valid_words: full,
            }
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool) {
        if !self.cache.merge_footprint(line, footprint, dirty) && dirty {
            // Not resident (inclusion is not enforced): write back to memory.
            self.stats.writebacks.bump();
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        let geom = self.geometry();
        self.stats = L2Stats::new(geom.words_per_line(), self.cache.config().ways());
    }

    fn geometry(&self) -> LineGeometry {
        self.cache.config().geometry()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;

    fn tiny() -> BaselineL2 {
        BaselineL2::new(CacheConfig::with_sets(4, 2, LineGeometry::default()))
    }

    #[test]
    fn outcome_helpers() {
        assert!(L2Outcome::LocHit.is_hit());
        assert!(L2Outcome::WocHit.is_hit());
        assert!(L2Outcome::HoleMiss.is_miss());
        assert!(L2Outcome::LineMiss.is_miss());
    }

    #[test]
    fn compulsory_misses_counted_once_per_line() {
        let mut l2 = tiny();
        let req = L2Request::data(LineAddr::new(100), WordIndex::new(0), false);
        l2.access(req);
        // Evict by filling the set, then re-access: a miss but not compulsory.
        for i in 0..2 {
            l2.access(L2Request::data(
                LineAddr::new(100 + 4 * (i + 1)),
                WordIndex::new(0),
                false,
            ));
        }
        l2.access(req);
        assert_eq!(l2.stats().line_misses, 4);
        assert_eq!(l2.stats().compulsory_misses, 3);
    }

    #[test]
    fn eviction_histograms_exclude_instruction_lines() {
        let mut l2 = tiny();
        l2.access(L2Request::instr(LineAddr::new(0)));
        l2.access(L2Request::data(LineAddr::new(4), WordIndex::new(0), false));
        // Force both out of set 0.
        l2.access(L2Request::instr(LineAddr::new(8)));
        l2.access(L2Request::data(LineAddr::new(12), WordIndex::new(0), false));
        l2.access(L2Request::data(LineAddr::new(16), WordIndex::new(0), false));
        l2.access(L2Request::data(LineAddr::new(20), WordIndex::new(0), false));
        // 6 lines map to set 0 with 2 ways: 4 evictions, alternating
        // instr/data victims. Only the 2 data lines enter the histogram.
        let stats = l2.stats();
        assert_eq!(stats.evictions, 4);
        assert_eq!(stats.words_used_at_evict.total(), 2);
        assert_eq!(stats.words_used_at_evict.count(1), 2);
    }

    #[test]
    fn l1_evict_merges_footprint_when_resident() {
        let mut l2 = tiny();
        let line = LineAddr::new(7);
        l2.access(L2Request::data(line, WordIndex::new(0), false));
        l2.on_l1d_evict(line, Footprint::from_bits(0b1110), false);
        // Evict it and check the histogram saw 4 used words (bit 0 + 3 merged).
        for i in 1..=2 {
            l2.access(L2Request::data(
                LineAddr::new(7 + 4 * i),
                WordIndex::new(0),
                false,
            ));
        }
        assert_eq!(l2.stats().words_used_at_evict.count(4), 1);
    }

    #[test]
    fn l1_evict_of_nonresident_dirty_line_writes_back() {
        let mut l2 = tiny();
        l2.on_l1d_evict(LineAddr::new(50), Footprint::full(8), true);
        assert_eq!(l2.stats().writebacks, 1);
        l2.on_l1d_evict(LineAddr::new(51), Footprint::full(8), false);
        assert_eq!(l2.stats().writebacks, 1);
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut l2 = tiny();
        let req = L2Request::data(LineAddr::new(1), WordIndex::new(2), true);
        l2.access(req);
        l2.access(req);
        l2.access(req);
        assert_eq!(l2.stats().accesses, 3);
        assert_eq!(l2.stats().hits(), 2);
        assert!((l2.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
