//! Contiguous struct-of-arrays storage for every set of a cache.
//!
//! The original layout kept one heap allocation per set (`Vec<Vec<Entry>>`),
//! so a probe chased two pointers before touching a tag. [`SetArena`] flattens
//! all sets into parallel arrays — one `Vec` each for tags, metadata bits,
//! footprints, recency bookkeeping and the LRU order — indexed by
//! `set * ways + way`. A set probe is then one contiguous scan of at most
//! `ways` consecutive tags, and the whole tag store lives in a handful of
//! allocations regardless of cache size.
//!
//! The arena reproduces [`CacheSet`](crate::CacheSet) semantics exactly
//! (same find order, same promotion, same victim choice);
//! `tests/hotpath_equivalence.rs` drives both against random traces and
//! asserts identical footprints and eviction order. [`CacheSet`] itself
//! survives for the reverter's auxiliary tag directory, which probes a
//! handful of leader sets and is not on the hot path.

use crate::TagEntry;
use ldis_mem::{Footprint, WordIndex};

/// Flattened per-way state for `num_sets * ways` cache entries.
///
/// Metadata is packed one byte per way (valid/dirty/is-instr bits); the
/// recency order keeps `order[set * ways + pos]` = way index at recency
/// position `pos` (0 = MRU), the same permutation-per-set invariant as the
/// old per-set stack. All accessors take `(set, way)` pairs and use checked
/// indexing; out-of-range coordinates read as an invalid entry and ignore
/// writes, which callers rule out by masking set indices into range.
#[derive(Clone, Debug)]
pub struct SetArena {
    ways: usize,
    tags: Vec<u64>,
    meta: Vec<u8>,
    footprints: Vec<u16>,
    pos_seen: Vec<u8>,
    pos_change: Vec<u8>,
    /// `order[set * ways + pos]` = way at recency position `pos` (0 = MRU).
    order: Vec<u8>,
}

const VALID: u8 = 1 << 0;
const DIRTY: u8 = 1 << 1;
const INSTR: u8 = 1 << 2;

impl SetArena {
    /// Creates an empty arena of `num_sets` sets with `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or greater than 255.
    pub fn new(num_sets: usize, ways: u32) -> Self {
        assert!((1..=255).contains(&ways), "ways must be in 1..=255");
        let ways = ways as usize;
        let n = num_sets * ways;
        let mut order = Vec::with_capacity(n);
        for _ in 0..num_sets {
            order.extend(0..ways as u8);
        }
        SetArena {
            ways,
            tags: vec![0; n],
            meta: vec![0; n],
            footprints: vec![0; n],
            pos_seen: vec![0; n],
            pos_change: vec![0; n],
            order,
        }
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        // Explicit wrapping: an (impossible in practice) overflow produces
        // an out-of-range index, which every accessor treats as inert.
        // ldis: allow(R1, "new() sizes every array to sets * ways and all callers route the returned index through checked get/get_mut accessors, so an overflowed index is inert")
        set.wrapping_mul(self.ways).wrapping_add(way)
    }

    /// The way of `set` holding `tag`, if present and valid. Scans ways in
    /// ascending order — the same tie-break as `CacheSet::find`.
    #[inline]
    pub fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let tags = self.tags.get(base..base + self.ways)?;
        let meta = self.meta.get(base..base + self.ways)?;
        tags.iter()
            .zip(meta)
            .position(|(&t, &m)| m & VALID != 0 && t == tag)
    }

    /// The recency position of `way` in `set` (0 = MRU), if in range.
    #[inline]
    pub fn position_of(&self, set: usize, way: usize) -> Option<u8> {
        let base = set * self.ways;
        let order = self.order.get(base..base + self.ways)?;
        order
            .iter()
            .position(|&w| w as usize == way)
            // ldis: allow(T1, "position over the per-set order slice, whose length is ways, asserted 1..=255 in new()")
            .map(|p| p as u8)
    }

    /// Promotes `way` of `set` to MRU, returning its recency position
    /// *before* the promotion (the position an access observes, Section 3).
    /// Returns 0 without mutating if the coordinates are out of range.
    #[inline]
    pub fn promote(&mut self, set: usize, way: usize) -> u8 {
        let base = set * self.ways;
        let Some(order) = self.order.get_mut(base..base + self.ways) else {
            return 0;
        };
        let Some(pos) = order.iter().position(|&w| w as usize == way) else {
            return 0;
        };
        if let Some(prefix) = order.get_mut(..=pos) {
            // Equivalent to remove(pos) + insert(0, way) on the per-set stack.
            prefix.rotate_right(1);
        }
        // ldis: allow(T1, "position over the per-set order slice, whose length is ways, asserted 1..=255 in new()")
        pos as u8
    }

    /// The fused hit path: finds `tag` in `set` and, on a hit, promotes the
    /// way to MRU, ORs `span` into its footprint and sets the dirty bit for
    /// writes — one base computation and one slice per array instead of a
    /// find/promote/touch/or_dirty call chain. With `latch` the Figure 2
    /// recency bookkeeping also runs: the pre-promotion position is
    /// observed, and newly set footprint bits latch the maximum position,
    /// exactly like `observe_position` + `touch_word`. Returns the hit way,
    /// or `None` on a miss (or out-of-range `set`).
    #[inline]
    pub fn hit_update(
        &mut self,
        set: usize,
        tag: u64,
        span: u16,
        write: bool,
        latch: bool,
    ) -> Option<usize> {
        let base = set.wrapping_mul(self.ways);
        let end = base.checked_add(self.ways)?;
        let tags = self.tags.get(base..end)?;
        let meta = self.meta.get(base..end)?;
        let way = tags
            .iter()
            .zip(meta)
            .position(|(&t, &m)| m & VALID != 0 && t == tag)?;
        let i = base.wrapping_add(way);
        // Promote to MRU, remembering the pre-promotion position.
        let order = self.order.get_mut(base..end)?;
        // ldis: allow(T1, "position over the per-set order slice, whose length is ways, asserted 1..=255 in new()")
        let pos = order.iter().position(|&w| w as usize == way)? as u8;
        if let Some(prefix) = order.get_mut(..=pos as usize) {
            prefix.rotate_right(1);
        }
        if latch {
            let seen = match self.pos_seen.get_mut(i) {
                Some(s) => {
                    *s = (*s).max(pos);
                    *s
                }
                None => pos,
            };
            if let Some(fp) = self.footprints.get_mut(i) {
                if span & !*fp != 0 {
                    if let Some(p) = self.pos_change.get_mut(i) {
                        *p = seen;
                    }
                }
                *fp |= span;
            }
        } else if let Some(fp) = self.footprints.get_mut(i) {
            *fp |= span;
        }
        if write {
            if let Some(m) = self.meta.get_mut(i) {
                *m |= DIRTY;
            }
        }
        Some(way)
    }

    /// The fused footprint-merge path (the L1D → LOC merge of Section 4.1):
    /// finds `tag` in `set` and, on a hit, OR-merges `bits` into the
    /// footprint (newly set bits latch the max position, exactly like
    /// `merge_footprint`) and sets the dirty bit when `dirty`. Recency is
    /// **not** updated. Returns whether the line was resident.
    #[inline]
    pub fn merge_update(&mut self, set: usize, tag: u64, bits: u16, dirty: bool) -> bool {
        let base = set.wrapping_mul(self.ways);
        let Some(end) = base.checked_add(self.ways) else {
            return false;
        };
        let (Some(tags), Some(meta)) = (self.tags.get(base..end), self.meta.get(base..end)) else {
            return false;
        };
        let Some(way) = tags
            .iter()
            .zip(meta)
            .position(|(&t, &m)| m & VALID != 0 && t == tag)
        else {
            return false;
        };
        let i = base.wrapping_add(way);
        if let Some(fp) = self.footprints.get_mut(i) {
            if *fp & bits != bits {
                let seen = self.pos_seen.get(i).copied().unwrap_or(0);
                if let Some(p) = self.pos_change.get_mut(i) {
                    *p = seen;
                }
            }
            *fp |= bits;
        }
        if dirty {
            if let Some(m) = self.meta.get_mut(i) {
                *m |= DIRTY;
            }
        }
        true
    }

    /// The way a new line in `set` should replace: the first invalid way if
    /// any, otherwise the LRU way — the same policy as `CacheSet::victim_way`.
    #[inline]
    pub fn victim_way(&self, set: usize) -> usize {
        let base = set * self.ways;
        let Some(meta) = self.meta.get(base..base + self.ways) else {
            return 0;
        };
        if let Some(way) = meta.iter().position(|&m| m & VALID == 0) {
            return way;
        }
        self.order
            .get(base..base + self.ways)
            .and_then(|order| order.last())
            .map_or(0, |&w| w as usize)
    }

    /// The fused install path: picks the victim way of `set` (first
    /// invalid way, else LRU), snapshots the displaced entry,
    /// re-initializes the way for `tag` with `span` as the initial
    /// footprint (the demand words; the fresh-install latch is position 0,
    /// exactly like `install` + `touch_word` on an empty footprint) and
    /// promotes it to MRU — one pass instead of a
    /// victim/entry/install/touch/promote call chain. Returns the chosen
    /// way and the displaced entry (invalid if the way was empty). An
    /// out-of-range `set` mutates nothing and returns way 0.
    #[inline]
    pub fn install_evict(
        &mut self,
        set: usize,
        tag: u64,
        span: u16,
        write: bool,
        is_instr: bool,
    ) -> (usize, TagEntry) {
        let base = set.wrapping_mul(self.ways);
        let Some(end) = base.checked_add(self.ways) else {
            return (0, TagEntry::invalid());
        };
        let Some(meta) = self.meta.get(base..end) else {
            return (0, TagEntry::invalid());
        };
        let way = match meta.iter().position(|&m| m & VALID == 0) {
            Some(w) => w,
            None => self
                .order
                .get(base..end)
                .and_then(|o| o.last())
                .map_or(0, |&w| w as usize),
        };
        let i = base.wrapping_add(way);
        let victim = self.entry(set, way);
        if let Some(t) = self.tags.get_mut(i) {
            *t = tag;
        }
        if let Some(m) = self.meta.get_mut(i) {
            *m = VALID | if write { DIRTY } else { 0 } | if is_instr { INSTR } else { 0 };
        }
        if let Some(fp) = self.footprints.get_mut(i) {
            *fp = span;
        }
        if let Some(p) = self.pos_seen.get_mut(i) {
            *p = 0;
        }
        if let Some(p) = self.pos_change.get_mut(i) {
            *p = 0;
        }
        if let Some(order) = self.order.get_mut(base..end) {
            if let Some(pos) = order.iter().position(|&w| w as usize == way) {
                if let Some(prefix) = order.get_mut(..=pos) {
                    prefix.rotate_right(1);
                }
            }
        }
        (way, victim)
    }

    /// Re-initializes `(set, way)` for a newly installed line, resetting
    /// footprint and recency bookkeeping exactly like `TagEntry::install`.
    #[inline]
    pub fn install(&mut self, set: usize, way: usize, tag: u64, write: bool, is_instr: bool) {
        let i = self.idx(set, way);
        if let Some(t) = self.tags.get_mut(i) {
            *t = tag;
        }
        if let Some(m) = self.meta.get_mut(i) {
            *m = VALID | if write { DIRTY } else { 0 } | if is_instr { INSTR } else { 0 };
        }
        if let Some(fp) = self.footprints.get_mut(i) {
            *fp = 0;
        }
        if let Some(p) = self.pos_seen.get_mut(i) {
            *p = 0;
        }
        if let Some(p) = self.pos_change.get_mut(i) {
            *p = 0;
        }
    }

    /// Records that `(set, way)` was observed at recency position `pos`
    /// just before promotion (Figure 2 bookkeeping).
    #[inline]
    pub fn observe_position(&mut self, set: usize, way: usize, pos: u8) {
        let i = self.idx(set, way);
        if let Some(p) = self.pos_seen.get_mut(i) {
            *p = (*p).max(pos);
        }
    }

    /// Marks `word` used in `(set, way)`. A newly set bit is a
    /// footprint-change: the current max position is latched (Section 3).
    #[inline]
    pub fn touch_word(&mut self, set: usize, way: usize, word: WordIndex) {
        let i = self.idx(set, way);
        let Some(fp) = self.footprints.get_mut(i) else {
            return;
        };
        let mask = 1u16 << word.get();
        if *fp & mask == 0 {
            *fp |= mask;
            let seen = self.pos_seen.get(i).copied().unwrap_or(0);
            if let Some(p) = self.pos_change.get_mut(i) {
                *p = seen;
            }
        }
    }

    /// OR-merges an external footprint into `(set, way)`; newly set bits
    /// latch the max position, exactly like `TagEntry::merge_footprint`.
    #[inline]
    pub fn merge_footprint(&mut self, set: usize, way: usize, fp: Footprint) {
        let i = self.idx(set, way);
        let Some(cur) = self.footprints.get_mut(i) else {
            return;
        };
        if *cur & fp.bits() != fp.bits() {
            let seen = self.pos_seen.get(i).copied().unwrap_or(0);
            if let Some(p) = self.pos_change.get_mut(i) {
                *p = seen;
            }
        }
        *cur |= fp.bits();
    }

    /// OR-merges raw footprint bits into `(set, way)` without touching the
    /// recency bookkeeping — the sectored L1's per-access span update,
    /// where only the accumulated footprint matters (Section 4.2).
    #[inline]
    pub fn or_footprint_bits(&mut self, set: usize, way: usize, bits: u16) {
        let i = self.idx(set, way);
        if let Some(fp) = self.footprints.get_mut(i) {
            *fp |= bits;
        }
    }

    /// Sets the dirty bit of `(set, way)` when `write` is true.
    #[inline]
    pub fn or_dirty(&mut self, set: usize, way: usize, write: bool) {
        let i = self.idx(set, way);
        if write {
            if let Some(m) = self.meta.get_mut(i) {
                *m |= DIRTY;
            }
        }
    }

    /// Whether `(set, way)` holds a valid line.
    #[inline]
    pub fn is_valid(&self, set: usize, way: usize) -> bool {
        self.meta
            .get(self.idx(set, way))
            .is_some_and(|&m| m & VALID != 0)
    }

    /// Marks `(set, way)` invalid, leaving the other fields in place (the
    /// same effect as clearing `TagEntry::valid`).
    #[inline]
    pub fn invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        if let Some(m) = self.meta.get_mut(i) {
            *m &= !VALID;
        }
    }

    /// The footprint of `(set, way)` (empty if out of range).
    #[inline]
    pub fn footprint(&self, set: usize, way: usize) -> Footprint {
        Footprint::from_bits(
            self.footprints
                .get(self.idx(set, way))
                .copied()
                .unwrap_or(0),
        )
    }

    /// Overwrites the footprint of `(set, way)` without touching the
    /// recency bookkeeping — the fault-injection/repair entry point.
    #[inline]
    pub fn set_footprint(&mut self, set: usize, way: usize, fp: Footprint) {
        let i = self.idx(set, way);
        if let Some(cur) = self.footprints.get_mut(i) {
            *cur = fp.bits();
        }
    }

    /// An owned copy of the entry at `(set, way)`, in the classic
    /// [`TagEntry`] shape (an invalid entry if out of range).
    #[inline]
    pub fn entry(&self, set: usize, way: usize) -> TagEntry {
        let i = self.idx(set, way);
        let meta = self.meta.get(i).copied().unwrap_or(0);
        TagEntry {
            valid: meta & VALID != 0,
            dirty: meta & DIRTY != 0,
            is_instr: meta & INSTR != 0,
            tag: self.tags.get(i).copied().unwrap_or(0),
            footprint: self.footprint(set, way),
            max_pos_seen: self.pos_seen.get(i).copied().unwrap_or(0),
            max_pos_at_change: self.pos_change.get(i).copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheSet;

    #[test]
    fn find_promote_victim_match_cache_set() {
        // Drive the arena and the legacy per-set stack through the same
        // install/promote sequence; every observable must agree.
        let mut arena = SetArena::new(2, 4);
        let mut sets = [CacheSet::new(4), CacheSet::new(4)];
        for step in 0u64..64 {
            let set = (step % 2) as usize;
            let tag = step % 6;
            let legacy = &mut sets[set];
            assert_eq!(arena.find(set, tag), legacy.find(tag), "step {step}");
            match legacy.find(tag) {
                Some(way) => {
                    assert_eq!(arena.promote(set, way), legacy.promote(way));
                }
                None => {
                    let way = legacy.victim_way();
                    assert_eq!(arena.victim_way(set), way);
                    legacy.entry_mut(way).install(tag, false, false);
                    arena.install(set, way, tag, false, false);
                    assert_eq!(arena.promote(set, way), legacy.promote(way));
                }
            }
        }
        for (set, legacy) in sets.iter().enumerate() {
            for way in 0..4 {
                assert_eq!(arena.entry(set, way), *legacy.entry(way));
                assert_eq!(arena.position_of(set, way), Some(legacy.position_of(way)));
            }
        }
    }

    #[test]
    fn touch_and_merge_latch_positions_like_tag_entry() {
        let mut arena = SetArena::new(1, 2);
        let mut reference = TagEntry::invalid();
        arena.install(0, 0, 9, false, false);
        reference.install(9, false, false);
        arena.observe_position(0, 0, 3);
        reference.observe_position(3);
        arena.touch_word(0, 0, WordIndex::new(1));
        reference.touch_word(WordIndex::new(1));
        arena.observe_position(0, 0, 5);
        reference.observe_position(5);
        arena.touch_word(0, 0, WordIndex::new(1)); // not a change
        reference.touch_word(WordIndex::new(1));
        assert_eq!(arena.entry(0, 0), reference);
        arena.merge_footprint(0, 0, Footprint::from_bits(0b110));
        reference.merge_footprint(Footprint::from_bits(0b110));
        assert_eq!(arena.entry(0, 0), reference);
        assert_eq!(arena.entry(0, 0).max_pos_at_change, 5);
    }

    #[test]
    fn dirty_and_invalidate_round_trip() {
        let mut arena = SetArena::new(1, 2);
        arena.install(0, 1, 7, false, true);
        assert!(arena.entry(0, 1).is_instr);
        arena.or_dirty(0, 1, false);
        assert!(!arena.entry(0, 1).dirty);
        arena.or_dirty(0, 1, true);
        assert!(arena.entry(0, 1).dirty);
        assert!(arena.is_valid(0, 1));
        arena.invalidate(0, 1);
        assert!(!arena.is_valid(0, 1));
        assert_eq!(arena.find(0, 7), None, "invalid entries never match");
    }

    #[test]
    fn hit_update_matches_the_unfused_call_chain() {
        // Drive two arenas through the same random-ish trace: one via the
        // fused hit path, one via find/promote/observe/touch/or_dirty. Every
        // entry and the recency order must stay identical.
        let mut fused = SetArena::new(2, 4);
        let mut unfused = SetArena::new(2, 4);
        for step in 0u64..200 {
            let set = (step % 2) as usize;
            let tag = step * 7 % 9;
            let word = WordIndex::new((step % 8) as u8);
            let write = step % 3 == 0;
            let got = fused.hit_update(set, tag, 1u16 << word.get(), write, true);
            match unfused.find(set, tag) {
                Some(way) => {
                    let pos = unfused.promote(set, way);
                    unfused.observe_position(set, way, pos);
                    unfused.touch_word(set, way, word);
                    unfused.or_dirty(set, way, write);
                    assert_eq!(got, Some(way), "step {step}");
                }
                None => {
                    assert_eq!(got, None, "step {step}");
                    let way = unfused.victim_way(set);
                    assert_eq!(fused.victim_way(set), way);
                    unfused.install(set, way, tag, write, false);
                    unfused.promote(set, way);
                    fused.install(set, way, tag, write, false);
                    fused.promote(set, way);
                }
            }
        }
        for set in 0..2 {
            for way in 0..4 {
                assert_eq!(fused.entry(set, way), unfused.entry(set, way));
                assert_eq!(fused.position_of(set, way), unfused.position_of(set, way));
            }
        }
    }

    #[test]
    fn hit_update_without_latch_skips_recency_bookkeeping() {
        let mut arena = SetArena::new(1, 2);
        arena.install(0, 0, 5, false, false);
        arena.install(0, 1, 6, false, false);
        arena.promote(0, 1); // way 0 now at position 1
        let way = arena.hit_update(0, 5, 0b100, true, false);
        assert_eq!(way, Some(0));
        let e = arena.entry(0, 0);
        assert_eq!(e.footprint.bits(), 0b100);
        assert!(e.dirty);
        assert_eq!(e.max_pos_seen, 0, "no observe without latch");
        assert_eq!(e.max_pos_at_change, 0, "no latch without latch");
        assert_eq!(arena.position_of(0, 0), Some(0), "promotion still happens");
        assert_eq!(arena.hit_update(0, 99, 0, false, false), None);
        assert_eq!(arena.hit_update(7, 5, 0, false, false), None, "oob set");
    }

    #[test]
    fn out_of_range_coordinates_are_inert() {
        let mut arena = SetArena::new(2, 2);
        assert_eq!(arena.find(5, 0), None);
        assert_eq!(arena.position_of(5, 0), None);
        assert_eq!(arena.promote(5, 0), 0);
        assert_eq!(arena.victim_way(5), 0);
        arena.install(5, 0, 1, true, true); // must not panic
        arena.touch_word(5, 0, WordIndex::new(0));
        assert!(!arena.entry(5, 0).valid);
    }

    #[test]
    fn set_footprint_bypasses_recency_latch() {
        let mut arena = SetArena::new(1, 1);
        arena.install(0, 0, 1, false, false);
        arena.observe_position(0, 0, 7);
        arena.set_footprint(0, 0, Footprint::full(8));
        let e = arena.entry(0, 0);
        assert_eq!(e.footprint.used_words(), 8);
        assert_eq!(e.max_pos_at_change, 0, "repair does not latch positions");
    }
}
