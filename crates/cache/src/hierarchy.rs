//! The L1I + L1D + L2 hierarchy driver (the framework of Section 4).

use crate::{
    CacheConfig, L1Lookup, L2Outcome, L2Request, SecondLevel, SectoredCache, SetAssocCache,
};
use ldis_mem::stats::Counter;
use ldis_mem::{Access, AccessKind, Trace, TraceSource, WordIndex};

/// What happened on one access — consumed by the timing model
/// (`ldis-timing`) to charge latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessTrace {
    /// The access was fully serviced by the first-level cache.
    pub l1_hit: bool,
    /// L2 accesses that hit in the line-organized store (or a traditional
    /// hit).
    pub l2_loc_hits: u8,
    /// L2 accesses that hit in the word-organized store (pay the
    /// rearrangement latency, Section 7.4).
    pub l2_woc_hits: u8,
    /// L2 accesses that went to memory (hole misses + line misses).
    pub l2_misses: u8,
}

impl AccessTrace {
    /// Total L2 accesses this processor access generated.
    pub fn l2_accesses(&self) -> u8 {
        self.l2_loc_hits + self.l2_woc_hits + self.l2_misses
    }

    fn record(&mut self, outcome: L2Outcome) {
        match outcome {
            L2Outcome::LocHit => self.l2_loc_hits += 1,
            L2Outcome::WocHit => self.l2_woc_hits += 1,
            L2Outcome::HoleMiss | L2Outcome::LineMiss => self.l2_misses += 1,
        }
    }
}

/// Counters for the first-level caches and the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Instructions represented by the accesses run so far.
    pub instructions: u64,
    /// Data accesses presented to the L1D.
    pub l1d_accesses: u64,
    /// L1D full hits.
    pub l1d_hits: u64,
    /// L1D sector misses (line present, requested word invalid) — these
    /// generate the "extra cache accesses" of Section 7.2's footnote.
    pub l1d_sector_misses: u64,
    /// L1D line misses.
    pub l1d_misses: u64,
    /// Instruction fetches presented to the L1I.
    pub l1i_accesses: u64,
    /// L1I hits.
    pub l1i_hits: u64,
}

/// The two-level cache hierarchy of Table 1: a 16 kB 2-way L1I, a 16 kB
/// 2-way sectored L1D, and any [`SecondLevel`] organization as the L2.
/// Inclusion is not enforced (Section 6.1).
///
/// Footprint plumbing follows Section 4.1: the L1D tracks which words the
/// processor touches; when a line leaves the L1D its footprint is sent to
/// the L2 and OR-merged if the line is still resident there.
///
/// # Example
///
/// ```
/// use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
/// use ldis_mem::{Access, Addr, LineGeometry};
///
/// let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
/// let mut hier = Hierarchy::hpca2007(l2);
/// for i in 0..100 {
///     hier.access(Access::load(Addr::new(i * 64), 8));
/// }
/// assert_eq!(hier.l2().stats().line_misses, 100);
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy<L2> {
    l1i: SetAssocCache,
    l1d: SectoredCache,
    l2: L2,
    stats: HierarchyStats,
}

impl<L2: SecondLevel> Hierarchy<L2> {
    /// Creates a hierarchy with explicit L1 configurations.
    ///
    /// # Panics
    ///
    /// Panics if the L1 geometries differ from the L2's.
    pub fn new(l1i_cfg: CacheConfig, l1d_cfg: CacheConfig, l2: L2) -> Self {
        assert_eq!(
            l1i_cfg.geometry(),
            l2.geometry(),
            "L1I and L2 must share a geometry"
        );
        assert_eq!(
            l1d_cfg.geometry(),
            l2.geometry(),
            "L1D and L2 must share a geometry"
        );
        Hierarchy {
            l1i: SetAssocCache::new(l1i_cfg),
            l1d: SectoredCache::new(l1d_cfg),
            l2,
            stats: HierarchyStats::default(),
        }
    }

    /// Creates a hierarchy with the paper's Table 1 first-level caches:
    /// 16 kB 2-way L1I and 16 kB 2-way L1D, using the L2's geometry.
    pub fn hpca2007(l2: L2) -> Self {
        let geom = l2.geometry();
        let l1 = CacheConfig::new(16 << 10, 2, geom);
        Hierarchy::new(l1, l1, l2)
    }

    /// First-level and trace statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// The second-level cache.
    pub fn l2(&self) -> &L2 {
        &self.l2
    }

    /// Exclusive access to the second-level cache (for end-of-run controls
    /// such as forcing the reverter's decision in tests).
    pub fn l2_mut(&mut self) -> &mut L2 {
        &mut self.l2
    }

    /// L2 demand misses per kilo-instruction for the trace run so far.
    pub fn mpki(&self) -> f64 {
        self.l2.stats().mpki(self.stats.instructions)
    }

    /// Zeroes all statistics (first-level and L2) without touching cache
    /// contents — run a warmup, reset, then measure.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l2.reset_stats();
    }

    /// Runs a single access through the hierarchy.
    pub fn access(&mut self, access: Access) {
        let _ = self.access_traced(access);
    }

    /// Runs a single access and reports what happened at each level, for
    /// timing models.
    pub fn access_traced(&mut self, access: Access) -> AccessTrace {
        self.stats.instructions.bump_by(access.insts as u64);
        match access.kind {
            AccessKind::InstrFetch => self.ifetch(access),
            AccessKind::Load | AccessKind::Store => self.data_access(access),
        }
    }

    /// Runs every access of a source through the hierarchy.
    pub fn run(&mut self, source: &mut dyn TraceSource) {
        while let Some(a) = source.next_access() {
            self.access(a);
        }
    }

    /// Replays a recorded trace through the hierarchy.
    pub fn run_trace(&mut self, trace: &Trace) {
        for &a in trace.accesses() {
            self.access(a);
        }
    }

    fn ifetch(&mut self, access: Access) -> AccessTrace {
        let geom = self.l2.geometry();
        let line = geom.line_addr(access.addr);
        let mut trace = AccessTrace::default();
        self.stats.l1i_accesses.bump();
        if self.l1i.access(line, None, false) {
            self.stats.l1i_hits.bump();
            trace.l1_hit = true;
            return trace;
        }
        let resp = self.l2.access(L2Request::instr(line));
        trace.record(resp.outcome);
        // Instruction lines are read-only: evictions need no L2 notification.
        self.l1i.install(line, None, false, true);
        trace
    }

    fn data_access(&mut self, access: Access) -> AccessTrace {
        let geom = self.l2.geometry();
        let line = geom.line_addr(access.addr);
        // ldis: allow(T1, "Access.size is declared u8, so widening to u32 is lossless; field types sit outside the interval domain")
        let (first, last) = geom.word_span(access.addr, access.size as u32);
        let write = access.kind.is_write();
        let mut trace = AccessTrace::default();
        self.stats.l1d_accesses.bump();

        match self.l1d.access(line, first, last, write) {
            L1Lookup::Hit => {
                self.stats.l1d_hits.bump();
                trace.l1_hit = true;
            }
            L1Lookup::SectorMiss => {
                self.stats.l1d_sector_misses.bump();
                self.fetch_missing_words(line, first, last, write, &mut trace);
            }
            L1Lookup::Miss => {
                self.stats.l1d_misses.bump();
                let resp = self
                    .l2
                    .access(L2Request::data(line, first, write).with_pc(access.pc));
                trace.record(resp.outcome);
                // The fill also records the demand words in the fresh L1
                // footprint; if the WOC returned a partial line missing
                // part of the span, fetch the rest word by word.
                let (evicted, lookup) =
                    self.l1d
                        .fill_demand(line, resp.valid_words, first, last, write);
                if let Some(ev) = evicted {
                    self.l2.on_l1d_evict(ev.line, ev.footprint, ev.dirty);
                }
                if lookup == L1Lookup::SectorMiss {
                    self.stats.l1d_sector_misses.bump();
                    self.fetch_missing_words(line, first, last, write, &mut trace);
                }
            }
        }
        trace
    }

    /// Services an L1D sector miss: requests each still-invalid word of the
    /// span from the L2 (Section 4.2 sends the line + sector id; one request
    /// per missing word models the same traffic at word granularity).
    fn fetch_missing_words(
        &mut self,
        line: ldis_mem::LineAddr,
        first: WordIndex,
        last: WordIndex,
        write: bool,
        trace: &mut AccessTrace,
    ) {
        for i in first.get()..=last.get() {
            let w = WordIndex::new(i);
            if self.l1d.words_valid(line, w, w) {
                continue;
            }
            let resp = self.l2.access(L2Request::data(line, w, write));
            trace.record(resp.outcome);
            self.l1d.fill_words(line, resp.valid_words);
            debug_assert!(
                self.l1d.words_valid(line, w, w),
                "L2 must return at least the demanded word"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineL2;
    use ldis_mem::{Addr, LineGeometry};

    fn hier() -> Hierarchy<BaselineL2> {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        Hierarchy::hpca2007(l2)
    }

    #[test]
    fn l1_filters_repeated_accesses() {
        let mut h = hier();
        for _ in 0..10 {
            h.access(Access::load(Addr::new(0x4000), 8));
        }
        assert_eq!(h.stats().l1d_accesses, 10);
        assert_eq!(h.stats().l1d_hits, 9);
        assert_eq!(h.l2().stats().accesses, 1);
    }

    #[test]
    fn instruction_fetches_go_to_l1i() {
        let mut h = hier();
        h.access(Access::ifetch(Addr::new(0x1000)));
        h.access(Access::ifetch(Addr::new(0x1004)));
        assert_eq!(h.stats().l1i_accesses, 2);
        assert_eq!(h.stats().l1i_hits, 1);
        assert_eq!(h.l2().stats().accesses, 1);
        assert_eq!(h.stats().l1d_accesses, 0);
    }

    #[test]
    fn l1d_eviction_merges_footprint_into_l2() {
        let mut h = hier();
        let l1_sets = 128u64; // 16 kB / 64 B / 2 ways
        let target = Addr::new(0);
        h.access(Access::load(target, 8)); // word 0
        h.access(Access::load(target.offset(24), 8)); // word 3
                                                      // Evict the line from L1D by filling its set (2 ways).
        h.access(Access::load(Addr::new(l1_sets * 64), 8));
        h.access(Access::load(Addr::new(2 * l1_sets * 64), 8));
        // The L2 line's footprint now includes words 0 and 3. Evict it from
        // the 1 MB L2 by filling its set (8 ways, 2048 sets).
        for i in 3..=10 {
            h.access(Access::load(Addr::new(i * 2048 * 64), 8));
        }
        let hist = &h.l2().stats().words_used_at_evict;
        assert_eq!(hist.count(2), 1, "histogram: {hist}");
    }

    #[test]
    fn instructions_accumulate_from_access_gaps() {
        let mut h = hier();
        h.access(Access::load(Addr::new(0), 8).with_insts(10));
        h.access(Access::load(Addr::new(64), 8).with_insts(5));
        assert_eq!(h.stats().instructions, 15);
        assert!(h.mpki() > 0.0);
    }

    #[test]
    fn run_trace_equals_manual_replay() {
        let accesses: Vec<Access> = (0..500)
            .map(|i| Access::load(Addr::new((i * 13 % 97) * 64), 8))
            .collect();
        let trace = Trace::from_accesses("t", accesses.clone());
        let mut h1 = hier();
        h1.run_trace(&trace);
        let mut h2 = hier();
        for a in accesses {
            h2.access(a);
        }
        assert_eq!(h1.l2().stats().accesses, h2.l2().stats().accesses);
        assert_eq!(h1.l2().stats().line_misses, h2.l2().stats().line_misses);
        assert_eq!(h1.stats().l1d_hits, h2.stats().l1d_hits);
    }

    #[test]
    fn stores_write_allocate_and_mark_dirty() {
        let mut h = hier();
        h.access(Access::store(Addr::new(0x100), 8));
        assert_eq!(h.l2().stats().line_misses, 1);
        // Evict from L1D; the dirty line merges into L2 (resident → no
        // memory writeback).
        h.access(Access::store(Addr::new(0x100 + 128 * 64), 8));
        h.access(Access::store(Addr::new(0x100 + 256 * 64), 8));
        assert_eq!(h.l2().stats().writebacks, 0);
    }
}
