//! Resilience accounting shared by every second-level organization.
//!
//! The distill cache (and any other [`SecondLevel`](crate::SecondLevel)
//! implementation) can model soft errors in its metadata — footprints,
//! word-organized tag entries, policy counters — protected by one of the
//! [`ProtectionScheme`]s. This module holds the organization-independent
//! vocabulary: the fault/detection counters, the structured degradation
//! log, and the overall [`CacheHealth`] snapshot the experiment harness
//! reads to build resilience reports.

use std::fmt;

/// How modeled metadata bits are protected against soft errors.
///
/// The model injects *single-bit* flips, so the classic coding results
/// apply exactly: parity detects every flip but corrects none; SECDED
/// corrects every flip; no protection means every flip lands silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ProtectionScheme {
    /// No protection: every fault corrupts state silently.
    #[default]
    Unprotected,
    /// One parity bit per protected entry: single-bit flips are detected
    /// but cannot be corrected — the affected state must be discarded.
    Parity,
    /// Single-error-correct, double-error-detect ECC: single-bit flips are
    /// corrected in place.
    Secded,
}

impl fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProtectionScheme::Unprotected => "none",
            ProtectionScheme::Parity => "parity",
            ProtectionScheme::Secded => "secded",
        })
    }
}

/// Counters for injected faults and their fates. The four fate counters
/// (`corrected`, `detected`, `silent`, `masked`) partition `injected`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Bit flips injected into modeled state.
    pub injected: u64,
    /// Faults corrected in place by SECDED (state unchanged).
    pub corrected: u64,
    /// Faults detected but not correctable (parity): the affected state
    /// was discarded and a degradation event logged.
    pub detected: u64,
    /// Faults that corrupted live state with no protection to notice.
    pub silent: u64,
    /// Faults that landed in dead state (e.g. an invalid tag entry) and
    /// can never be observed — benign by construction.
    pub masked: u64,
    /// Invariant violations found by the online self-checker (these catch
    /// silent corruption after the fact).
    pub check_violations: u64,
}

impl FaultStats {
    /// Fraction of *observable* faults (injected minus masked) that the
    /// protection scheme handled, by correction or detection. 1.0 when
    /// there were no observable faults.
    pub fn coverage(&self) -> f64 {
        let observable = self.injected - self.masked;
        if observable == 0 {
            1.0
        } else {
            self.corrected.saturating_add(self.detected) as f64 / observable as f64
        }
    }
}

/// What the cache did about one detected corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// SECDED corrected the flipped bit; no state was lost.
    Corrected,
    /// The affected state was discarded (a WOC line invalidated, a policy
    /// counter reset, a footprint widened to full) and execution continued.
    Discarded,
    /// The cache force-reverted to traditional (baseline) mode.
    Degraded,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryAction::Corrected => "corrected",
            RecoveryAction::Discarded => "discarded",
            RecoveryAction::Degraded => "degraded",
        })
    }
}

/// One structured entry in the degradation log: what was detected, when
/// (in accesses since construction), and what the cache did about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The access count at which the corruption was detected.
    pub access: u64,
    /// Human-readable cause (a detected fault site or a typed invariant
    /// violation rendered to text).
    pub cause: String,
    /// The recovery taken.
    pub action: RecoveryAction,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access {}: {} [{}]",
            self.access, self.cause, self.action
        )
    }
}

/// A cache's resilience state: fault accounting, the degradation log and
/// whether the organization has fallen back to baseline-cache mode.
#[derive(Clone, Debug, Default)]
pub struct CacheHealth {
    /// Fault and detection counters.
    pub faults: FaultStats,
    /// Structured log of every detected corruption and its recovery.
    pub events: Vec<DegradationEvent>,
    /// Whether the cache has permanently force-reverted to baseline mode.
    pub degraded: bool,
}

impl CacheHealth {
    /// Creates a healthy, fault-free record.
    pub fn new() -> Self {
        CacheHealth::default()
    }

    /// Records a detected-and-recovered corruption.
    pub fn log(&mut self, access: u64, cause: impl Into<String>, action: RecoveryAction) {
        self.events.push(DegradationEvent {
            access,
            cause: cause.into(),
            action,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_partitions_fates() {
        let s = FaultStats {
            injected: 10,
            corrected: 3,
            detected: 2,
            silent: 1,
            masked: 4,
            check_violations: 0,
        };
        assert!((s.coverage() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(FaultStats::default().coverage(), 1.0);
    }

    #[test]
    fn event_log_is_ordered_and_displayable() {
        let mut h = CacheHealth::new();
        h.log(10, "psel bit flip", RecoveryAction::Discarded);
        h.log(20, "woc head-bit violation", RecoveryAction::Degraded);
        assert_eq!(h.events.len(), 2);
        assert!(h.events[0].access < h.events[1].access);
        let text = h.events[1].to_string();
        assert!(text.contains("access 20"));
        assert!(text.contains("degraded"));
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(ProtectionScheme::Unprotected.to_string(), "none");
        assert_eq!(ProtectionScheme::Parity.to_string(), "parity");
        assert_eq!(ProtectionScheme::Secded.to_string(), "secded");
    }
}
