//! The sectored first-level data cache (Section 4.2).
//!
//! To accommodate the variable number of valid words returned by the WOC,
//! the paper uses a sectored L1D: each line carries per-word valid bits.
//! An access to an invalid word of a resident line is a *sector miss* and
//! triggers a request to the L2 for the missing sector.

use crate::{CacheConfig, SetArena};
use ldis_mem::bitops::span_mask16;
use ldis_mem::{Footprint, LineAddr, WordIndex};

/// The result of an L1D lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Lookup {
    /// Line resident and every requested word valid.
    Hit,
    /// Line resident but at least one requested word invalid (Section 4.2:
    /// "If an invalid word in the line is accessed by the processor, a
    /// request for the line is sent to the distill-cache").
    SectorMiss,
    /// Line not resident.
    Miss,
}

/// A line evicted from the sectored L1D, carrying the footprint that is
/// sent to the LOC (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedL1Line {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Words of the line the processor actually accessed while resident.
    pub footprint: Footprint,
    /// Whether the line was written.
    pub dirty: bool,
}

/// A sectored set-associative data cache with per-word valid bits, per-line
/// footprints and LRU replacement.
///
/// Tags, footprints and dirty bits live in the shared flat [`SetArena`];
/// the per-word valid bits are a parallel flat array indexed the same way
/// (`set * ways + way`), so an access touches only contiguous storage.
///
/// # Example
///
/// ```
/// use ldis_cache::{CacheConfig, L1Lookup, SectoredCache};
/// use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};
///
/// let mut l1 = SectoredCache::new(CacheConfig::new(16 << 10, 2, LineGeometry::default()));
/// let line = LineAddr::new(5);
/// assert_eq!(l1.lookup(line, WordIndex::new(0), WordIndex::new(0)), L1Lookup::Miss);
/// l1.fill(line, Footprint::from_bits(0b0001)); // only word 0 valid
/// assert_eq!(l1.access(line, WordIndex::new(0), WordIndex::new(0), false), L1Lookup::Hit);
/// assert_eq!(l1.access(line, WordIndex::new(3), WordIndex::new(3), false), L1Lookup::SectorMiss);
/// ```
#[derive(Clone, Debug)]
pub struct SectoredCache {
    cfg: CacheConfig,
    arena: SetArena,
    /// Per-word valid bits, one `u16` per `(set, way)` (bit *i* = word *i*).
    valid_words: Vec<u16>,
}

impl SectoredCache {
    /// Creates an empty sectored cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets() as usize;
        let arena = SetArena::new(num_sets, cfg.ways());
        let valid_words = vec![0u16; num_sets * cfg.ways() as usize];
        SectoredCache {
            cfg,
            arena,
            valid_words,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.arena.ways() + way
    }

    /// Classifies an access to words `first..=last` of `line` without
    /// changing any state.
    pub fn lookup(&self, line: LineAddr, first: WordIndex, last: WordIndex) -> L1Lookup {
        let set = self.cfg.set_index(line);
        match self.arena.find(set, self.cfg.tag(line)) {
            None => L1Lookup::Miss,
            Some(way) => {
                let valid = self
                    .valid_words
                    .get(self.slot(set, way))
                    .copied()
                    .unwrap_or(0);
                if span_mask16(first.get(), last.get()) & !valid == 0 {
                    L1Lookup::Hit
                } else {
                    L1Lookup::SectorMiss
                }
            }
        }
    }

    /// Performs an access to words `first..=last`: on a full hit, promotes
    /// the line, records the words in the footprint and sets the dirty bit
    /// for writes. On a sector miss the footprint/dirty update still happens
    /// (the processor *will* use the words once the sector arrives) but the
    /// caller must fetch the missing words via [`fill_words`].
    ///
    /// [`fill_words`]: SectoredCache::fill_words
    pub fn access(
        &mut self,
        line: LineAddr,
        first: WordIndex,
        last: WordIndex,
        write: bool,
    ) -> L1Lookup {
        let set = self.cfg.set_index(line);
        let span = span_mask16(first.get(), last.get());
        match self
            .arena
            .hit_update(set, self.cfg.tag(line), span, write, false)
        {
            None => L1Lookup::Miss,
            Some(way) => {
                let valid = self
                    .valid_words
                    .get(self.slot(set, way))
                    .copied()
                    .unwrap_or(0);
                if span & !valid == 0 {
                    L1Lookup::Hit
                } else {
                    L1Lookup::SectorMiss
                }
            }
        }
    }

    /// Installs `line` with the given valid words (a fill from the L2),
    /// evicting the LRU line if needed. The footprint starts empty — the
    /// caller records the demand words with [`access`](SectoredCache::access).
    pub fn fill(&mut self, line: LineAddr, valid_words: Footprint) -> Option<EvictedL1Line> {
        let set = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        debug_assert!(
            self.arena.find(set, tag).is_none(),
            "filling a resident line"
        );
        let (way, entry) = self.arena.install_evict(set, tag, 0, false, false);
        let victim = if entry.valid {
            Some(EvictedL1Line {
                line: self.cfg.line_of(set, entry.tag),
                footprint: entry.footprint,
                dirty: entry.dirty,
            })
        } else {
            None
        };
        let slot = self.slot(set, way);
        if let Some(v) = self.valid_words.get_mut(slot) {
            *v = valid_words.bits();
        }
        victim
    }

    /// Installs `line` with the given valid words *and* records the demand
    /// access to words `first..=last` in one arena pass — exactly
    /// [`fill`](SectoredCache::fill) followed by
    /// [`access`](SectoredCache::access), fused: the fresh footprint is the
    /// demand span, the dirty bit follows `write`, and the lookup result
    /// reports whether the delivered words cover the span.
    pub fn fill_demand(
        &mut self,
        line: LineAddr,
        valid_words: Footprint,
        first: WordIndex,
        last: WordIndex,
        write: bool,
    ) -> (Option<EvictedL1Line>, L1Lookup) {
        let set = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        debug_assert!(
            self.arena.find(set, tag).is_none(),
            "filling a resident line"
        );
        let span = span_mask16(first.get(), last.get());
        let (way, entry) = self.arena.install_evict(set, tag, span, write, false);
        let victim = if entry.valid {
            Some(EvictedL1Line {
                line: self.cfg.line_of(set, entry.tag),
                footprint: entry.footprint,
                dirty: entry.dirty,
            })
        } else {
            None
        };
        let slot = self.slot(set, way);
        if let Some(v) = self.valid_words.get_mut(slot) {
            *v = valid_words.bits();
        }
        let lookup = if span & !valid_words.bits() == 0 {
            L1Lookup::Hit
        } else {
            L1Lookup::SectorMiss
        };
        (victim, lookup)
    }

    /// Adds valid words to a resident line (a sector fill). Returns whether
    /// the line was resident.
    pub fn fill_words(&mut self, line: LineAddr, valid_words: Footprint) -> bool {
        let set = self.cfg.set_index(line);
        match self.arena.find(set, self.cfg.tag(line)) {
            Some(way) => {
                let slot = self.slot(set, way);
                if let Some(v) = self.valid_words.get_mut(slot) {
                    *v |= valid_words.bits();
                }
                true
            }
            None => false,
        }
    }

    /// Whether every word in `first..=last` of `line` is valid.
    pub fn words_valid(&self, line: LineAddr, first: WordIndex, last: WordIndex) -> bool {
        self.lookup(line, first, last) == L1Lookup::Hit
    }

    /// Invalidates `line` if resident, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedL1Line> {
        let set = self.cfg.set_index(line);
        let way = self.arena.find(set, self.cfg.tag(line))?;
        let entry = self.arena.entry(set, way);
        self.arena.invalidate(set, way);
        Some(EvictedL1Line {
            line,
            footprint: entry.footprint,
            dirty: entry.dirty,
        })
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        let ways = self.arena.ways();
        (0..self.cfg.num_sets() as usize)
            .map(|set| {
                (0..ways)
                    .filter(|&way| self.arena.is_valid(set, way))
                    .count() as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;

    fn l1() -> SectoredCache {
        SectoredCache::new(CacheConfig::new(16 << 10, 2, LineGeometry::default()))
    }

    fn w(i: u8) -> WordIndex {
        WordIndex::new(i)
    }

    #[test]
    fn span_mask_math() {
        assert_eq!(span_mask16(0, 0), 0b1);
        assert_eq!(span_mask16(1, 3), 0b1110);
        assert_eq!(span_mask16(7, 7), 0b1000_0000);
    }

    #[test]
    fn full_fill_hits_all_words() {
        let mut c = l1();
        let line = LineAddr::new(9);
        c.fill(line, Footprint::full(8));
        for i in 0..8 {
            assert_eq!(c.access(line, w(i), w(i), false), L1Lookup::Hit);
        }
    }

    #[test]
    fn partial_fill_sector_misses_on_holes() {
        let mut c = l1();
        let line = LineAddr::new(9);
        c.fill(line, Footprint::from_bits(0b0000_0101));
        assert_eq!(c.access(line, w(0), w(0), false), L1Lookup::Hit);
        assert_eq!(c.access(line, w(2), w(2), false), L1Lookup::Hit);
        assert_eq!(c.access(line, w(1), w(1), false), L1Lookup::SectorMiss);
        // Filling the missing word turns it into a hit.
        assert!(c.fill_words(line, Footprint::from_bits(0b0000_0010)));
        assert_eq!(c.access(line, w(1), w(1), false), L1Lookup::Hit);
    }

    #[test]
    fn eviction_carries_footprint_not_valid_bits() {
        let mut c = l1();
        let set_stride = c.config().num_sets();
        let a = LineAddr::new(3);
        let b = LineAddr::new(3 + set_stride);
        let d = LineAddr::new(3 + 2 * set_stride);
        c.fill(a, Footprint::full(8));
        c.access(a, w(0), w(0), false);
        c.access(a, w(5), w(5), true);
        c.fill(b, Footprint::full(8));
        let ev = c.fill(d, Footprint::full(8)).expect("a is LRU, must evict");
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert_eq!(ev.footprint.used_words(), 2, "only touched words count");
    }

    #[test]
    fn lru_respects_access_order() {
        let mut c = l1();
        let s = c.config().num_sets();
        let (a, b, d) = (
            LineAddr::new(1),
            LineAddr::new(1 + s),
            LineAddr::new(1 + 2 * s),
        );
        c.fill(a, Footprint::full(8));
        c.fill(b, Footprint::full(8));
        c.access(a, w(0), w(0), false); // b becomes LRU
        let ev = c.fill(d, Footprint::full(8)).unwrap();
        assert_eq!(ev.line, b);
    }

    #[test]
    fn sector_miss_still_records_footprint() {
        let mut c = l1();
        let line = LineAddr::new(2);
        c.fill(line, Footprint::from_bits(0b1));
        assert_eq!(c.access(line, w(4), w(4), true), L1Lookup::SectorMiss);
        c.fill_words(line, Footprint::from_bits(0b1_0000));
        let ev = c.invalidate(line).unwrap();
        assert!(ev.dirty);
        assert!(ev.footprint.is_used(w(4)));
    }

    #[test]
    fn invalidate_nonresident_is_none() {
        let mut c = l1();
        assert!(c.invalidate(LineAddr::new(77)).is_none());
    }

    #[test]
    fn multi_word_span_requires_all_words() {
        let mut c = l1();
        let line = LineAddr::new(4);
        c.fill(line, Footprint::from_bits(0b0011));
        assert_eq!(c.lookup(line, w(0), w(1)), L1Lookup::Hit);
        assert_eq!(c.lookup(line, w(1), w(2)), L1Lookup::SectorMiss);
    }
}
